#include "workload/workload.h"

#include <algorithm>

#include "support/diagnostics.h"
#include "support/rng.h"

namespace mdes::workload {

namespace {

/** A class mix entry resolved against the machine description. */
struct ResolvedClass
{
    uint32_t op_class;
    double weight;
    int num_srcs;
    int num_dsts;
    bool cascadable;
};

} // namespace

sched::Program
generate(const WorkloadSpec &spec, const lmdes::LowMdes &low)
{
    std::vector<ResolvedClass> body_classes;
    std::vector<ResolvedClass> branch_classes;
    for (const auto &mix : spec.classes) {
        uint32_t cls = low.findOpClass(mix.op_class);
        if (cls == kInvalidId) {
            throw MdesError("workload references unknown operation '" +
                            mix.op_class + "' for machine '" +
                            low.machineName() + "'");
        }
        ResolvedClass rc{cls, mix.weight, mix.num_srcs, mix.num_dsts,
                         mix.cascadable};
        (mix.is_branch ? branch_classes : body_classes).push_back(rc);
    }
    if (body_classes.empty())
        throw MdesError("workload has no non-branch operation classes");

    std::vector<double> body_weights, branch_weights;
    for (const auto &rc : body_classes)
        body_weights.push_back(rc.weight);
    for (const auto &rc : branch_classes)
        branch_weights.push_back(rc.weight);

    Rng rng(spec.seed);
    sched::Program program;
    size_t generated = 0;

    // Ring of recently written registers, biasing source selection
    // toward fresh values the way compiled code does.
    std::vector<int32_t> recent;
    const size_t kRecentWindow = 8;

    while (generated < spec.num_ops) {
        sched::Block block;
        int body = int(rng.range(spec.min_block_size,
                                 spec.max_block_size));
        bool with_branch = !branch_classes.empty();
        for (int i = 0; i < body; ++i) {
            const ResolvedClass &rc =
                body_classes[rng.pickWeighted(body_weights)];
            sched::Instr in;
            in.op_class = rc.op_class;
            in.cascadable = rc.cascadable;
            for (int s = 0; s < rc.num_srcs; ++s) {
                bool local = !recent.empty() &&
                             rng.chance(spec.src_locality);
                int32_t reg =
                    local ? recent[rng.below(recent.size())]
                          : int32_t(rng.below(uint64_t(spec.num_regs)));
                in.srcs.push_back(reg);
            }
            for (int d = 0; d < rc.num_dsts; ++d) {
                int32_t reg =
                    int32_t(rng.below(uint64_t(spec.num_regs)));
                in.dsts.push_back(reg);
                recent.push_back(reg);
                if (recent.size() > kRecentWindow)
                    recent.erase(recent.begin());
            }
            block.instrs.push_back(std::move(in));
        }
        if (with_branch) {
            const ResolvedClass &rc =
                branch_classes[rng.pickWeighted(branch_weights)];
            sched::Instr in;
            in.op_class = rc.op_class;
            in.is_branch = true;
            for (int s = 0; s < rc.num_srcs; ++s) {
                bool local = !recent.empty() &&
                             rng.chance(spec.src_locality);
                int32_t reg =
                    local ? recent[rng.below(recent.size())]
                          : int32_t(rng.below(uint64_t(spec.num_regs)));
                in.srcs.push_back(reg);
            }
            block.instrs.push_back(std::move(in));
        }
        generated += block.instrs.size();
        program.blocks.push_back(std::move(block));
    }
    return program;
}

sched::Program
generateLoops(const WorkloadSpec &spec, const lmdes::LowMdes &low)
{
    std::vector<ResolvedClass> body_classes;
    for (const auto &mix : spec.classes) {
        if (mix.is_branch)
            continue;
        uint32_t cls = low.findOpClass(mix.op_class);
        if (cls == kInvalidId) {
            throw MdesError("workload references unknown operation '" +
                            mix.op_class + "' for machine '" +
                            low.machineName() + "'");
        }
        body_classes.push_back({cls, mix.weight, mix.num_srcs,
                                mix.num_dsts, mix.cascadable});
    }
    if (body_classes.empty())
        throw MdesError("loop workload has no non-branch classes");
    std::vector<double> weights;
    for (const auto &rc : body_classes)
        weights.push_back(rc.weight);

    Rng rng(spec.seed ^ 0x100BULL);
    sched::Program program;
    size_t generated = 0;

    while (generated < spec.num_ops) {
        sched::Block body;
        int size = int(rng.range(spec.min_block_size,
                                 spec.max_block_size));
        // A loop keeps a small set of live-across-iterations registers
        // (induction variables, accumulators); reading one of them
        // before it is rewritten creates a recurrence.
        int carried = int(rng.range(1, 3));
        for (int i = 0; i < size; ++i) {
            const ResolvedClass &rc =
                body_classes[rng.pickWeighted(weights)];
            sched::Instr in;
            in.op_class = rc.op_class;
            in.cascadable = rc.cascadable;
            for (int s = 0; s < rc.num_srcs; ++s) {
                bool recurrent = rng.chance(0.25);
                int32_t reg =
                    recurrent
                        ? int32_t(rng.below(uint64_t(carried)))
                        : int32_t(carried +
                                  rng.below(uint64_t(
                                      spec.num_regs - carried)));
                in.srcs.push_back(reg);
            }
            for (int d = 0; d < rc.num_dsts; ++d) {
                bool recurrent = rng.chance(0.2);
                int32_t reg =
                    recurrent
                        ? int32_t(rng.below(uint64_t(carried)))
                        : int32_t(carried +
                                  rng.below(uint64_t(
                                      spec.num_regs - carried)));
                in.dsts.push_back(reg);
            }
            body.instrs.push_back(std::move(in));
        }
        generated += body.instrs.size();
        program.blocks.push_back(std::move(body));
    }
    return program;
}

} // namespace mdes::workload
