#ifndef MDES_WORKLOAD_WORKLOAD_H
#define MDES_WORKLOAD_WORKLOAD_H

/**
 * @file
 * Synthetic assembly-stream generation.
 *
 * Substitute for the paper's per-platform SPEC CINT92 assembly (201k-282k
 * static operations produced by the IMPACT compiler): a deterministic
 * generator that draws operation classes from a per-machine mix matching
 * the published breakdowns (Tables 1-4), forms basic blocks terminated by
 * branches, and wires register operands with a recency bias so dependence
 * density resembles compiled code. Postpass x86 streams use few
 * architectural registers (denser anti/output dependences); prepass RISC
 * streams use many.
 *
 * Everything the paper measures depends only on the mix of scheduling
 * attempts and conflict rates this stream induces, not on instruction
 * semantics - see DESIGN.md §2.5 for the substitution argument.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "lmdes/low_mdes.h"
#include "sched/ir.h"

namespace mdes::workload {

/** One operation class's share of the stream. */
struct ClassMix
{
    /** Operation-class name in the machine description. */
    std::string op_class;
    /** Relative frequency (branch classes compete only for the
     * block-terminating slot, others for the rest). */
    double weight = 1.0;
    int num_srcs = 1;
    int num_dsts = 1;
    /** May use a cascade reservation table (SuperSPARC cascaded IALU). */
    bool cascadable = false;
    /** Block-terminating branch class. */
    bool is_branch = false;
};

/** Full workload description for one machine. */
struct WorkloadSpec
{
    uint64_t seed = 1;
    /** Stop once at least this many operations were generated. */
    size_t num_ops = 200000;
    /** Architectural/virtual registers available. */
    int32_t num_regs = 32;
    int min_block_size = 4;
    int max_block_size = 12;
    /** Probability a source register is drawn from recent definitions
     * (higher = denser flow dependences). */
    double src_locality = 0.5;
    std::vector<ClassMix> classes;
};

/**
 * Generate the stream for @p spec, resolving class names against
 * @p low. Throws MdesError when a class name is unknown.
 */
sched::Program generate(const WorkloadSpec &spec,
                        const lmdes::LowMdes &low);

/**
 * Generate innermost-loop bodies for modulo scheduling: each block is a
 * branch-free loop body whose register reuse creates both intra- and
 * loop-carried (recurrence) dependences. Branch classes in the mix are
 * ignored (the loop back-edge is implicit).
 */
sched::Program generateLoops(const WorkloadSpec &spec,
                             const lmdes::LowMdes &low);

} // namespace mdes::workload

#endif // MDES_WORKLOAD_WORKLOAD_H
