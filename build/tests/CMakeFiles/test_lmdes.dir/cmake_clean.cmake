file(REMOVE_RECURSE
  "CMakeFiles/test_lmdes.dir/test_lmdes.cpp.o"
  "CMakeFiles/test_lmdes.dir/test_lmdes.cpp.o.d"
  "test_lmdes"
  "test_lmdes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lmdes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
