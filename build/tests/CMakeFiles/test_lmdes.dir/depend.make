# Empty dependencies file for test_lmdes.
# This may be replaced when dependencies are built.
