file(REMOVE_RECURSE
  "CMakeFiles/test_sasm.dir/test_sasm.cpp.o"
  "CMakeFiles/test_sasm.dir/test_sasm.cpp.o.d"
  "test_sasm"
  "test_sasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
