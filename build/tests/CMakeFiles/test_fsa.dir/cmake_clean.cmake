file(REMOVE_RECURSE
  "CMakeFiles/test_fsa.dir/test_fsa.cpp.o"
  "CMakeFiles/test_fsa.dir/test_fsa.cpp.o.d"
  "test_fsa"
  "test_fsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
