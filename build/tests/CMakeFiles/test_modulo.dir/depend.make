# Empty dependencies file for test_modulo.
# This may be replaced when dependencies are built.
