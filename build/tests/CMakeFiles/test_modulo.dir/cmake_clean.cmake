file(REMOVE_RECURSE
  "CMakeFiles/test_modulo.dir/test_modulo.cpp.o"
  "CMakeFiles/test_modulo.dir/test_modulo.cpp.o.d"
  "test_modulo"
  "test_modulo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modulo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
