# Empty dependencies file for test_bypass.
# This may be replaced when dependencies are built.
