# Empty compiler generated dependencies file for test_docs.
# This may be replaced when dependencies are built.
