file(REMOVE_RECURSE
  "CMakeFiles/test_docs.dir/test_docs.cpp.o"
  "CMakeFiles/test_docs.dir/test_docs.cpp.o.d"
  "test_docs"
  "test_docs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_docs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
