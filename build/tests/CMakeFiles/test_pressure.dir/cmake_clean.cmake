file(REMOVE_RECURSE
  "CMakeFiles/test_pressure.dir/test_pressure.cpp.o"
  "CMakeFiles/test_pressure.dir/test_pressure.cpp.o.d"
  "test_pressure"
  "test_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
