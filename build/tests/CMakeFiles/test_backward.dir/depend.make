# Empty dependencies file for test_backward.
# This may be replaced when dependencies are built.
