# Empty compiler generated dependencies file for test_rumap.
# This may be replaced when dependencies are built.
