file(REMOVE_RECURSE
  "CMakeFiles/test_rumap.dir/test_rumap.cpp.o"
  "CMakeFiles/test_rumap.dir/test_rumap.cpp.o.d"
  "test_rumap"
  "test_rumap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rumap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
