file(REMOVE_RECURSE
  "CMakeFiles/test_hmdes.dir/test_hmdes.cpp.o"
  "CMakeFiles/test_hmdes.dir/test_hmdes.cpp.o.d"
  "test_hmdes"
  "test_hmdes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hmdes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
