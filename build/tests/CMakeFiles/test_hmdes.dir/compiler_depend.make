# Empty compiler generated dependencies file for test_hmdes.
# This may be replaced when dependencies are built.
