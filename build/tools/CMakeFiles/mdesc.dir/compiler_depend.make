# Empty compiler generated dependencies file for mdesc.
# This may be replaced when dependencies are built.
