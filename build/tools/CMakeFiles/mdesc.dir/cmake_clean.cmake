file(REMOVE_RECURSE
  "CMakeFiles/mdesc.dir/mdesc.cpp.o"
  "CMakeFiles/mdesc.dir/mdesc.cpp.o.d"
  "mdesc"
  "mdesc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdesc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
