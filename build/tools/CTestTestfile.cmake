# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_compile_vliw "/root/repo/build/tools/mdesc" "compile" "/root/repo/descriptions/blackbird_vliw.hmdes" "-o" "/root/repo/build/tools/blackbird.lmdes")
set_tests_properties(tool_compile_vliw PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_info_lmdes "/root/repo/build/tools/mdesc" "info" "/root/repo/build/tools/blackbird.lmdes")
set_tests_properties(tool_info_lmdes PROPERTIES  DEPENDS "tool_compile_vliw" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_info_hmdes "/root/repo/build/tools/mdesc" "info" "/root/repo/descriptions/blackbird_vliw.hmdes")
set_tests_properties(tool_info_hmdes PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_dump_operation "/root/repo/build/tools/mdesc" "dump" "/root/repo/descriptions/blackbird_vliw.hmdes" "MUL_A")
set_tests_properties(tool_dump_operation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_export_k5 "/root/repo/build/tools/mdesc" "export" "K5")
set_tests_properties(tool_export_k5 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_stats "/root/repo/build/tools/mdesc" "stats" "/root/repo/descriptions/blackbird_vliw.hmdes")
set_tests_properties(tool_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_schedule "/root/repo/build/tools/mdesc" "schedule" "SuperSPARC" "/root/repo/descriptions/dotproduct.sasm")
set_tests_properties(tool_schedule PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_lint "/root/repo/build/tools/mdesc" "lint" "/root/repo/descriptions/blackbird_vliw.hmdes" "--deep")
set_tests_properties(tool_lint PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;27;add_test;/root/repo/tools/CMakeLists.txt;0;")
