# Empty dependencies file for hazard_analysis.
# This may be replaced when dependencies are built.
