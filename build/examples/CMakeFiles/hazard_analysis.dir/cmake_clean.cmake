file(REMOVE_RECURSE
  "CMakeFiles/hazard_analysis.dir/hazard_analysis.cpp.o"
  "CMakeFiles/hazard_analysis.dir/hazard_analysis.cpp.o.d"
  "hazard_analysis"
  "hazard_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hazard_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
