# Empty dependencies file for software_pipeline.
# This may be replaced when dependencies are built.
