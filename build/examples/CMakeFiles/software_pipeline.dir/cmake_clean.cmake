file(REMOVE_RECURSE
  "CMakeFiles/software_pipeline.dir/software_pipeline.cpp.o"
  "CMakeFiles/software_pipeline.dir/software_pipeline.cpp.o.d"
  "software_pipeline"
  "software_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/software_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
