# Empty compiler generated dependencies file for if_conversion.
# This may be replaced when dependencies are built.
