file(REMOVE_RECURSE
  "CMakeFiles/if_conversion.dir/if_conversion.cpp.o"
  "CMakeFiles/if_conversion.dir/if_conversion.cpp.o.d"
  "if_conversion"
  "if_conversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/if_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
