file(REMOVE_RECURSE
  "CMakeFiles/explore_transforms.dir/explore_transforms.cpp.o"
  "CMakeFiles/explore_transforms.dir/explore_transforms.cpp.o.d"
  "explore_transforms"
  "explore_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
