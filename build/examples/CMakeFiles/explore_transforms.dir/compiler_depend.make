# Empty compiler generated dependencies file for explore_transforms.
# This may be replaced when dependencies are built.
