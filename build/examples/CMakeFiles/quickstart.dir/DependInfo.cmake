
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/mdes_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/machines/CMakeFiles/mdes_machines.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mdes_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/rumap/CMakeFiles/mdes_rumap.dir/DependInfo.cmake"
  "/root/repo/build/src/lmdes/CMakeFiles/mdes_lmdes.dir/DependInfo.cmake"
  "/root/repo/build/src/hmdes/CMakeFiles/mdes_hmdes.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mdes_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mdes_support.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mdes_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
