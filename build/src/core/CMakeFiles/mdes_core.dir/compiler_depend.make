# Empty compiler generated dependencies file for mdes_core.
# This may be replaced when dependencies are built.
