file(REMOVE_RECURSE
  "libmdes_core.a"
)
