file(REMOVE_RECURSE
  "CMakeFiles/mdes_core.dir/collision.cpp.o"
  "CMakeFiles/mdes_core.dir/collision.cpp.o.d"
  "CMakeFiles/mdes_core.dir/expand.cpp.o"
  "CMakeFiles/mdes_core.dir/expand.cpp.o.d"
  "CMakeFiles/mdes_core.dir/lint.cpp.o"
  "CMakeFiles/mdes_core.dir/lint.cpp.o.d"
  "CMakeFiles/mdes_core.dir/mdes.cpp.o"
  "CMakeFiles/mdes_core.dir/mdes.cpp.o.d"
  "CMakeFiles/mdes_core.dir/minimize.cpp.o"
  "CMakeFiles/mdes_core.dir/minimize.cpp.o.d"
  "CMakeFiles/mdes_core.dir/pipeline.cpp.o"
  "CMakeFiles/mdes_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/mdes_core.dir/print.cpp.o"
  "CMakeFiles/mdes_core.dir/print.cpp.o.d"
  "CMakeFiles/mdes_core.dir/transform_andor.cpp.o"
  "CMakeFiles/mdes_core.dir/transform_andor.cpp.o.d"
  "CMakeFiles/mdes_core.dir/transform_cse.cpp.o"
  "CMakeFiles/mdes_core.dir/transform_cse.cpp.o.d"
  "CMakeFiles/mdes_core.dir/transform_redundant.cpp.o"
  "CMakeFiles/mdes_core.dir/transform_redundant.cpp.o.d"
  "CMakeFiles/mdes_core.dir/transform_times.cpp.o"
  "CMakeFiles/mdes_core.dir/transform_times.cpp.o.d"
  "libmdes_core.a"
  "libmdes_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdes_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
