
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/collision.cpp" "src/core/CMakeFiles/mdes_core.dir/collision.cpp.o" "gcc" "src/core/CMakeFiles/mdes_core.dir/collision.cpp.o.d"
  "/root/repo/src/core/expand.cpp" "src/core/CMakeFiles/mdes_core.dir/expand.cpp.o" "gcc" "src/core/CMakeFiles/mdes_core.dir/expand.cpp.o.d"
  "/root/repo/src/core/lint.cpp" "src/core/CMakeFiles/mdes_core.dir/lint.cpp.o" "gcc" "src/core/CMakeFiles/mdes_core.dir/lint.cpp.o.d"
  "/root/repo/src/core/mdes.cpp" "src/core/CMakeFiles/mdes_core.dir/mdes.cpp.o" "gcc" "src/core/CMakeFiles/mdes_core.dir/mdes.cpp.o.d"
  "/root/repo/src/core/minimize.cpp" "src/core/CMakeFiles/mdes_core.dir/minimize.cpp.o" "gcc" "src/core/CMakeFiles/mdes_core.dir/minimize.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/mdes_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/mdes_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/print.cpp" "src/core/CMakeFiles/mdes_core.dir/print.cpp.o" "gcc" "src/core/CMakeFiles/mdes_core.dir/print.cpp.o.d"
  "/root/repo/src/core/transform_andor.cpp" "src/core/CMakeFiles/mdes_core.dir/transform_andor.cpp.o" "gcc" "src/core/CMakeFiles/mdes_core.dir/transform_andor.cpp.o.d"
  "/root/repo/src/core/transform_cse.cpp" "src/core/CMakeFiles/mdes_core.dir/transform_cse.cpp.o" "gcc" "src/core/CMakeFiles/mdes_core.dir/transform_cse.cpp.o.d"
  "/root/repo/src/core/transform_redundant.cpp" "src/core/CMakeFiles/mdes_core.dir/transform_redundant.cpp.o" "gcc" "src/core/CMakeFiles/mdes_core.dir/transform_redundant.cpp.o.d"
  "/root/repo/src/core/transform_times.cpp" "src/core/CMakeFiles/mdes_core.dir/transform_times.cpp.o" "gcc" "src/core/CMakeFiles/mdes_core.dir/transform_times.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mdes_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
