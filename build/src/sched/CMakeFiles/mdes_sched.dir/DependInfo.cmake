
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/backward_scheduler.cpp" "src/sched/CMakeFiles/mdes_sched.dir/backward_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/mdes_sched.dir/backward_scheduler.cpp.o.d"
  "/root/repo/src/sched/dep_graph.cpp" "src/sched/CMakeFiles/mdes_sched.dir/dep_graph.cpp.o" "gcc" "src/sched/CMakeFiles/mdes_sched.dir/dep_graph.cpp.o.d"
  "/root/repo/src/sched/list_scheduler.cpp" "src/sched/CMakeFiles/mdes_sched.dir/list_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/mdes_sched.dir/list_scheduler.cpp.o.d"
  "/root/repo/src/sched/modulo_scheduler.cpp" "src/sched/CMakeFiles/mdes_sched.dir/modulo_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/mdes_sched.dir/modulo_scheduler.cpp.o.d"
  "/root/repo/src/sched/pressure.cpp" "src/sched/CMakeFiles/mdes_sched.dir/pressure.cpp.o" "gcc" "src/sched/CMakeFiles/mdes_sched.dir/pressure.cpp.o.d"
  "/root/repo/src/sched/verify.cpp" "src/sched/CMakeFiles/mdes_sched.dir/verify.cpp.o" "gcc" "src/sched/CMakeFiles/mdes_sched.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lmdes/CMakeFiles/mdes_lmdes.dir/DependInfo.cmake"
  "/root/repo/build/src/rumap/CMakeFiles/mdes_rumap.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mdes_support.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mdes_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
