file(REMOVE_RECURSE
  "CMakeFiles/mdes_sched.dir/backward_scheduler.cpp.o"
  "CMakeFiles/mdes_sched.dir/backward_scheduler.cpp.o.d"
  "CMakeFiles/mdes_sched.dir/dep_graph.cpp.o"
  "CMakeFiles/mdes_sched.dir/dep_graph.cpp.o.d"
  "CMakeFiles/mdes_sched.dir/list_scheduler.cpp.o"
  "CMakeFiles/mdes_sched.dir/list_scheduler.cpp.o.d"
  "CMakeFiles/mdes_sched.dir/modulo_scheduler.cpp.o"
  "CMakeFiles/mdes_sched.dir/modulo_scheduler.cpp.o.d"
  "CMakeFiles/mdes_sched.dir/pressure.cpp.o"
  "CMakeFiles/mdes_sched.dir/pressure.cpp.o.d"
  "CMakeFiles/mdes_sched.dir/verify.cpp.o"
  "CMakeFiles/mdes_sched.dir/verify.cpp.o.d"
  "libmdes_sched.a"
  "libmdes_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdes_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
