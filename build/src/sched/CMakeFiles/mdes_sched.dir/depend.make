# Empty dependencies file for mdes_sched.
# This may be replaced when dependencies are built.
