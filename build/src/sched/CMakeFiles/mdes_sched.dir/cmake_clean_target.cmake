file(REMOVE_RECURSE
  "libmdes_sched.a"
)
