file(REMOVE_RECURSE
  "libmdes_support.a"
)
