file(REMOVE_RECURSE
  "CMakeFiles/mdes_support.dir/bit_vector.cpp.o"
  "CMakeFiles/mdes_support.dir/bit_vector.cpp.o.d"
  "CMakeFiles/mdes_support.dir/diagnostics.cpp.o"
  "CMakeFiles/mdes_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/mdes_support.dir/histogram.cpp.o"
  "CMakeFiles/mdes_support.dir/histogram.cpp.o.d"
  "CMakeFiles/mdes_support.dir/text_table.cpp.o"
  "CMakeFiles/mdes_support.dir/text_table.cpp.o.d"
  "libmdes_support.a"
  "libmdes_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdes_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
