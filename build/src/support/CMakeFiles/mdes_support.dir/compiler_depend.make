# Empty compiler generated dependencies file for mdes_support.
# This may be replaced when dependencies are built.
