file(REMOVE_RECURSE
  "libmdes_workload.a"
)
