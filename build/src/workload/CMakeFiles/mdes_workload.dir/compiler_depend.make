# Empty compiler generated dependencies file for mdes_workload.
# This may be replaced when dependencies are built.
