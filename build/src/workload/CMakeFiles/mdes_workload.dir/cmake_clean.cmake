file(REMOVE_RECURSE
  "CMakeFiles/mdes_workload.dir/sasm.cpp.o"
  "CMakeFiles/mdes_workload.dir/sasm.cpp.o.d"
  "CMakeFiles/mdes_workload.dir/workload.cpp.o"
  "CMakeFiles/mdes_workload.dir/workload.cpp.o.d"
  "libmdes_workload.a"
  "libmdes_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdes_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
