file(REMOVE_RECURSE
  "libmdes_machines.a"
)
