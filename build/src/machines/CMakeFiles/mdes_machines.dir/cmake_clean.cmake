file(REMOVE_RECURSE
  "CMakeFiles/mdes_machines.dir/k5.cpp.o"
  "CMakeFiles/mdes_machines.dir/k5.cpp.o.d"
  "CMakeFiles/mdes_machines.dir/pa7100.cpp.o"
  "CMakeFiles/mdes_machines.dir/pa7100.cpp.o.d"
  "CMakeFiles/mdes_machines.dir/pa8000.cpp.o"
  "CMakeFiles/mdes_machines.dir/pa8000.cpp.o.d"
  "CMakeFiles/mdes_machines.dir/pentium.cpp.o"
  "CMakeFiles/mdes_machines.dir/pentium.cpp.o.d"
  "CMakeFiles/mdes_machines.dir/pentium_pro.cpp.o"
  "CMakeFiles/mdes_machines.dir/pentium_pro.cpp.o.d"
  "CMakeFiles/mdes_machines.dir/registry.cpp.o"
  "CMakeFiles/mdes_machines.dir/registry.cpp.o.d"
  "CMakeFiles/mdes_machines.dir/super_sparc.cpp.o"
  "CMakeFiles/mdes_machines.dir/super_sparc.cpp.o.d"
  "libmdes_machines.a"
  "libmdes_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdes_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
