
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machines/k5.cpp" "src/machines/CMakeFiles/mdes_machines.dir/k5.cpp.o" "gcc" "src/machines/CMakeFiles/mdes_machines.dir/k5.cpp.o.d"
  "/root/repo/src/machines/pa7100.cpp" "src/machines/CMakeFiles/mdes_machines.dir/pa7100.cpp.o" "gcc" "src/machines/CMakeFiles/mdes_machines.dir/pa7100.cpp.o.d"
  "/root/repo/src/machines/pa8000.cpp" "src/machines/CMakeFiles/mdes_machines.dir/pa8000.cpp.o" "gcc" "src/machines/CMakeFiles/mdes_machines.dir/pa8000.cpp.o.d"
  "/root/repo/src/machines/pentium.cpp" "src/machines/CMakeFiles/mdes_machines.dir/pentium.cpp.o" "gcc" "src/machines/CMakeFiles/mdes_machines.dir/pentium.cpp.o.d"
  "/root/repo/src/machines/pentium_pro.cpp" "src/machines/CMakeFiles/mdes_machines.dir/pentium_pro.cpp.o" "gcc" "src/machines/CMakeFiles/mdes_machines.dir/pentium_pro.cpp.o.d"
  "/root/repo/src/machines/registry.cpp" "src/machines/CMakeFiles/mdes_machines.dir/registry.cpp.o" "gcc" "src/machines/CMakeFiles/mdes_machines.dir/registry.cpp.o.d"
  "/root/repo/src/machines/super_sparc.cpp" "src/machines/CMakeFiles/mdes_machines.dir/super_sparc.cpp.o" "gcc" "src/machines/CMakeFiles/mdes_machines.dir/super_sparc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/mdes_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mdes_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mdes_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/rumap/CMakeFiles/mdes_rumap.dir/DependInfo.cmake"
  "/root/repo/build/src/lmdes/CMakeFiles/mdes_lmdes.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mdes_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
