# Empty compiler generated dependencies file for mdes_machines.
# This may be replaced when dependencies are built.
