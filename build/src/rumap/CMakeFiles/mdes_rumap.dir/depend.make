# Empty dependencies file for mdes_rumap.
# This may be replaced when dependencies are built.
