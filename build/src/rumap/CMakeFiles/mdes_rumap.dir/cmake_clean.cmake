file(REMOVE_RECURSE
  "CMakeFiles/mdes_rumap.dir/checker.cpp.o"
  "CMakeFiles/mdes_rumap.dir/checker.cpp.o.d"
  "CMakeFiles/mdes_rumap.dir/ru_map.cpp.o"
  "CMakeFiles/mdes_rumap.dir/ru_map.cpp.o.d"
  "libmdes_rumap.a"
  "libmdes_rumap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdes_rumap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
