
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rumap/checker.cpp" "src/rumap/CMakeFiles/mdes_rumap.dir/checker.cpp.o" "gcc" "src/rumap/CMakeFiles/mdes_rumap.dir/checker.cpp.o.d"
  "/root/repo/src/rumap/ru_map.cpp" "src/rumap/CMakeFiles/mdes_rumap.dir/ru_map.cpp.o" "gcc" "src/rumap/CMakeFiles/mdes_rumap.dir/ru_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lmdes/CMakeFiles/mdes_lmdes.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mdes_support.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mdes_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
