file(REMOVE_RECURSE
  "libmdes_rumap.a"
)
