file(REMOVE_RECURSE
  "libmdes_exp.a"
)
