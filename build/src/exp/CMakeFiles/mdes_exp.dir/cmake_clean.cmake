file(REMOVE_RECURSE
  "CMakeFiles/mdes_exp.dir/runner.cpp.o"
  "CMakeFiles/mdes_exp.dir/runner.cpp.o.d"
  "libmdes_exp.a"
  "libmdes_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdes_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
