# Empty compiler generated dependencies file for mdes_exp.
# This may be replaced when dependencies are built.
