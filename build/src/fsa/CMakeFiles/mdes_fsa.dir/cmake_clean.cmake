file(REMOVE_RECURSE
  "CMakeFiles/mdes_fsa.dir/automaton.cpp.o"
  "CMakeFiles/mdes_fsa.dir/automaton.cpp.o.d"
  "libmdes_fsa.a"
  "libmdes_fsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdes_fsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
