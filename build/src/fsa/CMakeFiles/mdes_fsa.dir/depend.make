# Empty dependencies file for mdes_fsa.
# This may be replaced when dependencies are built.
