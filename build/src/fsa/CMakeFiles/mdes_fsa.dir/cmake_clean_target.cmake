file(REMOVE_RECURSE
  "libmdes_fsa.a"
)
