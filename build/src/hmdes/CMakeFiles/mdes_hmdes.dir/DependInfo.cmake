
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hmdes/builder.cpp" "src/hmdes/CMakeFiles/mdes_hmdes.dir/builder.cpp.o" "gcc" "src/hmdes/CMakeFiles/mdes_hmdes.dir/builder.cpp.o.d"
  "/root/repo/src/hmdes/compile.cpp" "src/hmdes/CMakeFiles/mdes_hmdes.dir/compile.cpp.o" "gcc" "src/hmdes/CMakeFiles/mdes_hmdes.dir/compile.cpp.o.d"
  "/root/repo/src/hmdes/lexer.cpp" "src/hmdes/CMakeFiles/mdes_hmdes.dir/lexer.cpp.o" "gcc" "src/hmdes/CMakeFiles/mdes_hmdes.dir/lexer.cpp.o.d"
  "/root/repo/src/hmdes/parser.cpp" "src/hmdes/CMakeFiles/mdes_hmdes.dir/parser.cpp.o" "gcc" "src/hmdes/CMakeFiles/mdes_hmdes.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mdes_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mdes_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
