file(REMOVE_RECURSE
  "libmdes_hmdes.a"
)
