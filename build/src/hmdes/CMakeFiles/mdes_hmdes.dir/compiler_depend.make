# Empty compiler generated dependencies file for mdes_hmdes.
# This may be replaced when dependencies are built.
