file(REMOVE_RECURSE
  "CMakeFiles/mdes_hmdes.dir/builder.cpp.o"
  "CMakeFiles/mdes_hmdes.dir/builder.cpp.o.d"
  "CMakeFiles/mdes_hmdes.dir/compile.cpp.o"
  "CMakeFiles/mdes_hmdes.dir/compile.cpp.o.d"
  "CMakeFiles/mdes_hmdes.dir/lexer.cpp.o"
  "CMakeFiles/mdes_hmdes.dir/lexer.cpp.o.d"
  "CMakeFiles/mdes_hmdes.dir/parser.cpp.o"
  "CMakeFiles/mdes_hmdes.dir/parser.cpp.o.d"
  "libmdes_hmdes.a"
  "libmdes_hmdes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdes_hmdes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
