
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lmdes/low_mdes.cpp" "src/lmdes/CMakeFiles/mdes_lmdes.dir/low_mdes.cpp.o" "gcc" "src/lmdes/CMakeFiles/mdes_lmdes.dir/low_mdes.cpp.o.d"
  "/root/repo/src/lmdes/serialize.cpp" "src/lmdes/CMakeFiles/mdes_lmdes.dir/serialize.cpp.o" "gcc" "src/lmdes/CMakeFiles/mdes_lmdes.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mdes_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mdes_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
