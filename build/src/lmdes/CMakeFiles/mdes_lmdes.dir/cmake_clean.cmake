file(REMOVE_RECURSE
  "CMakeFiles/mdes_lmdes.dir/low_mdes.cpp.o"
  "CMakeFiles/mdes_lmdes.dir/low_mdes.cpp.o.d"
  "CMakeFiles/mdes_lmdes.dir/serialize.cpp.o"
  "CMakeFiles/mdes_lmdes.dir/serialize.cpp.o.d"
  "libmdes_lmdes.a"
  "libmdes_lmdes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdes_lmdes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
