file(REMOVE_RECURSE
  "libmdes_lmdes.a"
)
