# Empty compiler generated dependencies file for mdes_lmdes.
# This may be replaced when dependencies are built.
