# Empty compiler generated dependencies file for bench_table06_original_memory.
# This may be replaced when dependencies are built.
