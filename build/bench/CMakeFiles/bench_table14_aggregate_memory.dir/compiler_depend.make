# Empty compiler generated dependencies file for bench_table14_aggregate_memory.
# This may be replaced when dependencies are built.
