file(REMOVE_RECURSE
  "CMakeFiles/bench_table05_original_sched.dir/bench_table05_original_sched.cpp.o"
  "CMakeFiles/bench_table05_original_sched.dir/bench_table05_original_sched.cpp.o.d"
  "bench_table05_original_sched"
  "bench_table05_original_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table05_original_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
