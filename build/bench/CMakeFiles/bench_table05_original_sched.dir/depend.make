# Empty dependencies file for bench_table05_original_sched.
# This may be replaced when dependencies are built.
