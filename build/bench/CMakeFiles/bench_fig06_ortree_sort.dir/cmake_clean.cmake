file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_ortree_sort.dir/bench_fig06_ortree_sort.cpp.o"
  "CMakeFiles/bench_fig06_ortree_sort.dir/bench_fig06_ortree_sort.cpp.o.d"
  "bench_fig06_ortree_sort"
  "bench_fig06_ortree_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_ortree_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
