# Empty compiler generated dependencies file for bench_fig06_ortree_sort.
# This may be replaced when dependencies are built.
