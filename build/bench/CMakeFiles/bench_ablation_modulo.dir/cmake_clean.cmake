file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_modulo.dir/bench_ablation_modulo.cpp.o"
  "CMakeFiles/bench_ablation_modulo.dir/bench_ablation_modulo.cpp.o.d"
  "bench_ablation_modulo"
  "bench_ablation_modulo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_modulo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
