# Empty compiler generated dependencies file for bench_ablation_modulo.
# This may be replaced when dependencies are built.
