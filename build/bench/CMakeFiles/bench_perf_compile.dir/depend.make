# Empty dependencies file for bench_perf_compile.
# This may be replaced when dependencies are built.
