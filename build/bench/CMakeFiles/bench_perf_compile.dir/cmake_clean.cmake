file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_compile.dir/bench_perf_compile.cpp.o"
  "CMakeFiles/bench_perf_compile.dir/bench_perf_compile.cpp.o.d"
  "bench_perf_compile"
  "bench_perf_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
