# Empty dependencies file for bench_table10_bitvector_checks.
# This may be replaced when dependencies are built.
