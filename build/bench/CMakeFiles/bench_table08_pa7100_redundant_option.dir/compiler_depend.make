# Empty compiler generated dependencies file for bench_table08_pa7100_redundant_option.
# This may be replaced when dependencies are built.
