file(REMOVE_RECURSE
  "CMakeFiles/bench_table08_pa7100_redundant_option.dir/bench_table08_pa7100_redundant_option.cpp.o"
  "CMakeFiles/bench_table08_pa7100_redundant_option.dir/bench_table08_pa7100_redundant_option.cpp.o.d"
  "bench_table08_pa7100_redundant_option"
  "bench_table08_pa7100_redundant_option.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table08_pa7100_redundant_option.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
