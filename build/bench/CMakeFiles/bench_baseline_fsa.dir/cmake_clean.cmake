file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_fsa.dir/bench_baseline_fsa.cpp.o"
  "CMakeFiles/bench_baseline_fsa.dir/bench_baseline_fsa.cpp.o.d"
  "bench_baseline_fsa"
  "bench_baseline_fsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_fsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
