# Empty compiler generated dependencies file for bench_baseline_fsa.
# This may be replaced when dependencies are built.
