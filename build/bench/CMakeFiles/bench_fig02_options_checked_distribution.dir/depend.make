# Empty dependencies file for bench_fig02_options_checked_distribution.
# This may be replaced when dependencies are built.
