file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_options_checked_distribution.dir/bench_fig02_options_checked_distribution.cpp.o"
  "CMakeFiles/bench_fig02_options_checked_distribution.dir/bench_fig02_options_checked_distribution.cpp.o.d"
  "bench_fig02_options_checked_distribution"
  "bench_fig02_options_checked_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_options_checked_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
