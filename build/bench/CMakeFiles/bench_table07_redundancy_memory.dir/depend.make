# Empty dependencies file for bench_table07_redundancy_memory.
# This may be replaced when dependencies are built.
