# Empty compiler generated dependencies file for bench_table01_superspark_breakdown.
# This may be replaced when dependencies are built.
