# Empty dependencies file for bench_fig05_timeshift_tables.
# This may be replaced when dependencies are built.
