# Empty dependencies file for bench_table15_aggregate_checks.
# This may be replaced when dependencies are built.
