file(REMOVE_RECURSE
  "CMakeFiles/bench_table15_aggregate_checks.dir/bench_table15_aggregate_checks.cpp.o"
  "CMakeFiles/bench_table15_aggregate_checks.dir/bench_table15_aggregate_checks.cpp.o.d"
  "bench_table15_aggregate_checks"
  "bench_table15_aggregate_checks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table15_aggregate_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
