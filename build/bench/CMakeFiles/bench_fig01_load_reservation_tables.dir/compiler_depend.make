# Empty compiler generated dependencies file for bench_fig01_load_reservation_tables.
# This may be replaced when dependencies are built.
