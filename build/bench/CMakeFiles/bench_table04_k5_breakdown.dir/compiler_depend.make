# Empty compiler generated dependencies file for bench_table04_k5_breakdown.
# This may be replaced when dependencies are built.
