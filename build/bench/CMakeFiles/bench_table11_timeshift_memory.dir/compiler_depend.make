# Empty compiler generated dependencies file for bench_table11_timeshift_memory.
# This may be replaced when dependencies are built.
