file(REMOVE_RECURSE
  "libmdes_bench_util.a"
)
