file(REMOVE_RECURSE
  "CMakeFiles/mdes_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/mdes_bench_util.dir/bench_util.cpp.o.d"
  "libmdes_bench_util.a"
  "libmdes_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdes_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
