# Empty compiler generated dependencies file for mdes_bench_util.
# This may be replaced when dependencies are built.
