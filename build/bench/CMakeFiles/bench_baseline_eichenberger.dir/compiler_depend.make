# Empty compiler generated dependencies file for bench_baseline_eichenberger.
# This may be replaced when dependencies are built.
