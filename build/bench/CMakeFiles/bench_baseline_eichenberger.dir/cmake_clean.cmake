file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_eichenberger.dir/bench_baseline_eichenberger.cpp.o"
  "CMakeFiles/bench_baseline_eichenberger.dir/bench_baseline_eichenberger.cpp.o.d"
  "bench_baseline_eichenberger"
  "bench_baseline_eichenberger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_eichenberger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
