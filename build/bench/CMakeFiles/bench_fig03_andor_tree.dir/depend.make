# Empty dependencies file for bench_fig03_andor_tree.
# This may be replaced when dependencies are built.
