file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_pentiumpro.dir/bench_extension_pentiumpro.cpp.o"
  "CMakeFiles/bench_extension_pentiumpro.dir/bench_extension_pentiumpro.cpp.o.d"
  "bench_extension_pentiumpro"
  "bench_extension_pentiumpro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_pentiumpro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
