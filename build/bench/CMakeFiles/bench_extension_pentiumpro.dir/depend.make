# Empty dependencies file for bench_extension_pentiumpro.
# This may be replaced when dependencies are built.
