# Empty dependencies file for bench_table12_timeshift_checks.
# This may be replaced when dependencies are built.
