file(REMOVE_RECURSE
  "CMakeFiles/bench_table12_timeshift_checks.dir/bench_table12_timeshift_checks.cpp.o"
  "CMakeFiles/bench_table12_timeshift_checks.dir/bench_table12_timeshift_checks.cpp.o.d"
  "bench_table12_timeshift_checks"
  "bench_table12_timeshift_checks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_timeshift_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
