# Empty compiler generated dependencies file for bench_table03_pentium_breakdown.
# This may be replaced when dependencies are built.
