# Empty compiler generated dependencies file for bench_table02_pa7100_breakdown.
# This may be replaced when dependencies are built.
