# Empty compiler generated dependencies file for bench_table09_bitvector_memory.
# This may be replaced when dependencies are built.
