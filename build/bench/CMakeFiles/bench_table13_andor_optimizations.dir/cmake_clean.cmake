file(REMOVE_RECURSE
  "CMakeFiles/bench_table13_andor_optimizations.dir/bench_table13_andor_optimizations.cpp.o"
  "CMakeFiles/bench_table13_andor_optimizations.dir/bench_table13_andor_optimizations.cpp.o.d"
  "bench_table13_andor_optimizations"
  "bench_table13_andor_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table13_andor_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
