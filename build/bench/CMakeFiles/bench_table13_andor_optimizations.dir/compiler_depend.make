# Empty compiler generated dependencies file for bench_table13_andor_optimizations.
# This may be replaced when dependencies are built.
