# Empty dependencies file for bench_fig04_ortree_sharing.
# This may be replaced when dependencies are built.
