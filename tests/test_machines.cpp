/**
 * @file
 * Machine-description correctness: the four shipped descriptions compile,
 * validate, and reproduce the paper's option-count breakdowns
 * (Tables 1-4) exactly.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/expand.h"
#include "exp/runner.h"
#include "hmdes/compile.h"
#include "machines/machines.h"

namespace mdes {
namespace {

/** Expanded option count for every operation class, via its tree. */
std::map<std::string, uint64_t>
optionCounts(const Mdes &m)
{
    std::map<std::string, uint64_t> counts;
    for (const auto &oc : m.opClasses())
        counts[oc.name] = m.expandedOptionCount(oc.tree);
    return counts;
}

/** The distinct option-count groups over all operation classes. */
std::set<uint64_t>
optionGroups(const Mdes &m)
{
    std::set<uint64_t> groups;
    for (const auto &oc : m.opClasses())
        groups.insert(m.expandedOptionCount(oc.tree));
    return groups;
}

TEST(Machines, AllCompileAndValidate)
{
    for (const auto *info : machines::all()) {
        SCOPED_TRACE(info->name);
        Mdes m = hmdes::compileOrThrow(info->source);
        EXPECT_EQ(m.validate(), "");
        EXPECT_EQ(m.name(), info->name);
        EXPECT_LE(m.numResources(), 64u);
    }
}

TEST(Machines, SuperSparcMatchesTable1)
{
    Mdes m = hmdes::compileOrThrow(machines::superSparc().source);
    auto counts = optionCounts(m);

    // Branches and serial ops: 1 option.
    EXPECT_EQ(counts["BA"], 1u);
    EXPECT_EQ(counts["CALL"], 1u);
    EXPECT_EQ(counts["LDSTUB"], 1u);
    // Floating-point ops: 3 options.
    EXPECT_EQ(counts["FADD"], 3u);
    EXPECT_EQ(counts["FDIV"], 3u);
    // Loads: 6. Stores: 12.
    EXPECT_EQ(counts["LD"], 6u);
    EXPECT_EQ(counts["ST"], 12u);
    // Shifts: 24 (1 source) and 36 (2 sources).
    EXPECT_EQ(counts["SLL_I"], 24u);
    EXPECT_EQ(counts["SLL_R"], 36u);
    // IALU: 48 (1 source) and 72 (2 sources).
    EXPECT_EQ(counts["ADD_I"], 48u);
    EXPECT_EQ(counts["ADD_R"], 72u);
    // Cascaded IALU tables have half the options of the normal tables.
    auto cascade1 = m.opClass(m.findOpClass("ADD_I")).cascade_tree;
    auto cascade2 = m.opClass(m.findOpClass("ADD_R")).cascade_tree;
    ASSERT_NE(cascade1, kInvalidId);
    ASSERT_NE(cascade2, kInvalidId);
    EXPECT_EQ(m.expandedOptionCount(cascade1), 24u);
    EXPECT_EQ(m.expandedOptionCount(cascade2), 36u);

    EXPECT_EQ(optionGroups(m),
              (std::set<uint64_t>{1, 3, 6, 12, 24, 36, 48, 72}));
}

TEST(Machines, Pa7100MatchesTable2)
{
    Mdes m = hmdes::compileOrThrow(machines::pa7100().source);
    auto counts = optionCounts(m);

    EXPECT_EQ(counts["B"], 1u);
    EXPECT_EQ(counts["ADD"], 2u);
    EXPECT_EQ(counts["FADD"], 2u);
    // The original memory table carries the historical duplicated option
    // (3 = 2 + 1 duplicate); Table 8's transformation removes it.
    EXPECT_EQ(counts["LDW"], 3u);

    Mdes cleaned = m;
    removeRedundantOptions(cleaned);
    EXPECT_EQ(optionCounts(cleaned)["LDW"], 2u);
    EXPECT_EQ(optionGroups(cleaned), (std::set<uint64_t>{1, 2}));
}

TEST(Machines, PentiumMatchesTable3)
{
    Mdes m = hmdes::compileOrThrow(machines::pentium().source);
    auto counts = optionCounts(m);

    // Either pipe: 2 options.
    EXPECT_EQ(counts["MOV_RR"], 2u);
    EXPECT_EQ(counts["MOV_RM"], 2u);
    EXPECT_EQ(counts["ALU_RR"], 2u);
    // Only one pipe (or issue alone): 1 option.
    EXPECT_EQ(counts["SHL"], 1u);
    EXPECT_EQ(counts["IMUL"], 1u);
    EXPECT_EQ(counts["CMP_BR"], 1u);

    EXPECT_EQ(optionGroups(m), (std::set<uint64_t>{1, 2}));

    // The paper: the Pentium MDES does not use AND/OR-trees - every
    // table's AND level points at a single OR-tree.
    for (const auto &oc : m.opClasses())
        EXPECT_EQ(m.tree(oc.tree).or_trees.size(), 1u) << oc.name;
}

TEST(Machines, K5MatchesTable4)
{
    Mdes m = hmdes::compileOrThrow(machines::k5().source);
    auto counts = optionCounts(m);

    EXPECT_EQ(counts["FADD_X87"], 16u);
    EXPECT_EQ(counts["IMUL"], 16u);
    EXPECT_EQ(counts["XCHG"], 24u);
    EXPECT_EQ(counts["MOV_RR"], 32u);
    EXPECT_EQ(counts["MOV_RM"], 32u);
    EXPECT_EQ(counts["CMP_BR"], 48u);
    EXPECT_EQ(counts["CMPM_BR"], 64u);
    EXPECT_EQ(counts["LOAD_OP"], 96u);
    EXPECT_EQ(counts["CMP_BR_FAR"], 128u);
    EXPECT_EQ(counts["PUSH_MEM"], 192u);
    EXPECT_EQ(counts["LOAD_OP_W"], 256u);
    EXPECT_EQ(counts["CMPM_BR_FAR"], 384u);
    EXPECT_EQ(counts["RMW"], 768u);

    EXPECT_EQ(optionGroups(m),
              (std::set<uint64_t>{16, 24, 32, 48, 64, 96, 128, 192, 256,
                                  384, 768}));
}

TEST(Machines, ExpansionMatchesProductCounts)
{
    // The MDES preprocessor's flat OR-trees must have exactly the
    // product-of-subtrees option counts (no internal conflicts in the
    // shipped descriptions).
    for (const auto *info : machines::all()) {
        SCOPED_TRACE(info->name);
        Mdes m = hmdes::compileOrThrow(info->source);
        Mdes flat = expandToOrForm(m);
        for (const auto &oc : m.opClasses()) {
            uint64_t expect = m.expandedOptionCount(oc.tree);
            uint32_t flat_cls = flat.findOpClass(oc.name);
            ASSERT_NE(flat_cls, kInvalidId);
            const auto &ft = flat.tree(flat.opClass(flat_cls).tree);
            ASSERT_EQ(ft.or_trees.size(), 1u);
            EXPECT_EQ(flat.orTree(ft.or_trees[0]).options.size(), expect)
                << oc.name;
        }
    }
}

TEST(Machines, PentiumProExtensionCompilesAndPatternsWithK5)
{
    // The forward-looking extension machine (the paper's closing
    // prediction): compiles clean, exposes K5-style combinatorics, and
    // stays out of the paper's four-machine lineup.
    const auto &info = machines::pentiumPro();
    DiagnosticEngine diags;
    auto m = hmdes::compile(info.source, diags);
    ASSERT_TRUE(m.has_value()) << diags.toString();
    EXPECT_TRUE(diags.diagnostics().empty()) << diags.toString();
    EXPECT_EQ(m->validate(), "");

    auto counts = optionCounts(*m);
    EXPECT_EQ(counts["ALU_RR"], 54u); // 3 dec x 3 rat x 2 ports x 3 ret
    EXPECT_EQ(counts["MOV_RM"], 27u);
    EXPECT_EQ(counts["MOV_MR"], 9u);
    EXPECT_EQ(counts["RMW"], 6u);
    EXPECT_EQ(m->bypasses().size(), 1u);

    // Not part of the paper's evaluated set.
    for (const auto *paper_machine : machines::all())
        EXPECT_NE(paper_machine->name, info.name);
    EXPECT_EQ(machines::byName("PentiumPro"), &info);

    // Full pipeline + scheduling works end to end.
    exp::RunConfig config = exp::optimizedConfig(info, exp::Rep::AndOrTree);
    config.num_ops_override = 5000;
    exp::RunResult result = exp::run(config);
    EXPECT_GT(result.stats.ops_scheduled, 5000u - 20u);
    EXPECT_GT(result.stats.avgAttemptsPerOp(), 1.0);
}

TEST(Machines, Pa8000ExtensionCompilesAndPatternsWithK5)
{
    const auto &info = machines::pa8000();
    DiagnosticEngine diags;
    auto m = hmdes::compile(info.source, diags);
    ASSERT_TRUE(m.has_value()) << diags.toString();
    EXPECT_TRUE(diags.diagnostics().empty()) << diags.toString();
    EXPECT_EQ(m->validate(), "");

    auto counts = optionCounts(*m);
    EXPECT_EQ(counts["ADD"], 128u); // 4 pos x 4 insert x 2 ALUs x 4 ret
    EXPECT_EQ(counts["LDW"], 128u);
    EXPECT_EQ(counts["COMBT"], 32u);
    EXPECT_EQ(m->bypasses().size(), 1u);

    ASSERT_EQ(machines::extensions().size(), 2u);
    EXPECT_EQ(machines::byName("PA8000"), &info);

    exp::RunConfig config = exp::optimizedConfig(info, exp::Rep::AndOrTree);
    config.num_ops_override = 5000;
    exp::RunResult result = exp::run(config);
    EXPECT_GT(result.stats.ops_scheduled, 5000u - 20u);
}

TEST(Machines, DescriptionsCarryDecayForSection5)
{
    // Each description deliberately contains duplicated or unused
    // information; the Section 5 transformations must find work.
    for (const auto *info : machines::all()) {
        SCOPED_TRACE(info->name);
        Mdes m = hmdes::compileOrThrow(info->source);
        auto stats = eliminateRedundantInfo(m);
        EXPECT_GT(stats.merged_options + stats.merged_or_trees +
                      stats.merged_trees + stats.removed_dead,
                  0u);
        EXPECT_EQ(m.validate(), "");
    }
}

} // namespace
} // namespace mdes
