/**
 * @file
 * RU-map and constraint-checker tests: reservation/availability
 * semantics, negative cycles, short-circuit statistics, AND/OR pending
 * overlay exactness, and a randomized equivalence check against a
 * brute-force oracle.
 */

#include <gtest/gtest.h>

#include <map>

#include "lmdes/low_mdes.h"
#include "rumap/checker.h"
#include "rumap/ru_map.h"
#include "support/rng.h"

namespace mdes {
namespace {

using lmdes::LowMdes;
using rumap::Checker;
using rumap::CheckStats;
using rumap::RuMap;

// ------------------------------------------------------------------ RuMap

TEST(RuMap, FreshMapIsFree)
{
    RuMap ru;
    EXPECT_TRUE(ru.available(0, 0xFF));
    EXPECT_TRUE(ru.available(-100, 0xFF));
    EXPECT_TRUE(ru.available(1 << 20, 0xFF));
}

TEST(RuMap, ReserveBlocksExactCycleAndMask)
{
    RuMap ru;
    ru.reserve(5, 0b0110);
    EXPECT_FALSE(ru.available(5, 0b0010));
    EXPECT_FALSE(ru.available(5, 0b1100)); // overlap on bit 2
    EXPECT_TRUE(ru.available(5, 0b1001));
    EXPECT_TRUE(ru.available(4, 0b0110));
    EXPECT_TRUE(ru.available(6, 0b0110));
}

TEST(RuMap, NegativeCyclesWork)
{
    RuMap ru;
    ru.reserve(-3, 0b1);
    ru.reserve(7, 0b1);
    EXPECT_FALSE(ru.available(-3, 0b1));
    EXPECT_FALSE(ru.available(7, 0b1));
    EXPECT_TRUE(ru.available(-4, 0b1));
    ru.reserve(-40, 0b1); // force downward growth
    EXPECT_FALSE(ru.available(-40, 0b1));
    EXPECT_FALSE(ru.available(-3, 0b1)); // prior content preserved
}

TEST(RuMap, ClearForgets)
{
    RuMap ru;
    ru.reserve(2, 0b1);
    ru.clear();
    EXPECT_TRUE(ru.available(2, 0b1));
}

TEST(RuMap, WordExposesReservations)
{
    RuMap ru;
    ru.reserve(3, 0b101);
    ru.reserve(3, 0b010);
    EXPECT_EQ(ru.word(3), 0b111u);
    EXPECT_EQ(ru.word(4), 0u);
}

// ---------------------------------------------------------------- Checker

/** AND(U, AnyW(2), AnyD(3)) - the SuperSPARC-load shape. */
Mdes
loadShape()
{
    Mdes m("load");
    ResourceId u = m.addResourceClass("U", 1);
    ResourceId w = m.addResourceClass("W", 2);
    ResourceId d = m.addResourceClass("D", 3);
    OrTreeId unit = m.addOrTree({"U", {m.addOption({{{0, u}}})}});
    OrTreeId anyw = m.addOrTree({"W",
                                 {m.addOption({{{1, w}}}),
                                  m.addOption({{{1, w + 1}}})}});
    OrTreeId anyd = m.addOrTree({"D",
                                 {m.addOption({{{-1, d}}}),
                                  m.addOption({{{-1, d + 1}}}),
                                  m.addOption({{{-1, d + 2}}})}});
    TreeId tree = m.addTree({"Load", {unit, anyw, anyd}});
    m.addOpClass({"LD", tree, 1, kInvalidId, ""});
    return m;
}

TEST(Checker, ReservesChosenOptionsOnly)
{
    Mdes m = loadShape();
    LowMdes low = LowMdes::lower(m, {});
    Checker checker(low);
    RuMap ru;
    CheckStats stats;
    std::vector<uint32_t> chosen;

    ASSERT_TRUE(checker.tryReserve(0, 0, ru, stats, &chosen));
    ASSERT_EQ(chosen.size(), 3u);
    // Highest-priority choices: U, W[0]@1, D[0]@-1.
    EXPECT_FALSE(ru.available(0, uint64_t(1) << 0)); // U
    EXPECT_FALSE(ru.available(1, uint64_t(1) << 1)); // W[0]
    EXPECT_TRUE(ru.available(1, uint64_t(1) << 2));  // W[1] untouched
    EXPECT_FALSE(ru.available(-1, uint64_t(1) << 3)); // D[0]
    EXPECT_EQ(stats.attempts, 1u);
    EXPECT_EQ(stats.successes, 1u);
    EXPECT_EQ(stats.options_checked, 3u);
    // 1 prefilter probe (U is mandatory: the unit subtree has a single
    // option) + 3 option checks.
    EXPECT_EQ(stats.resource_checks, 4u);
    EXPECT_EQ(stats.prefilter_hits, 0u);
}

TEST(Checker, PriorityFallbackAndShortCircuit)
{
    Mdes m = loadShape();
    LowMdes low = LowMdes::lower(m, {});
    Checker checker(low);
    RuMap ru;
    CheckStats stats;

    // Three loads in a row at cycle 0: decoders run out on the fourth.
    EXPECT_TRUE(checker.tryReserve(0, 0, ru, stats));  // U busy now
    // Second load at cycle 0 fails on the memory unit immediately: U is
    // mandatory (single-option subtree), so the collision-vector
    // prefilter rejects the attempt before any option is walked.
    EXPECT_FALSE(checker.tryReserve(0, 0, ru, stats));
    EXPECT_EQ(stats.options_per_attempt.countAt(0), 1u);
    EXPECT_EQ(stats.prefilter_hits, 1u);
    EXPECT_EQ(stats.attempts, 2u);
    EXPECT_EQ(stats.successes, 1u);
}

TEST(Checker, FailureChecksAllOptionsOfTheFailingSubtree)
{
    // Make U free but all decoders busy: the attempt must scan every
    // decoder option before giving up.
    Mdes m = loadShape();
    LowMdes low = LowMdes::lower(m, {});
    Checker checker(low);
    RuMap ru;
    ru.reserve(-1, (uint64_t(1) << 3) | (uint64_t(1) << 4) |
                       (uint64_t(1) << 5));
    CheckStats stats;
    EXPECT_FALSE(checker.tryReserve(0, 0, ru, stats));
    // 1 (U) + 1 (W[0]) + 3 (all decoders) options checked; the
    // prefilter probe (U free) adds one resource check.
    EXPECT_EQ(stats.options_checked, 5u);
    EXPECT_EQ(stats.resource_checks, 6u);
    EXPECT_EQ(stats.prefilter_hits, 0u);
    // Nothing was reserved by the failed attempt.
    EXPECT_TRUE(ru.available(0, uint64_t(1) << 0));
    EXPECT_TRUE(ru.available(1, uint64_t(1) << 1));
}

TEST(Checker, PendingOverlayPreventsDoubleBooking)
{
    // Two subtrees drawing from the SAME resource pool: the pending
    // overlay must stop both from picking the same instance.
    Mdes m("overlap");
    ResourceId r = m.addResourceClass("R", 2);
    std::vector<OptionId> opts1 = {m.addOption({{{0, r}}}),
                                   m.addOption({{{0, r + 1}}})};
    std::vector<OptionId> opts2 = {m.addOption({{{0, r}}}),
                                   m.addOption({{{0, r + 1}}})};
    OrTreeId t1 = m.addOrTree({"A", opts1});
    OrTreeId t2 = m.addOrTree({"B", opts2});
    TreeId tree = m.addTree({"Both", {t1, t2}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    LowMdes low = LowMdes::lower(m, {});
    Checker checker(low);
    RuMap ru;
    CheckStats stats;
    std::vector<uint32_t> chosen;
    ASSERT_TRUE(checker.tryReserve(0, 0, ru, stats, &chosen));
    // First subtree takes R[0]; second must fall through to R[1].
    EXPECT_FALSE(ru.available(0, uint64_t(1) << 0));
    EXPECT_FALSE(ru.available(0, uint64_t(1) << 1));

    // A second operation at the same cycle cannot fit at all.
    EXPECT_FALSE(checker.tryReserve(0, 0, ru, stats));
}

TEST(Checker, WouldFitNeverReserves)
{
    Mdes m = loadShape();
    LowMdes low = LowMdes::lower(m, {});
    Checker checker(low);
    RuMap ru;
    EXPECT_TRUE(checker.wouldFit(0, 0, ru));
    EXPECT_TRUE(ru.available(0, ~uint64_t(0)));
    ru.reserve(0, uint64_t(1) << 0); // U busy
    EXPECT_FALSE(checker.wouldFit(0, 0, ru));
}

TEST(Checker, BitVectorEncodingCountsMergedChecks)
{
    // One option with three same-cycle usages: scalar = 3 checks,
    // bit-vector = 1 check, same accept/reject behavior.
    Mdes m("pack");
    ResourceId r = m.addResourceClass("R", 3);
    OptionId o = m.addOption({{{0, r}, {0, r + 1}, {0, r + 2}}});
    OrTreeId t = m.addOrTree({"T", {o}});
    TreeId tree = m.addTree({"Tbl", {t}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    LowMdes scalar = LowMdes::lower(m, {});
    lmdes::LowerOptions packed_opts;
    packed_opts.pack_bit_vector = true;
    LowMdes packed = LowMdes::lower(m, packed_opts);

    Checker cs(scalar), cp(packed);
    RuMap ru1, ru2;
    CheckStats s1, s2;
    EXPECT_TRUE(cs.tryReserve(0, 0, ru1, s1));
    EXPECT_TRUE(cp.tryReserve(0, 0, ru2, s2));
    // Single-option tree: the prefilter covers the whole option (one
    // merged probe in both encodings), then the option itself is
    // checked - 3 scalar checks vs 1 packed check.
    EXPECT_EQ(s1.resource_checks, 4u);
    EXPECT_EQ(s2.resource_checks, 2u);
    EXPECT_EQ(ru1.word(0), ru2.word(0));
}

// -------------------------------------------------- Randomized oracle check

/**
 * Brute-force oracle: enumerate the AND/OR tree's full cross product and
 * return the first combination (priority order, last subtree fastest)
 * that fits the RU map; the checker must agree on feasibility AND, for
 * resource-disjoint subtrees, on the chosen options.
 */
bool
oracleFits(const Mdes &m, TreeId tree, int32_t cycle, const RuMap &ru)
{
    const auto &t = m.tree(tree);
    std::vector<size_t> idx(t.or_trees.size(), 0);
    for (;;) {
        // Gather this combination's usages; reject internal conflicts.
        std::map<std::pair<int32_t, ResourceId>, int> seen;
        bool fits = true;
        for (size_t s = 0; s < t.or_trees.size() && fits; ++s) {
            OptionId o = m.orTree(t.or_trees[s]).options[idx[s]];
            for (const auto &u : m.option(o).usages) {
                if (!ru.available(cycle + u.time,
                                  uint64_t(1) << u.resource) ||
                    seen[{u.time, u.resource}]++ > 0) {
                    fits = false;
                    break;
                }
            }
        }
        if (fits)
            return true;
        // Odometer advance, last digit fastest.
        size_t d = t.or_trees.size();
        for (;;) {
            if (d == 0)
                return false;
            --d;
            if (++idx[d] < m.orTree(t.or_trees[d]).options.size())
                break;
            idx[d] = 0;
        }
    }
}

TEST(Checker, AgreesWithOracleOnRandomStates)
{
    Mdes m = loadShape();
    LowMdes low = LowMdes::lower(m, {});
    Checker checker(low);
    Rng rng(2024);

    for (int trial = 0; trial < 500; ++trial) {
        RuMap ru;
        // Random pre-existing reservations over cycles -2..2.
        for (int c = -2; c <= 2; ++c)
            ru.reserve(c, rng.next() & 0x3F);
        RuMap ru_copy = ru;
        CheckStats stats;
        bool got = checker.tryReserve(0, 0, ru, stats);
        bool want = oracleFits(m, 0, 0, ru_copy);
        ASSERT_EQ(got, want) << "trial " << trial;
    }
}

TEST(Checker, StatsMergeCombines)
{
    CheckStats a, b;
    a.attempts = 3;
    a.options_checked = 7;
    a.options_per_attempt.add(2);
    a.attempts_per_tree = {1, 2};
    b.attempts = 2;
    b.successes = 2;
    b.resource_checks = 9;
    b.options_per_attempt.add(5);
    b.attempts_per_tree = {0, 1, 4};
    a.merge(b);
    EXPECT_EQ(a.attempts, 5u);
    EXPECT_EQ(a.successes, 2u);
    EXPECT_EQ(a.options_checked, 7u);
    EXPECT_EQ(a.resource_checks, 9u);
    EXPECT_EQ(a.options_per_attempt.total(), 2u);
    EXPECT_EQ(a.attempts_per_tree,
              (std::vector<uint64_t>{1, 3, 4}));
}

} // namespace
} // namespace mdes
