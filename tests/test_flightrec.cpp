/**
 * @file
 * Flight recorder tests: the always-on ring captures spans with full
 * tracing off, tail-based spooling writes a parseable Chrome trace for
 * a request that ended badly, and the spool directory is a size-capped
 * FIFO that never exceeds its byte budget.
 */

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/service.h"
#include "support/flightrec.h"
#include "support/json.h"
#include "support/trace.h"

namespace mdes {
namespace {

namespace fs = std::filesystem;

/** Trace ids far away from the service's small sequential request ids,
 * so unit tests never alias a ring event from another test's service. */
constexpr uint64_t kIdBase = 0xF00D0000ull;

std::string
freshDir(const std::string &name)
{
    const std::string dir = "flightrec_test_" + name;
    fs::remove_all(dir);
    return dir;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

uint64_t
dirBytes(const std::string &dir)
{
    uint64_t total = 0;
    for (const auto &entry : fs::directory_iterator(dir))
        total += uint64_t(entry.file_size());
    return total;
}

TEST(FlightRecorder, RingCapturesSpansWithTracingOff)
{
    ASSERT_FALSE(trace::enabled()) << "tests run with --trace off";
    ASSERT_TRUE(flightrec::enabled()) << "recorder is on by default";

    const uint64_t id = kIdBase + 1;
    const uint64_t before = flightrec::recordedCount();
    {
        trace::IdScope scope(id);
        trace::ScopedSpan span("flightrec-test-span");
        // Full tracing is off: the span is not collected...
        EXPECT_FALSE(span.active());
    }
    // ...but the flight recorder saw it anyway.
    EXPECT_GT(flightrec::recordedCount(), before);
    std::vector<flightrec::Event> events = flightrec::eventsForTrace(id);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "flightrec-test-span");
    EXPECT_EQ(events[0].trace_id, id);

    // Other trace ids are filtered out.
    EXPECT_TRUE(flightrec::eventsForTrace(kIdBase + 2).empty());

    // setEnabled(false) stops ring recording; nothing new appears.
    flightrec::setEnabled(false);
    {
        trace::IdScope scope(id);
        trace::ScopedSpan span("invisible");
    }
    flightrec::setEnabled(true);
    EXPECT_EQ(flightrec::eventsForTrace(id).size(), 1u);
}

TEST(FlightRecorder, EventsComeBackInTimestampOrder)
{
    // Timestamps are nowTicks() values; spacing them ~milliseconds
    // apart keeps them distinct after the ticks->us conversion.
    const uint64_t id = kIdBase + 3;
    const uint64_t base = flightrec::nowTicks();
    const uint64_t step = 10'000'000;
    flightrec::record("late", id, base + 3 * step, 10);
    flightrec::record("early", id, base + 1 * step, 10);
    flightrec::record("middle", id, base + 2 * step, 10);
    std::vector<flightrec::Event> events = flightrec::eventsForTrace(id);
    ASSERT_EQ(events.size(), 3u);
    EXPECT_STREQ(events[0].name, "early");
    EXPECT_STREQ(events[1].name, "middle");
    EXPECT_STREQ(events[2].name, "late");
}

TEST(FlightRecorder, RingWindowExcludesTheSlotUnderOverwrite)
{
    // push() stores slot fields before publishing the new head, so a
    // reader observing head == h must assume the slot event h reuses
    // (one full lap back) is mid-overwrite and discard it - even on a
    // quiescent ring, where the writer could be paused between the
    // field stores and the head bump. Observable contract: a full
    // ring reports kRingSlots - 1 events, never a possibly-torn
    // kRingSlots-th.
    const uint64_t id = kIdBase + 4;
    const uint64_t base = flightrec::nowTicks();
    for (size_t i = 0; i < flightrec::kRingSlots; ++i)
        flightrec::record("window-span", id, base + i, 1);
    EXPECT_EQ(flightrec::eventsForTrace(id).size(),
              flightrec::kRingSlots - 1);
}

TEST(FlightRecorder, ArmResumesSequenceNumbersPastAdoptedFiles)
{
    const std::string dir = freshDir("adopt");
    fs::create_directories(dir);
    // A spool file left over from a "previous run" with a sequence
    // number well past 1.
    const std::string adopted = dir + "/00000042-crash-123.json";
    {
        std::ofstream out(adopted, std::ios::binary);
        out << "{\"traceEvents\":[]}";
    }

    flightrec::armSpool({.dir = dir, .max_bytes = 1 << 20});
    const uint64_t id = kIdBase + 5;
    flightrec::record("adopt-span", id, flightrec::nowTicks(), 5);
    const std::string path = flightrec::spool(id, "test");
    ASSERT_FALSE(path.empty());
    const std::string name = fs::path(path).filename().string();
    // The new name must sort after the adopted file (oldest-first
    // eviction order) and must not collide with it: a restart that
    // reused sequence 42 with the same reason and trace id would
    // silently overwrite the adopted capture and double-count its
    // bytes against the cap.
    EXPECT_EQ(name.substr(0, 8), "00000043") << name;
    EXPECT_TRUE(fs::exists(adopted));

    flightrec::disarmSpool();
    fs::remove_all(dir);
}

TEST(FlightRecorder, ChromeJsonIsParseableAndSelfDescribing)
{
    const uint64_t id = kIdBase + 4;
    flightrec::record("request", id, 50, 500);
    const std::string doc = flightrec::toChromeJson(
        flightrec::eventsForTrace(id), id, "deadline-exceeded");
    JsonValue v = parseJson(doc);
    ASSERT_EQ(v.kind, JsonValue::Kind::Object);
    const JsonValue *events = v.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, JsonValue::Kind::Array);
    ASSERT_FALSE(events->array.empty());
    EXPECT_EQ(events->array[0].find("name")->string, "request");
    const JsonValue *other = v.find("otherData");
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->find("reason")->string, "deadline-exceeded");
    EXPECT_EQ(jsonU64(*other->find("trace_id")), id);
}

TEST(FlightRecorder, DeadlineExceededRequestSpoolsItsTrace)
{
    const std::string dir = freshDir("deadline");
    flightrec::armSpool({.dir = dir, .max_bytes = 1 << 20});
    {
        // One worker, blocked by a large request: the queued request's
        // deadline lapses before a worker picks it up, and the worker
        // spools its trace after delivering the error.
        service::MdesService svc({.num_workers = 1});
        service::ScheduleRequest blocker;
        blocker.machine = "SuperSPARC";
        blocker.synth_ops = 20000;
        auto blocker_id = svc.submit(blocker);
        service::ScheduleRequest doomed;
        doomed.machine = "K5";
        doomed.synth_ops = 100;
        doomed.deadline_ms = 1;
        auto doomed_id = svc.submit(doomed);
        EXPECT_EQ(svc.wait(doomed_id).error.code,
                  service::ErrorCode::DeadlineExceeded);
        EXPECT_TRUE(svc.wait(blocker_id).ok());
        // Destruction joins the workers, so the spool write (which
        // happens after delivery) has finished once we get here.
    }
    flightrec::disarmSpool();

    std::string spooled;
    for (const auto &entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.find("deadline") != std::string::npos)
            spooled = entry.path().string();
    }
    ASSERT_FALSE(spooled.empty())
        << "no deadline spool file written under " << dir;

    // The spool file is a standalone, parseable Chrome trace holding
    // the doomed request's spans - including the "request" span itself.
    JsonValue v = parseJson(readFile(spooled));
    const JsonValue *events = v.find("traceEvents");
    ASSERT_NE(events, nullptr);
    std::set<std::string> names;
    for (const JsonValue &e : events->array)
        names.insert(e.find("name")->string);
    EXPECT_TRUE(names.count("request")) << "spool lacks the request span";
    fs::remove_all(dir);
}

TEST(FlightRecorder, SpoolDirectoryIsAByteCappedFifo)
{
    const std::string dir = freshDir("cap");
    const uint64_t cap = 2048;
    flightrec::armSpool({.dir = dir, .max_bytes = cap});
    const flightrec::SpoolStats before = flightrec::spoolStats();

    // Spool enough distinct traces that the cap must evict.
    uint64_t written = 0;
    for (uint64_t i = 0; i < 32; ++i) {
        const uint64_t id = kIdBase + 100 + i;
        for (int s = 0; s < 8; ++s)
            flightrec::record("padding-span", id, 100 * i + s, 5);
        if (!flightrec::spool(id, "test").empty())
            ++written;
        EXPECT_LE(flightrec::spoolStats().bytes, cap)
            << "byte cap exceeded after spool " << i;
        EXPECT_LE(dirBytes(dir), cap);
    }
    const flightrec::SpoolStats after = flightrec::spoolStats();
    EXPECT_EQ(after.files_written - before.files_written, 32u);
    EXPECT_GT(after.files_evicted, before.files_evicted)
        << "cap never evicted - raise the spool sizes";
    EXPECT_GT(written, 0u);

    // FIFO: the survivors are the newest files (highest sequence
    // numbers), not an arbitrary subset.
    std::vector<std::string> names;
    for (const auto &entry : fs::directory_iterator(dir))
        names.push_back(entry.path().filename().string());
    std::sort(names.begin(), names.end());
    ASSERT_FALSE(names.empty());
    ASSERT_LT(names.size(), 32u);
    // All surviving sequence numbers are newer than every evicted one,
    // so the oldest survivor's sequence + survivor count reaches the
    // last sequence written this test (they are contiguous).
    const unsigned long first = std::stoul(names.front().substr(0, 8));
    const unsigned long last = std::stoul(names.back().substr(0, 8));
    EXPECT_EQ(last - first + 1, names.size());

    flightrec::disarmSpool();
    fs::remove_all(dir);
}

TEST(FlightRecorder, EmptyTracesAndUnarmedSpoolsWriteNothing)
{
    // Unarmed: spool is a no-op that reports "".
    flightrec::disarmSpool();
    EXPECT_FALSE(flightrec::spoolArmed());
    EXPECT_EQ(flightrec::spool(kIdBase + 900, "test"), "");
    EXPECT_EQ(flightrec::slowThresholdUs(), 0u);

    // Armed but the trace id has no buffered events: skipped, counted.
    const std::string dir = freshDir("empty");
    flightrec::armSpool({.dir = dir, .max_bytes = 4096, .slow_us = 250});
    EXPECT_EQ(flightrec::slowThresholdUs(), 250u);
    const uint64_t skipped_before = flightrec::spoolStats().empty_skipped;
    EXPECT_EQ(flightrec::spool(kIdBase + 901, "test"), "");
    EXPECT_EQ(flightrec::spoolStats().empty_skipped, skipped_before + 1);
    EXPECT_TRUE(fs::directory_iterator(dir) == fs::directory_iterator{})
        << "empty spool still produced a file";
    flightrec::disarmSpool();
    fs::remove_all(dir);
}

TEST(CrashCapture, SegfaultLeavesADecodableCapture)
{
    const std::string dir = freshDir("crash");
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: arm, record a little ring history, then die the way a
        // real crash would. The handler must write the capture and
        // re-raise so the parent sees the true SIGSEGV exit status.
        if (!flightrec::armCrashCapture(dir))
            _exit(3);
        for (int i = 0; i < 32; ++i)
            flightrec::record("crash-test-span", kIdBase + 90,
                              flightrec::nowTicks(), 100);
        raise(SIGSEGV);
        _exit(4); // unreachable: the default disposition kills us
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status))
        << "child exited instead of crashing, status " << status;
    EXPECT_EQ(WTERMSIG(status), SIGSEGV);

    std::string path;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().extension() == ".mdcr")
            path = entry.path().string();
    ASSERT_FALSE(path.empty()) << "no .mdcr capture in " << dir;

    flightrec::CrashInfo info;
    std::string json;
    ASSERT_NO_THROW(json = flightrec::decodeCrashCapture(path, &info));
    EXPECT_EQ(info.signo, SIGSEGV);
    EXPECT_EQ(info.pid, uint64_t(pid));
    EXPECT_GE(info.rings, 1u);
    EXPECT_GT(info.events, 0u);
    // The decoded document is well-formed JSON carrying the child's
    // last spans.
    EXPECT_NO_THROW(parseJson(json));
    EXPECT_NE(json.find("crash-test-span"), std::string::npos);
    fs::remove_all(dir);
}

TEST(CrashCapture, DecodeRejectsGarbageAndMissingFiles)
{
    const std::string dir = freshDir("crash_garbage");
    fs::create_directories(dir);
    const std::string path = dir + "/not-a-capture.mdcr";
    std::ofstream(path, std::ios::binary) << "this is not a capture";
    EXPECT_THROW(flightrec::decodeCrashCapture(path), MdesError);
    EXPECT_THROW(flightrec::decodeCrashCapture(dir + "/missing.mdcr"),
                 MdesError);
    fs::remove_all(dir);
}

} // namespace
} // namespace mdes
