/**
 * @file
 * Workload-generator tests: determinism, mix fidelity, block structure,
 * register-operand shape, and error handling.
 */

#include <gtest/gtest.h>

#include <map>

#include "exp/runner.h"
#include "hmdes/compile.h"
#include "machines/machines.h"
#include "workload/workload.h"

namespace mdes {
namespace {

lmdes::LowMdes
lowFor(const machines::MachineInfo &info)
{
    Mdes m = hmdes::compileOrThrow(info.source);
    return lmdes::LowMdes::lower(m, {});
}

TEST(Workload, DeterministicForSameSeed)
{
    auto low = lowFor(machines::superSparc());
    workload::WorkloadSpec spec = machines::superSparc().workload;
    spec.num_ops = 5000;
    auto a = workload::generate(spec, low);
    auto b = workload::generate(spec, low);
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    for (size_t i = 0; i < a.blocks.size(); ++i) {
        ASSERT_EQ(a.blocks[i].instrs.size(), b.blocks[i].instrs.size());
        for (size_t j = 0; j < a.blocks[i].instrs.size(); ++j) {
            EXPECT_EQ(a.blocks[i].instrs[j].op_class,
                      b.blocks[i].instrs[j].op_class);
            EXPECT_EQ(a.blocks[i].instrs[j].srcs,
                      b.blocks[i].instrs[j].srcs);
        }
    }
}

TEST(Workload, DifferentSeedsDiffer)
{
    auto low = lowFor(machines::superSparc());
    workload::WorkloadSpec spec = machines::superSparc().workload;
    spec.num_ops = 2000;
    auto a = workload::generate(spec, low);
    spec.seed ^= 0xDEAD;
    auto b = workload::generate(spec, low);
    bool differ = a.blocks.size() != b.blocks.size();
    for (size_t i = 0; !differ && i < a.blocks.size(); ++i) {
        differ = a.blocks[i].instrs.size() != b.blocks[i].instrs.size();
        for (size_t j = 0; !differ && j < a.blocks[i].instrs.size(); ++j)
            differ = a.blocks[i].instrs[j].op_class !=
                     b.blocks[i].instrs[j].op_class;
    }
    EXPECT_TRUE(differ);
}

TEST(Workload, ReachesRequestedSize)
{
    auto low = lowFor(machines::pa7100());
    workload::WorkloadSpec spec = machines::pa7100().workload;
    spec.num_ops = 33333;
    auto program = workload::generate(spec, low);
    EXPECT_GE(program.numOps(), 33333u);
    EXPECT_LT(program.numOps(), 33333u + spec.max_block_size + 2u);
}

TEST(Workload, BlocksEndWithOneBranch)
{
    auto low = lowFor(machines::superSparc());
    workload::WorkloadSpec spec = machines::superSparc().workload;
    spec.num_ops = 5000;
    auto program = workload::generate(spec, low);
    for (const auto &block : program.blocks) {
        ASSERT_FALSE(block.instrs.empty());
        EXPECT_TRUE(block.instrs.back().is_branch);
        for (size_t i = 0; i + 1 < block.instrs.size(); ++i)
            EXPECT_FALSE(block.instrs[i].is_branch);
    }
}

TEST(Workload, BlockSizesWithinBounds)
{
    auto low = lowFor(machines::k5());
    workload::WorkloadSpec spec = machines::k5().workload;
    spec.num_ops = 20000;
    auto program = workload::generate(spec, low);
    for (const auto &block : program.blocks) {
        // body in [min, max] plus the branch.
        EXPECT_GE(block.instrs.size(), size_t(spec.min_block_size) + 1);
        EXPECT_LE(block.instrs.size(), size_t(spec.max_block_size) + 1);
    }
}

TEST(Workload, OperandCountsFollowTheMix)
{
    auto low = lowFor(machines::superSparc());
    workload::WorkloadSpec spec = machines::superSparc().workload;
    spec.num_ops = 5000;
    auto program = workload::generate(spec, low);
    std::map<std::string, std::pair<int, int>> expected;
    for (const auto &mix : spec.classes)
        expected[mix.op_class] = {mix.num_srcs, mix.num_dsts};
    for (const auto &block : program.blocks) {
        for (const auto &in : block.instrs) {
            const auto &name = low.opClasses()[in.op_class].name;
            auto [srcs, dsts] = expected.at(name);
            EXPECT_EQ(in.srcs.size(), size_t(srcs)) << name;
            EXPECT_EQ(in.dsts.size(), size_t(dsts)) << name;
        }
    }
}

TEST(Workload, RegistersWithinRange)
{
    auto low = lowFor(machines::pentium());
    workload::WorkloadSpec spec = machines::pentium().workload;
    spec.num_ops = 5000;
    auto program = workload::generate(spec, low);
    for (const auto &block : program.blocks) {
        for (const auto &in : block.instrs) {
            for (int32_t r : in.srcs) {
                EXPECT_GE(r, 0);
                EXPECT_LT(r, spec.num_regs);
            }
            for (int32_t r : in.dsts) {
                EXPECT_GE(r, 0);
                EXPECT_LT(r, spec.num_regs);
            }
        }
    }
}

TEST(Workload, MixFrequenciesApproximatelyRespected)
{
    auto low = lowFor(machines::superSparc());
    workload::WorkloadSpec spec = machines::superSparc().workload;
    spec.num_ops = 100000;
    auto program = workload::generate(spec, low);

    std::map<uint32_t, size_t> counts;
    size_t body_total = 0;
    for (const auto &block : program.blocks) {
        for (const auto &in : block.instrs) {
            if (!in.is_branch) {
                ++counts[in.op_class];
                ++body_total;
            }
        }
    }
    double body_weight = 0;
    for (const auto &mix : spec.classes) {
        if (!mix.is_branch)
            body_weight += mix.weight;
    }
    for (const auto &mix : spec.classes) {
        if (mix.is_branch)
            continue;
        uint32_t cls = low.findOpClass(mix.op_class);
        double want = mix.weight / body_weight;
        double got = double(counts[cls]) / double(body_total);
        EXPECT_NEAR(got, want, 0.02) << mix.op_class;
    }
}

TEST(Workload, UnknownClassNameThrows)
{
    auto low = lowFor(machines::pa7100());
    workload::WorkloadSpec spec;
    spec.classes = {{"NO_SUCH_OP", 1.0, 1, 1, false, false}};
    EXPECT_THROW(workload::generate(spec, low), MdesError);
}

TEST(Workload, NoBodyClassesThrows)
{
    auto low = lowFor(machines::pa7100());
    workload::WorkloadSpec spec;
    spec.classes = {{"B", 1.0, 0, 0, false, true}};
    EXPECT_THROW(workload::generate(spec, low), MdesError);
}

TEST(Workload, CascadableFlagPropagates)
{
    auto low = lowFor(machines::superSparc());
    workload::WorkloadSpec spec = machines::superSparc().workload;
    spec.num_ops = 5000;
    auto program = workload::generate(spec, low);
    uint32_t add_i = low.findOpClass("ADD_I");
    uint32_t sethi = low.findOpClass("SETHI");
    for (const auto &block : program.blocks) {
        for (const auto &in : block.instrs) {
            if (in.op_class == add_i)
                EXPECT_TRUE(in.cascadable);
            if (in.op_class == sethi)
                EXPECT_FALSE(in.cascadable);
        }
    }
}

} // namespace
} // namespace mdes
