/**
 * @file
 * Cross-configuration property tests - the paper's central invariant
 * (Section 4): every representation and every transformation set
 * preserves all execution constraints, so the multi-platform list
 * scheduler produces the *identical schedule* in every configuration;
 * only representation size and check counts change.
 *
 * Parameterized over machine x representation x transformation level x
 * bit-vector packing.
 */

#include <gtest/gtest.h>

#include "exp/runner.h"
#include "sched/verify.h"
#include "workload/workload.h"

namespace mdes {
namespace {

/** Cumulative transformation levels, in the paper's section order. */
enum class Level {
    None,          // original
    Cse,           // Section 5: CSE + copy propagation + dead code
    Redundant,     // Section 5: + redundant-option removal
    TimeShift,     // Section 7: + usage-time shift + usage sorting
    All,           // Section 8: + hoisting + OR-subtree sorting
};

PipelineConfig
configFor(Level level)
{
    PipelineConfig c;
    c.cse = level >= Level::Cse;
    c.redundant_options = level >= Level::Redundant;
    c.time_shift = level >= Level::TimeShift;
    c.sort_usages = level >= Level::TimeShift;
    c.hoist = level >= Level::All;
    c.sort_or_trees = level >= Level::All;
    return c;
}

const char *
levelName(Level level)
{
    switch (level) {
      case Level::None: return "none";
      case Level::Cse: return "cse";
      case Level::Redundant: return "redundant";
      case Level::TimeShift: return "timeshift";
      case Level::All: return "all";
    }
    return "?";
}

struct Param
{
    const machines::MachineInfo *machine;
    exp::Rep rep;
    Level level;
    bool bit_vector;
};

std::vector<Param>
allParams()
{
    std::vector<Param> params;
    auto lineup = machines::all();
    lineup.push_back(&machines::pentiumPro()); // the extension machine
    for (const auto *m : lineup) {
        for (exp::Rep rep : {exp::Rep::OrTree, exp::Rep::AndOrTree}) {
            for (Level level : {Level::None, Level::Cse, Level::Redundant,
                                Level::TimeShift, Level::All}) {
                for (bool bv : {false, true})
                    params.push_back({m, rep, level, bv});
            }
        }
    }
    return params;
}

std::string
paramName(const testing::TestParamInfo<Param> &info)
{
    const Param &p = info.param;
    std::string name = p.machine->name;
    name += p.rep == exp::Rep::OrTree ? "_or_" : "_andor_";
    name += levelName(p.level);
    name += p.bit_vector ? "_bv" : "_nobv";
    return name;
}

/** Workload size for the property sweep (full size is for benches). */
constexpr size_t kTestOps = 12000;

exp::RunResult
runParam(const Param &p)
{
    exp::RunConfig config;
    config.machine = p.machine;
    config.rep = p.rep;
    config.transforms = configFor(p.level);
    config.bit_vector = p.bit_vector;
    config.num_ops_override = kTestOps;
    return exp::run(config);
}

/** Baseline schedules per machine, computed once. */
const std::vector<sched::BlockSchedule> &
baselineSchedules(const machines::MachineInfo &machine)
{
    static std::map<std::string, std::vector<sched::BlockSchedule>> cache;
    auto it = cache.find(machine.name);
    if (it == cache.end()) {
        Param base{&machine, exp::Rep::AndOrTree, Level::None, false};
        it = cache.emplace(machine.name, runParam(base).schedules).first;
    }
    return it->second;
}

class ScheduleInvariance : public testing::TestWithParam<Param>
{
};

TEST_P(ScheduleInvariance, IdenticalScheduleEverywhere)
{
    const Param &p = GetParam();
    exp::RunResult result = runParam(p);
    const auto &baseline = baselineSchedules(*p.machine);

    ASSERT_EQ(result.schedules.size(), baseline.size());
    for (size_t b = 0; b < baseline.size(); ++b) {
        ASSERT_EQ(result.schedules[b].cycles, baseline[b].cycles)
            << "block " << b << " scheduled differently";
        ASSERT_EQ(result.schedules[b].used_cascade,
                  baseline[b].used_cascade)
            << "block " << b << " cascaded differently";
    }
}

TEST_P(ScheduleInvariance, SchedulesAreLegal)
{
    const Param &p = GetParam();
    exp::RunConfig config;
    config.machine = p.machine;
    config.rep = p.rep;
    config.transforms = configFor(p.level);
    config.bit_vector = p.bit_vector;
    config.num_ops_override = kTestOps;

    exp::RunResult result = exp::run(config);

    // Re-generate the same workload to pair blocks with schedules.
    workload::WorkloadSpec spec = p.machine->workload;
    spec.num_ops = kTestOps;
    sched::Program program = workload::generate(spec, result.low);
    ASSERT_EQ(program.blocks.size(), result.schedules.size());

    // Verifying every block is affordable at this size.
    for (size_t b = 0; b < program.blocks.size(); ++b) {
        std::string problem = sched::verifySchedule(
            program.blocks[b], result.schedules[b], result.low);
        ASSERT_EQ(problem, "") << "block " << b;
    }
}

TEST_P(ScheduleInvariance, ModelStaysValid)
{
    const Param &p = GetParam();
    exp::RunConfig config;
    config.machine = p.machine;
    config.rep = p.rep;
    config.transforms = configFor(p.level);
    config.bit_vector = p.bit_vector;
    config.schedule = false;
    exp::RunResult result = exp::run(config);
    EXPECT_EQ(result.mid.validate(), "");
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, ScheduleInvariance,
                         testing::ValuesIn(allParams()), paramName);

// ---------------------------------------------------------------------
// Monotonicity of the aggregate effects (Tables 14 and 15): the fully
// optimized representation is never larger and never checks more than
// the original, for every machine and both representations.
// ---------------------------------------------------------------------

struct MonoParam
{
    const machines::MachineInfo *machine;
    exp::Rep rep;
};

class AggregateMonotonicity : public testing::TestWithParam<MonoParam>
{
};

TEST_P(AggregateMonotonicity, OptimizedNeverWorse)
{
    const MonoParam &p = GetParam();

    exp::RunConfig original = exp::originalConfig(*p.machine, p.rep);
    original.num_ops_override = kTestOps;
    exp::RunConfig optimized = exp::optimizedConfig(*p.machine, p.rep);
    optimized.num_ops_override = kTestOps;

    exp::RunResult before = exp::run(original);
    exp::RunResult after = exp::run(optimized);

    EXPECT_LE(after.memory.total(), before.memory.total());
    EXPECT_LE(after.stats.checks.resource_checks,
              before.stats.checks.resource_checks);
    // Hoisting adds a one-option subtree whose probe counts as an extra
    // option checked on successful attempts - the paper's Section 8
    // caveat ("can actually increase the number of resource checks");
    // its application heuristics keep the effect marginal, so allow 1%.
    EXPECT_LE(double(after.stats.checks.options_checked),
              double(before.stats.checks.options_checked) * 1.01);
    // Identical scheduling work regardless of representation details.
    EXPECT_EQ(after.stats.checks.attempts, before.stats.checks.attempts);
    EXPECT_EQ(after.stats.ops_scheduled, before.stats.ops_scheduled);
    EXPECT_EQ(after.stats.total_schedule_length,
              before.stats.total_schedule_length);
}

std::vector<MonoParam>
monoParams()
{
    std::vector<MonoParam> params;
    auto lineup = machines::all();
    lineup.push_back(&machines::pentiumPro());
    for (const auto *m : lineup) {
        params.push_back({m, exp::Rep::OrTree});
        params.push_back({m, exp::Rep::AndOrTree});
    }
    return params;
}

std::string
monoName(const testing::TestParamInfo<MonoParam> &info)
{
    return info.param.machine->name +
           (info.param.rep == exp::Rep::OrTree ? "_or" : "_andor");
}

INSTANTIATE_TEST_SUITE_P(AllMachines, AggregateMonotonicity,
                         testing::ValuesIn(monoParams()), monoName);

} // namespace
} // namespace mdes
