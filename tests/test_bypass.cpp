/**
 * @file
 * Bypass/forwarding tests (paper footnote 1: machine descriptions also
 * model bypassing and forwarding effects): language syntax and semantic
 * checks, flow-latency lookup, dependence-graph integration for both
 * list and modulo scheduling, and preservation across the AND/OR -> OR
 * preprocessor.
 */

#include <gtest/gtest.h>

#include "core/expand.h"
#include "hmdes/compile.h"
#include "lmdes/low_mdes.h"
#include "machines/machines.h"
#include "sched/list_scheduler.h"
#include "sched/modulo_scheduler.h"
#include "sched/verify.h"

namespace mdes {
namespace {

using lmdes::LowMdes;

const char *const kFmacSource = R"(
machine "fmac" {
    resource S[2];
    ortree AnyS { for i in 0 .. 1 { option { use S[i] at 0; } } }
    table T = AnyS;
    operation FMUL { table T; latency 3; }
    operation FADD { table T; latency 3; }
    operation ST { table T; latency 1; }
    bypass FMUL FADD latency 1;
}
)";

TEST(Bypass, ParsesAndResolves)
{
    Mdes m = hmdes::compileOrThrow(kFmacSource);
    ASSERT_EQ(m.bypasses().size(), 1u);
    EXPECT_EQ(m.bypasses()[0].from, m.findOpClass("FMUL"));
    EXPECT_EQ(m.bypasses()[0].to, m.findOpClass("FADD"));
    EXPECT_EQ(m.bypasses()[0].latency, 1);
}

TEST(Bypass, FlowLatencyLookup)
{
    LowMdes low = LowMdes::lower(hmdes::compileOrThrow(kFmacSource), {});
    uint32_t fmul = low.findOpClass("FMUL");
    uint32_t fadd = low.findOpClass("FADD");
    uint32_t st = low.findOpClass("ST");
    EXPECT_EQ(low.flowLatency(fmul, fadd), 1); // forwarded
    EXPECT_EQ(low.flowLatency(fmul, st), 3);   // nominal
    EXPECT_EQ(low.flowLatency(fadd, fmul), 3); // direction matters
}

TEST(Bypass, ShortensListSchedules)
{
    LowMdes low = LowMdes::lower(hmdes::compileOrThrow(kFmacSource), {});
    sched::Block b;
    sched::Instr mul, add, st;
    mul.op_class = low.findOpClass("FMUL");
    mul.srcs = {1};
    mul.dsts = {2};
    add.op_class = low.findOpClass("FADD");
    add.srcs = {2};
    add.dsts = {3};
    st.op_class = low.findOpClass("ST");
    st.srcs = {3};
    b.instrs = {mul, add, st};

    sched::ListScheduler s(low);
    sched::SchedStats stats;
    auto sched = s.scheduleBlock(b, stats);
    EXPECT_EQ(sched.cycles[0], 0);
    EXPECT_EQ(sched.cycles[1], 1); // forwarded: 1 cycle, not 3
    EXPECT_EQ(sched.cycles[2], 4); // no ST bypass: full FADD latency
    EXPECT_EQ(sched::verifySchedule(b, sched, low), "");
}

TEST(Bypass, TightensModuloRecurrences)
{
    // acc = (acc * x) + y as an FMUL/FADD recurrence: without the
    // forwarding path RecMII = 3 + 3; with it, 1 + 3.
    LowMdes low = LowMdes::lower(hmdes::compileOrThrow(kFmacSource), {});
    sched::Block body;
    sched::Instr mul, add;
    mul.op_class = low.findOpClass("FMUL");
    mul.srcs = {1, 2};
    mul.dsts = {3};
    add.op_class = low.findOpClass("FADD");
    add.srcs = {3, 4};
    add.dsts = {1}; // closes the recurrence
    body.instrs = {mul, add};

    sched::ModuloScheduler ms(low);
    auto graph = sched::LoopDepGraph::build(body, low);
    EXPECT_EQ(ms.recMii(body, graph), 4); // 1 (bypassed) + 3
}

TEST(Bypass, SurvivesOrExpansion)
{
    Mdes m = hmdes::compileOrThrow(kFmacSource);
    Mdes flat = expandToOrForm(m);
    ASSERT_EQ(flat.bypasses().size(), 1u);
    EXPECT_EQ(flat.bypasses()[0], m.bypasses()[0]);
}

TEST(Bypass, ShippedMachinesDeclareForwardingPaths)
{
    Mdes pa = hmdes::compileOrThrow(machines::pa7100().source);
    EXPECT_EQ(pa.bypasses().size(), 2u);
    Mdes k5 = hmdes::compileOrThrow(machines::k5().source);
    EXPECT_EQ(k5.bypasses().size(), 1u);
    LowMdes low = LowMdes::lower(pa, {});
    EXPECT_EQ(low.flowLatency(low.findOpClass("FMUL"),
                              low.findOpClass("FADD")),
              1);
}

TEST(Bypass, SemanticErrors)
{
    auto compileBody = [](const std::string &tail) {
        DiagnosticEngine diags;
        std::string src = R"(machine "t" {
            resource S;
            ortree O { option { use S at 0; } }
            table T = O;
            operation A { table T; latency 2; }
            operation B { table T; latency 1; }
        )" + tail + "}";
        auto m = hmdes::compile(src, diags);
        return std::make_pair(m.has_value(), diags.toString());
    };

    auto [ok1, msg1] = compileBody("bypass GHOST B latency 1;");
    EXPECT_FALSE(ok1);
    EXPECT_NE(msg1.find("unknown operation 'GHOST'"), std::string::npos);

    auto [ok2, msg2] = compileBody("bypass A GHOST latency 1;");
    EXPECT_FALSE(ok2);
    EXPECT_NE(msg2.find("unknown operation 'GHOST'"), std::string::npos);

    auto [ok3, msg3] = compileBody("bypass A B latency 0 - 2;");
    EXPECT_FALSE(ok3);
    EXPECT_NE(msg3.find("latency out of range"), std::string::npos);

    auto [ok4, msg4] =
        compileBody("bypass A B latency 1; bypass A B latency 1;");
    EXPECT_FALSE(ok4);
    EXPECT_NE(msg4.find("duplicate bypass"), std::string::npos);

    // A useless bypass (not faster than nominal) warns but compiles.
    auto [ok5, msg5] = compileBody("bypass A B latency 2;");
    EXPECT_TRUE(ok5);
    EXPECT_NE(msg5.find("does not improve"), std::string::npos);
}

} // namespace
} // namespace mdes
