/**
 * @file
 * Core model tests: Mdes construction and queries, validation, dead-code
 * removal, AND/OR -> OR expansion, and collision-vector theory.
 */

#include <gtest/gtest.h>

#include "core/collision.h"
#include "core/expand.h"
#include "core/mdes.h"
#include "core/print.h"
#include "core/transforms.h"
#include "hmdes/compile.h"
#include "machines/machines.h"

namespace mdes {
namespace {

/** Build a small AND/OR machine by hand: AND(U(1), W(2), D(3)). */
Mdes
smallMachine()
{
    Mdes m("small");
    ResourceId u = m.addResourceClass("U", 1);
    ResourceId w = m.addResourceClass("W", 2);
    ResourceId d = m.addResourceClass("D", 3);

    OptionId u0 = m.addOption({{{0, u}}});
    OrTreeId unit = m.addOrTree({"Unit", {u0}});

    std::vector<OptionId> wopts;
    for (uint32_t i = 0; i < 2; ++i)
        wopts.push_back(m.addOption({{{1, w + i}}}));
    OrTreeId anyw = m.addOrTree({"AnyW", wopts});

    std::vector<OptionId> dopts;
    for (uint32_t i = 0; i < 3; ++i)
        dopts.push_back(m.addOption({{{-1, d + i}}}));
    OrTreeId anyd = m.addOrTree({"AnyD", dopts});

    TreeId tree = m.addTree({"Op", {unit, anyw, anyd}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});
    return m;
}

TEST(Core, ResourceNaming)
{
    Mdes m = smallMachine();
    EXPECT_EQ(m.numResources(), 6u);
    EXPECT_EQ(m.resourceName(0), "U");
    EXPECT_EQ(m.resourceName(1), "W[0]");
    EXPECT_EQ(m.resourceName(5), "D[2]");
    EXPECT_EQ(m.findResource("D", 2), 5u);
    EXPECT_EQ(m.findResource("D", 3), kInvalidId);
    EXPECT_EQ(m.findResource("Z", 0), kInvalidId);
}

TEST(Core, CountsAndTimes)
{
    Mdes m = smallMachine();
    EXPECT_EQ(m.expandedOptionCount(0), 6u);
    EXPECT_EQ(m.leafOptionCount(0), 6u);
    EXPECT_EQ(m.earliestTimeTree(0), -1);
    EXPECT_EQ(m.earliestTimeOr(0), 0);   // Unit
    EXPECT_EQ(m.earliestTimeOr(1), 1);   // AnyW
    EXPECT_EQ(m.earliestTimeOr(2), -1);  // AnyD
}

TEST(Core, ValidateCatchesProblems)
{
    Mdes m = smallMachine();
    EXPECT_EQ(m.validate(), "");

    Mdes bad1 = m;
    bad1.addOption({});
    EXPECT_NE(bad1.validate().find("no usages"), std::string::npos);

    Mdes bad2 = m;
    bad2.addOption({{{0, 1}, {0, 1}}});
    EXPECT_NE(bad2.validate().find("more than once"), std::string::npos);

    Mdes bad3 = m;
    bad3.addOption({{{0, 99}}});
    EXPECT_NE(bad3.validate().find("out of range"), std::string::npos);

    Mdes bad4 = m;
    bad4.addOrTree({"Empty", {}});
    EXPECT_NE(bad4.validate().find("no options"), std::string::npos);
}

TEST(Core, CoversIsSupersetTest)
{
    Option a{{{0, 1}, {0, 2}}};
    Option b{{{0, 1}}};
    Option c{{{0, 3}}};
    EXPECT_TRUE(a.covers(b));
    EXPECT_FALSE(b.covers(a));
    EXPECT_TRUE(a.covers(a));
    EXPECT_FALSE(a.covers(c));
}

TEST(Core, DeadEntityRemoval)
{
    Mdes m = smallMachine();
    // Add an unreferenced option, OR-tree, and tree.
    OptionId dead_opt = m.addOption({{{0, 0}}});
    OrTreeId dead_or = m.addOrTree({"DeadOr", {dead_opt}});
    m.addTree({"DeadTree", {dead_or}});

    size_t removed = m.removeDeadEntities();
    EXPECT_EQ(removed, 3u);
    EXPECT_EQ(m.validate(), "");
    EXPECT_EQ(m.trees().size(), 1u);
    EXPECT_EQ(m.orTrees().size(), 3u);
    EXPECT_EQ(m.options().size(), 6u);
    // Ids were compacted; the op class still points at a valid tree.
    EXPECT_EQ(m.expandedOptionCount(m.opClasses()[0].tree), 6u);
}

TEST(Core, ShareCounts)
{
    Mdes m = smallMachine();
    // A second op class sharing AnyD (OR-tree id 2).
    TreeId t2 = m.addTree({"Op2", {2u}});
    m.addOpClass({"OP2", t2, 1, kInvalidId, ""});
    auto shares = m.orTreeShareCounts();
    EXPECT_EQ(shares[0], 1u);
    EXPECT_EQ(shares[2], 2u);
}

// ----------------------------------------------------------------- Expand

TEST(Expand, ProductCountAndPriorityOrder)
{
    Mdes m = smallMachine();
    Mdes flat = expandToOrForm(m);
    ASSERT_EQ(flat.opClasses().size(), 1u);
    const auto &tree = flat.tree(flat.opClasses()[0].tree);
    ASSERT_EQ(tree.or_trees.size(), 1u);
    const auto &ot = flat.orTree(tree.or_trees[0]);
    ASSERT_EQ(ot.options.size(), 6u);

    // Last subtree (AnyD) varies fastest: options 1-3 use W[0] with
    // D[0..2], options 4-6 use W[1].
    auto resOf = [&](size_t opt, size_t usage) {
        return flat.option(ot.options[opt]).usages[usage].resource;
    };
    // usages merged in subtree order: U, W, D.
    EXPECT_EQ(resOf(0, 1), flat.findResource("W", 0));
    EXPECT_EQ(resOf(0, 2), flat.findResource("D", 0));
    EXPECT_EQ(resOf(1, 2), flat.findResource("D", 1));
    EXPECT_EQ(resOf(2, 2), flat.findResource("D", 2));
    EXPECT_EQ(resOf(3, 1), flat.findResource("W", 1));
    EXPECT_EQ(resOf(3, 2), flat.findResource("D", 0));
}

TEST(Expand, DropsInternallyConflictingCombinations)
{
    Mdes m("conflict");
    ResourceId r = m.addResourceClass("R", 2);
    // Two subtrees that can pick the same instance at the same time.
    std::vector<OptionId> o1 = {m.addOption({{{0, r}}}),
                                m.addOption({{{0, r + 1}}})};
    std::vector<OptionId> o2 = {m.addOption({{{0, r}}}),
                                m.addOption({{{0, r + 1}}})};
    OrTreeId t1 = m.addOrTree({"A", o1});
    OrTreeId t2 = m.addOrTree({"B", o2});
    TreeId tree = m.addTree({"Both", {t1, t2}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    Mdes flat = expandToOrForm(m);
    const auto &ot =
        flat.orTree(flat.tree(flat.opClasses()[0].tree).or_trees[0]);
    // 2x2 = 4 combos, minus the two same-instance conflicts.
    EXPECT_EQ(ot.options.size(), 2u);
}

TEST(Expand, SharedTreesExpandOnce)
{
    Mdes m = smallMachine();
    m.addOpClass({"OP_B", 0u, 2, kInvalidId, ""});
    Mdes flat = expandToOrForm(m);
    EXPECT_EQ(flat.opClasses()[0].tree, flat.opClasses()[1].tree);
}

TEST(Expand, CascadeTreesAreExpanded)
{
    Mdes m = smallMachine();
    // Cascade = the one-option Unit tree wrapped as a table.
    TreeId casc = m.addTree({"Casc", {0u}});
    m.opClass(0).cascade_tree = casc;
    Mdes flat = expandToOrForm(m);
    ASSERT_NE(flat.opClasses()[0].cascade_tree, kInvalidId);
    EXPECT_EQ(flat.expandedOptionCount(flat.opClasses()[0].cascade_tree),
              1u);
}

// ------------------------------------------------------------------ Print

TEST(Print, OptionGridShowsUsages)
{
    Mdes m = smallMachine();
    std::string grid = printOption(m, 0);
    EXPECT_NE(grid.find("Cycle"), std::string::npos);
    EXPECT_NE(grid.find("U"), std::string::npos);
    EXPECT_NE(grid.find("X"), std::string::npos);
}

TEST(Print, OrTreeListsOptionsInPriorityOrder)
{
    Mdes m = smallMachine();
    std::string out = printOrTree(m, 2);
    EXPECT_NE(out.find("3 options"), std::string::npos);
    EXPECT_LT(out.find("Option 1"), out.find("Option 2"));
    EXPECT_LT(out.find("Option 2"), out.find("Option 3"));
}

TEST(Print, TreeShowsAndLevel)
{
    Mdes m = smallMachine();
    std::string out = printTree(m, 0);
    EXPECT_NE(out.find("AND of 3 OR-trees"), std::string::npos);
    EXPECT_NE(out.find("AND input 3"), std::string::npos);
}

// -------------------------------------------------------------- Collision

TEST(Collision, ForbiddenLatenciesBasic)
{
    Mdes m("cv");
    ResourceId r = m.addResourceClass("R", 1);
    // A uses R at times 0 and 3; B uses R at time 1.
    OptionId a = m.addOption({{{0, r}, {3, r}}});
    OptionId b = m.addOption({{{1, r}}});

    // (A, B): conflicts when B starts t after A with A.time - B.time = t:
    // 3-1=2 (and 0-1 < 0 ignored).
    auto fab = forbiddenLatencies(m, a, b);
    EXPECT_EQ(fab, (std::set<int32_t>{2}));
    // (B, A): 1-0=1; (1-3 negative).
    auto fba = forbiddenLatencies(m, b, a);
    EXPECT_EQ(fba, (std::set<int32_t>{1}));
    // (A, A): 0 and 3.
    auto faa = forbiddenLatencies(m, a, a);
    EXPECT_EQ(faa, (std::set<int32_t>{0, 3}));
}

TEST(Collision, DisjointResourcesNeverCollide)
{
    Mdes m("cv");
    ResourceId r = m.addResourceClass("R", 2);
    OptionId a = m.addOption({{{0, r}}});
    OptionId b = m.addOption({{{0, r + 1}}});
    EXPECT_TRUE(forbiddenLatencies(m, a, b).empty());
    EXPECT_TRUE(collisionVector(m, a, b, 4).none());
}

TEST(Collision, VectorMatchesSetWithinBound)
{
    Mdes m("cv");
    ResourceId r = m.addResourceClass("R", 1);
    OptionId a = m.addOption({{{0, r}, {5, r}}});
    BitVector cv = collisionVector(m, a, a, 5);
    EXPECT_TRUE(cv.test(0));
    EXPECT_TRUE(cv.test(5));
    EXPECT_EQ(cv.count(), 2u);
}

TEST(Collision, MaxUsageSpanOverMachines)
{
    // The widest single option in the SuperSPARC description is the
    // divide-unit option (busy cycles 0..5). In the expanded OR form the
    // FDIV options also absorb the decode usage at -1, widening to 6.
    Mdes m = hmdes::compileOrThrow(machines::superSparc().source);
    EXPECT_EQ(maxUsageSpan(m), 5);
    EXPECT_EQ(maxUsageSpan(expandToOrForm(m)), 6);
}

TEST(Collision, TimeShiftPreservesAllCollisionVectors)
{
    // Section 7's soundness argument, checked exhaustively on a real
    // machine: per-resource constant shifts leave every ordered pair's
    // forbidden-latency set unchanged.
    Mdes before = hmdes::compileOrThrow(machines::pa7100().source);
    Mdes after = before;
    shiftUsageTimes(after);
    int32_t bound = std::max(maxUsageSpan(before), maxUsageSpan(after));
    ASSERT_EQ(before.options().size(), after.options().size());
    for (OptionId a = 0; a < before.options().size(); ++a) {
        for (OptionId b = 0; b < before.options().size(); ++b) {
            EXPECT_EQ(collisionVector(before, a, b, bound),
                      collisionVector(after, a, b, bound))
                << "pair (" << a << ", " << b << ")";
        }
    }
}

} // namespace
} // namespace mdes
