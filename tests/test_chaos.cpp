/**
 * @file
 * Robustness tests: the faultsim determinism contract, and each service
 * hardening mechanism driven by injected faults - load shedding on a
 * bounded queue, the per-description circuit breaker, graceful
 * degradation when the optimizer pipeline faults, spurious-wake
 * soundness in the cache's single-flight wait, and the full seeded
 * chaos sweep (service::chaos::runSweep) that ties the invariants
 * together.
 *
 * Every test installs its fault plan explicitly and uninstalls before
 * returning; a FaultGuard backstop keeps one test's plan from leaking
 * into the next on assertion failure.
 */

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "service/chaos.h"
#include "service/service.h"
#include "support/faultsim.h"
#include "support/json.h"

namespace mdes {
namespace {

namespace fs = std::filesystem;

/** A fresh per-test directory under the system temp dir. */
fs::path
freshDir(const std::string &name)
{
    fs::path dir = fs::temp_directory_path() /
                   ("mdes-test-chaos-" + std::to_string(::getpid()) + "-" +
                    name);
    fs::remove_all(dir);
    return dir;
}

/** Uninstalls any fault plan on scope exit, so a failing assertion in
 * one test cannot poison the rest of the suite. */
struct FaultGuard
{
    ~FaultGuard() { faultsim::uninstall(); }
};

service::ScheduleRequest
k5Request(size_t synth_ops = 200)
{
    service::ScheduleRequest req;
    req.machine = "K5";
    req.synth_ops = synth_ops;
    return req;
}

TEST(Faultsim, DisarmedProbesNeverFire)
{
    faultsim::uninstall();
    EXPECT_FALSE(faultsim::armed());
    for (size_t i = 0; i < faultsim::kNumSites; ++i) {
        faultsim::FireInfo fi = faultsim::probe(faultsim::Site(i));
        EXPECT_FALSE(fi.fired);
    }
}

TEST(Faultsim, ParseRoundTripsThroughToString)
{
    faultsim::Plan plan = faultsim::Plan::parse(
        "seed=7, store/open-read=0.5:0:2 cache/slow-compile=1:2000");
    EXPECT_EQ(plan.seed, 7u);
    const auto &rd =
        plan.sites[size_t(faultsim::Site::StoreOpenRead)];
    EXPECT_DOUBLE_EQ(rd.probability, 0.5);
    EXPECT_EQ(rd.max_fires, 2u);
    const auto &slow =
        plan.sites[size_t(faultsim::Site::CacheSlowCompile)];
    EXPECT_DOUBLE_EQ(slow.probability, 1.0);
    EXPECT_EQ(slow.delay_us, 2000u);

    faultsim::Plan again = faultsim::Plan::parse(plan.toString());
    EXPECT_EQ(again.seed, plan.seed);
    for (size_t i = 0; i < faultsim::kNumSites; ++i) {
        EXPECT_DOUBLE_EQ(again.sites[i].probability,
                         plan.sites[i].probability)
            << faultsim::siteName(faultsim::Site(i));
        EXPECT_EQ(again.sites[i].max_fires, plan.sites[i].max_fires);
        EXPECT_EQ(again.sites[i].delay_us, plan.sites[i].delay_us);
    }

    EXPECT_THROW(faultsim::Plan::parse("no-such-site=1"), MdesError);
    EXPECT_THROW(faultsim::Plan::parse("store/rename=1.5"), MdesError);
    EXPECT_THROW(faultsim::Plan::parse("seed=x"), MdesError);
}

TEST(Faultsim, ReplayIsBitIdenticalPerToken)
{
    FaultGuard guard;
    faultsim::Plan plan = faultsim::Plan::parse("seed=99,store/write=0.4");

    auto draw = [] {
        std::vector<std::pair<bool, uint64_t>> seq;
        for (uint64_t token : {1ull, 2ull, 3ull}) {
            faultsim::TokenScope scope(token);
            for (int i = 0; i < 64; ++i) {
                faultsim::FireInfo fi =
                    faultsim::probe(faultsim::Site::StoreWrite);
                seq.emplace_back(fi.fired, fi.value);
            }
        }
        return seq;
    };

    faultsim::install(plan);
    auto first = draw();
    faultsim::install(plan); // resets per-token hit state
    auto second = draw();
    faultsim::uninstall();

    ASSERT_EQ(first.size(), second.size());
    EXPECT_EQ(first, second);

    // A 0.4-probability site over 192 draws fires some but not all.
    size_t fires = 0;
    for (const auto &[fired, value] : first)
        fires += fired;
    EXPECT_GT(fires, 0u);
    EXPECT_LT(fires, first.size());
}

TEST(Faultsim, MaxFiresCapsPerToken)
{
    FaultGuard guard;
    faultsim::install(
        faultsim::Plan::parse("seed=1,store/fsync=1:0:2"));
    for (uint64_t token : {10ull, 11ull}) {
        faultsim::TokenScope scope(token);
        size_t fires = 0;
        for (int i = 0; i < 20; ++i)
            fires += faultsim::probe(faultsim::Site::StoreFsync).fired;
        // Certain-probability site: exactly the cap, per token.
        EXPECT_EQ(fires, 2u) << "token " << token;
    }
    faultsim::uninstall();
}

TEST(ServiceRobustness, BoundedQueueShedsOverload)
{
    FaultGuard guard;
    // One worker, room for one waiting job, and every compile stalled
    // 50ms: a burst of 8 distinct-key requests must shed most of itself.
    faultsim::install(
        faultsim::Plan::parse("seed=3,cache/slow-compile=1:50000"));

    service::ServiceConfig config;
    config.num_workers = 1;
    config.max_queue = 1;
    service::MdesService svc(config);

    std::vector<service::MdesService::RequestId> ids;
    for (unsigned i = 0; i < 8; ++i) {
        service::ScheduleRequest req = k5Request(100);
        // Distinct transform bits -> distinct artifact keys, so every
        // request is an independent slow compile.
        req.transforms.cse = i & 1;
        req.transforms.hoist = i & 2;
        req.transforms.time_shift = i & 4;
        ids.push_back(svc.submit(req));
    }

    unsigned ok = 0, shed = 0;
    for (auto id : ids) {
        service::ScheduleResponse resp = svc.wait(id);
        if (resp.ok()) {
            ++ok;
        } else {
            ASSERT_EQ(resp.error.code, service::ErrorCode::Overloaded)
                << resp.error.message;
            ++shed;
        }
    }
    faultsim::uninstall();

    // The worker and the one queue slot bound acceptance; everything
    // else must have been rejected at admission.
    EXPECT_GT(ok, 0u);
    EXPECT_GT(shed, 0u);
    EXPECT_EQ(ok + shed, 8u);

    service::ServiceMetrics m = svc.metricsSnapshot();
    EXPECT_EQ(m.requests_shed, shed);
    EXPECT_EQ(m.errors[size_t(service::ErrorCode::Overloaded)], shed);
    EXPECT_EQ(m.requests, 8u);
    // Accepted jobs recorded their queue wait.
    EXPECT_EQ(m.queue_wait.count, ok);
}

TEST(ServiceRobustness, BreakerOpensAfterRepeatedFailureAndCloses)
{
    FaultGuard guard;
    faultsim::install(
        faultsim::Plan::parse("seed=5,compile/alloc-fail=1"));

    service::ServiceConfig config;
    config.num_workers = 1;
    config.breaker_threshold = 2;
    config.breaker_cooldown_ms = 100;
    service::MdesService svc(config);

    auto roundTrip = [&] { return svc.wait(svc.submit(k5Request())); };

    // Two hard compile failures open the breaker...
    for (int i = 0; i < 2; ++i) {
        service::ScheduleResponse resp = roundTrip();
        ASSERT_EQ(resp.error.code, service::ErrorCode::CompileFailed)
            << resp.error.message;
    }
    // ...so the third request fails fast without compiling.
    service::ScheduleResponse fast = roundTrip();
    EXPECT_EQ(fast.error.code, service::ErrorCode::CircuitOpen)
        << fast.error.message;

    // After the cooldown, the half-open trial compile runs for real;
    // with the fault gone it succeeds and the breaker closes.
    faultsim::uninstall();
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    service::ScheduleResponse healed = roundTrip();
    EXPECT_TRUE(healed.ok()) << healed.error.message;
    service::ScheduleResponse warm = roundTrip();
    EXPECT_TRUE(warm.ok()) << warm.error.message;
    EXPECT_TRUE(warm.cache_hit);

    service::ServiceMetrics m = svc.metricsSnapshot();
    EXPECT_GE(m.cache.breaker_trips, 1u);
    EXPECT_GE(m.cache.breaker_fast_fails, 1u);
}

TEST(ServiceRobustness, ResetBreakersForcesImmediateRetry)
{
    FaultGuard guard;
    faultsim::install(
        faultsim::Plan::parse("seed=6,compile/alloc-fail=1"));

    service::ServiceConfig config;
    config.num_workers = 1;
    config.breaker_threshold = 1;
    config.breaker_cooldown_ms = 60000; // would outlive the test
    service::MdesService svc(config);

    auto roundTrip = [&] { return svc.wait(svc.submit(k5Request())); };
    ASSERT_EQ(roundTrip().error.code, service::ErrorCode::CompileFailed);
    ASSERT_EQ(roundTrip().error.code, service::ErrorCode::CircuitOpen);

    // The operator override closes the breaker without waiting out the
    // cooldown.
    faultsim::uninstall();
    svc.resetBreakers();
    EXPECT_TRUE(roundTrip().ok());
}

TEST(ServiceRobustness, PipelineFaultDegradesGracefullyAndHeals)
{
    FaultGuard guard;
    faultsim::install(
        faultsim::Plan::parse("seed=8,compile/pass-throw=1"));

    service::ServiceConfig config;
    config.num_workers = 1;
    service::MdesService svc(config);

    // The optimizer faults; the service falls back to the unoptimized
    // lowering and still answers - flagged, and by the Section 4
    // invariant with the very same schedules.
    service::ScheduleResponse degraded = svc.wait(svc.submit(k5Request()));
    ASSERT_TRUE(degraded.ok()) << degraded.error.message;
    EXPECT_TRUE(degraded.degraded);

    // Degraded artifacts are served, never cached: with the fault gone
    // the next identical request recompiles at full quality.
    faultsim::uninstall();
    service::ScheduleResponse healed = svc.wait(svc.submit(k5Request()));
    ASSERT_TRUE(healed.ok()) << healed.error.message;
    EXPECT_FALSE(healed.degraded);
    EXPECT_FALSE(healed.cache_hit);
    EXPECT_EQ(scheduleFingerprint(degraded), scheduleFingerprint(healed));

    service::ServiceMetrics m = svc.metricsSnapshot();
    EXPECT_EQ(m.degraded_responses, 1u);
    EXPECT_EQ(m.cache.degraded_compiles, 1u);
    EXPECT_EQ(m.cache.compiles, 2u);
}

TEST(ServiceRobustness, SpuriousWakesNeverCorruptSingleFlight)
{
    FaultGuard guard;
    faultsim::install(faultsim::Plan::parse(
        "seed=9,cache/spurious-wake=1,cache/slow-compile=1:20000"));

    service::ServiceConfig config;
    config.num_workers = 4;
    service::MdesService svc(config);

    // Identical requests pile every worker onto one in-flight compile;
    // each waiter's wait is peppered with spurious wakes.
    std::vector<service::ScheduleRequest> burst(8, k5Request());
    std::vector<service::ScheduleResponse> responses =
        svc.runBatch(burst);
    faultsim::uninstall();

    ASSERT_EQ(responses.size(), 8u);
    uint64_t fingerprint = scheduleFingerprint(responses[0]);
    for (const auto &resp : responses) {
        ASSERT_TRUE(resp.ok()) << resp.error.message;
        EXPECT_EQ(scheduleFingerprint(resp), fingerprint);
    }
    // Single-flight held: one compile, everyone else shared it.
    EXPECT_EQ(svc.cache().stats().compiles, 1u);
}

TEST(ServiceRobustness, TransientStoreFaultsAreRetriedThrough)
{
    FaultGuard guard;
    fs::path dir = freshDir("retry");

    // Populate the store fault-free.
    {
        service::ServiceConfig config;
        config.num_workers = 1;
        config.store_dir = dir.string();
        service::MdesService svc(config);
        ASSERT_TRUE(svc.wait(svc.submit(k5Request())).ok());
    }

    // One transient open failure per request: the retry loop must
    // recover and still serve from disk (no recompilation).
    faultsim::install(
        faultsim::Plan::parse("seed=11,store/open-read=1:0:1"));
    {
        service::ServiceConfig config;
        config.num_workers = 1;
        config.store_dir = dir.string();
        service::MdesService svc(config);
        service::ScheduleResponse resp = svc.wait(svc.submit(k5Request()));
        ASSERT_TRUE(resp.ok()) << resp.error.message;
        EXPECT_TRUE(resp.disk_hit);
        service::ServiceMetrics m = svc.metricsSnapshot();
        EXPECT_GE(m.cache.disk_retries, 1u);
        EXPECT_EQ(m.cache.compiles, 0u);
    }
    faultsim::uninstall();
    fs::remove_all(dir);
}

TEST(ChaosSweep, FullSweepUpholdsEveryInvariant)
{
    FaultGuard guard;
    // The acceptance gate: >= 25 seeded fault schedules, each replayed
    // for determinism, with zero invariant violations. Small synthetic
    // workloads keep the sweep in CI-friendly time.
    service::chaos::ChaosConfig config;
    config.workers = 4;
    config.requests = 8;
    config.first_seed = 1;
    config.num_seeds = 25;
    config.synth_ops = 200;
    config.store_base_dir = freshDir("sweep").string();

    service::chaos::SweepReport report = service::chaos::runSweep(config);
    EXPECT_TRUE(report.ok()) << report.toText();
    EXPECT_EQ(report.seeds.size(), 25u);
    EXPECT_NE(report.baseline_fingerprint, 0u);

    // The sweep exercised faults (fuzz plans arm aggressively).
    uint64_t fired = 0;
    for (const auto &s : report.seeds)
        fired += s.faults_fired;
    EXPECT_GT(fired, 0u);

    // The machine-readable report parses and carries the verdict.
    JsonValue v = parseJson(report.toJson());
    ASSERT_EQ(v.kind, JsonValue::Kind::Object);
    EXPECT_EQ(v.find("ok")->boolean, report.ok());
    EXPECT_EQ(v.find("seeds")->array.size(), 25u);

    fs::remove_all(config.store_base_dir);
}

} // namespace
} // namespace mdes
