/**
 * @file
 * .sasm textual assembly-stream tests: parsing, flags, diagnostics with
 * locations, round-trip through formatSasm, and scheduling a parsed
 * stream end to end.
 */

#include <gtest/gtest.h>

#include "core/transforms.h"
#include "hmdes/compile.h"
#include "lmdes/low_mdes.h"
#include "machines/machines.h"
#include "sched/list_scheduler.h"
#include "sched/verify.h"
#include "workload/sasm.h"

namespace mdes {
namespace {

lmdes::LowMdes
sparc()
{
    Mdes m = hmdes::compileOrThrow(machines::superSparc().source);
    runPipeline(m, PipelineConfig::all());
    lmdes::LowerOptions opts;
    opts.pack_bit_vector = true;
    return lmdes::LowMdes::lower(m, opts);
}

const char *const kKernel = R"(
# scalar product kernel
block
    LD     r10 <- r1
    LD     r11 <- r2
    ADD_R  r12 <- r10, r11   !cascade
    ST     <- r12, r3        ; store writes no register
    BPCC   <- r12            !branch
end

block
    ADD_I r5 <- r4
    SETHI r6 <-
    BA    <- !branch
end
)";

TEST(Sasm, ParsesKernel)
{
    auto low = sparc();
    auto program = workload::parseSasmOrThrow(kKernel, low);
    ASSERT_EQ(program.blocks.size(), 2u);
    ASSERT_EQ(program.blocks[0].instrs.size(), 5u);

    const auto &add = program.blocks[0].instrs[2];
    EXPECT_EQ(low.opClasses()[add.op_class].name, "ADD_R");
    EXPECT_EQ(add.dsts, (std::vector<int32_t>{12}));
    EXPECT_EQ(add.srcs, (std::vector<int32_t>{10, 11}));
    EXPECT_TRUE(add.cascadable);
    EXPECT_FALSE(add.is_branch);

    const auto &st = program.blocks[0].instrs[3];
    EXPECT_TRUE(st.dsts.empty());
    EXPECT_EQ(st.srcs, (std::vector<int32_t>{12, 3}));

    EXPECT_TRUE(program.blocks[0].instrs.back().is_branch);
    // SETHI: no sources at all.
    EXPECT_TRUE(program.blocks[1].instrs[1].srcs.empty());
}

TEST(Sasm, ParsedStreamSchedulesAndVerifies)
{
    auto low = sparc();
    auto program = workload::parseSasmOrThrow(kKernel, low);
    sched::ListScheduler scheduler(low);
    sched::SchedStats stats;
    auto schedules = scheduler.scheduleProgram(program, stats);
    for (size_t b = 0; b < program.blocks.size(); ++b) {
        EXPECT_EQ(sched::verifySchedule(program.blocks[b], schedules[b],
                                        low),
                  "");
    }
    // The cascadable ADD_R consumes the load result; it cannot cascade
    // off a load, so it waits for the load latency.
    EXPECT_GE(schedules[0].cycles[2], 1);
}

TEST(Sasm, RoundTripsThroughFormat)
{
    auto low = sparc();
    auto program = workload::parseSasmOrThrow(kKernel, low);
    std::string text = workload::formatSasm(program, low);
    auto again = workload::parseSasmOrThrow(text, low);
    ASSERT_EQ(again.blocks.size(), program.blocks.size());
    for (size_t b = 0; b < program.blocks.size(); ++b) {
        ASSERT_EQ(again.blocks[b].instrs.size(),
                  program.blocks[b].instrs.size());
        for (size_t i = 0; i < program.blocks[b].instrs.size(); ++i) {
            const auto &x = program.blocks[b].instrs[i];
            const auto &y = again.blocks[b].instrs[i];
            EXPECT_EQ(x.op_class, y.op_class);
            EXPECT_EQ(x.srcs, y.srcs);
            EXPECT_EQ(x.dsts, y.dsts);
            EXPECT_EQ(x.cascadable, y.cascadable);
            EXPECT_EQ(x.is_branch, y.is_branch);
        }
    }
}

struct BadSasm
{
    const char *label;
    const char *text;
    const char *expect;
};

class SasmErrors : public testing::TestWithParam<BadSasm>
{
};

TEST_P(SasmErrors, ReportsProblem)
{
    auto low = sparc();
    DiagnosticEngine diags;
    workload::parseSasm(GetParam().text, low, diags);
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_NE(diags.toString().find(GetParam().expect),
              std::string::npos)
        << diags.toString();
}

const BadSasm kBadSasm[] = {
    {"unknown_opcode", "block\n  FROB r1 <- r2\nend\n",
     "unknown operation"},
    {"missing_arrow", "block\n  ADD_I r1 r2\nend\n", "missing '<-'"},
    {"double_arrow", "block\n  ADD_I r1 <- <- r2\nend\n",
     "duplicate '<-'"},
    {"bad_register", "block\n  ADD_I rX <- r2\nend\n",
     "expected register"},
    {"outside_block", "ADD_I r1 <- r2\n", "outside block"},
    {"nested_block", "block\nblock\n", "nested 'block'"},
    {"end_without_block", "end\n", "'end' without 'block'"},
    {"empty_block", "block\nend\n", "empty block"},
    {"unterminated", "block\n  ADD_I r1 <- r2\n",
     "unterminated block"},
    {"two_branches",
     "block\n  BA <- !branch\n  BA <- !branch\nend\n",
     "already has a branch"},
};

std::string
badSasmName(const testing::TestParamInfo<BadSasm> &info)
{
    return info.param.label;
}

INSTANTIATE_TEST_SUITE_P(AllBadInputs, SasmErrors,
                         testing::ValuesIn(kBadSasm), badSasmName);

TEST(Sasm, WarnsOnUselessCascadeFlag)
{
    auto low = sparc();
    DiagnosticEngine diags;
    auto program = workload::parseSasm(
        "block\n  LD r2 <- r1 !cascade\n  BA <- !branch\nend\n", low,
        diags);
    EXPECT_FALSE(diags.hasErrors());
    EXPECT_NE(diags.toString().find("no cascade table"),
              std::string::npos);
    EXPECT_FALSE(program.blocks[0].instrs[0].cascadable);
}

TEST(Sasm, ErrorLocationsAreUseful)
{
    auto low = sparc();
    DiagnosticEngine diags;
    workload::parseSasm("block\n  ADD_I r1 <- r2\n  FROB r1 <- r2\nend\n",
                        low, diags);
    ASSERT_FALSE(diags.diagnostics().empty());
    EXPECT_EQ(diags.diagnostics()[0].loc.line, 3);
}

} // namespace
} // namespace mdes
