/**
 * @file
 * MDES lint tests: every finding category fires on a minimal trigger,
 * clean descriptions stay clean, lint never mutates its input, and the
 * shipped machines' deliberate decay is reported - including the
 * paper's PA7100 duplicated-option accident (Table 8), which is the
 * scenario the linter exists to catch at authoring time.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/lint.h"
#include "hmdes/compile.h"
#include "machines/machines.h"

namespace mdes {
namespace {

size_t
countKind(const std::vector<LintFinding> &findings, LintKind kind)
{
    return size_t(std::count_if(
        findings.begin(), findings.end(),
        [kind](const LintFinding &f) { return f.kind == kind; }));
}

TEST(Lint, CleanDescriptionHasNoFindings)
{
    auto m = hmdes::compileOrThrow(R"(
machine "clean" {
    resource S[2]; resource M;
    ortree AnyS { for i in 0 .. 1 { option { use S[i] at 0; } } }
    ortree MemU { option { use M at 0; } }
    table T = and(MemU, AnyS);
    operation LD { table T; latency 2; }
    operation ST { table T; latency 1; }
    bypass LD ST latency 1;
}
)");
    LintOptions options;
    options.removable_usages = true;
    EXPECT_TRUE(lint(m, options).empty());
}

TEST(Lint, DetectsPa7100DuplicatedOption)
{
    // The exact historical accident from the paper's Table 8.
    Mdes m = hmdes::compileOrThrow(machines::pa7100().source);
    auto findings = lint(m);
    EXPECT_GE(countKind(findings, LintKind::RedundantOption), 1u);
    bool mentions_mempipe = false;
    for (const auto &f : findings) {
        if (f.kind == LintKind::RedundantOption)
            mentions_mempipe |=
                f.message.find("MemPipe") != std::string::npos;
    }
    EXPECT_TRUE(mentions_mempipe);
}

TEST(Lint, DetectsSupersetOption)
{
    auto m = hmdes::compileOrThrow(R"(
machine "sup" {
    resource R[2];
    ortree O {
        option { use R[0] at 0; }
        option { use R[0] at 0; use R[1] at 0; }
    }
    table T = O;
    operation X { table T; }
}
)");
    auto findings = lint(m);
    ASSERT_EQ(countKind(findings, LintKind::RedundantOption), 1u);
    EXPECT_NE(findings[0].message.find("superset"), std::string::npos);
}

TEST(Lint, DetectsDuplicatesAndUnused)
{
    for (const auto *info : machines::all()) {
        SCOPED_TRACE(info->name);
        Mdes m = hmdes::compileOrThrow(info->source);
        auto findings = lint(m);
        // Every shipped description carries deliberate Section 5 decay.
        EXPECT_GE(countKind(findings, LintKind::DuplicateOrTree) +
                      countKind(findings, LintKind::DuplicateOption) +
                      countKind(findings, LintKind::UnusedEntity) +
                      countKind(findings, LintKind::DuplicateTable) +
                      countKind(findings, LintKind::RedundantOption),
                  1u)
            << "expected decay findings";
    }
}

TEST(Lint, DetectsOverlappingSubtrees)
{
    auto m = hmdes::compileOrThrow(R"(
machine "ovl" {
    resource R[2];
    ortree A { for i in 0 .. 1 { option { use R[i] at 0; } } }
    ortree B { option { use R[0] at 0; } }
    table T = and(A, B);
    operation X { table T; }
}
)");
    auto findings = lint(m);
    EXPECT_EQ(countKind(findings, LintKind::OverlappingSubtrees), 1u);
}

TEST(Lint, DetectsUselessBypass)
{
    auto m = hmdes::compileOrThrow(R"(
machine "bp" {
    resource S;
    ortree O { option { use S at 0; } }
    table T = O;
    operation A { table T; latency 2; }
    operation B { table T; latency 1; }
    bypass A B latency 2;
}
)");
    auto findings = lint(m);
    EXPECT_EQ(countKind(findings, LintKind::UselessBypass), 1u);
}

TEST(Lint, DeepModeFindsRemovableUsages)
{
    auto m = hmdes::compileOrThrow(R"(
machine "rm" {
    resource A; resource B;
    ortree O { option { use A at 0; use B at 0; } } // lock-step pair
    table T = O;
    operation X { table T; }
}
)");
    LintOptions shallow;
    EXPECT_EQ(countKind(lint(m, shallow), LintKind::RemovableUsage), 0u);
    LintOptions deep;
    deep.removable_usages = true;
    EXPECT_EQ(countKind(lint(m, deep), LintKind::RemovableUsage), 1u);
}

TEST(Lint, NeverMutatesInput)
{
    Mdes m = hmdes::compileOrThrow(machines::pa7100().source);
    Mdes before = m;
    LintOptions options;
    options.removable_usages = true;
    lint(m, options);
    EXPECT_EQ(m.options().size(), before.options().size());
    for (OptionId o = 0; o < m.options().size(); ++o)
        EXPECT_EQ(m.option(o).usages, before.option(o).usages);
    EXPECT_EQ(m.orTrees().size(), before.orTrees().size());
    EXPECT_EQ(m.trees().size(), before.trees().size());
}

TEST(Lint, KindNamesArePrintable)
{
    for (LintKind kind :
         {LintKind::RedundantOption, LintKind::DuplicateOption,
          LintKind::DuplicateOrTree, LintKind::DuplicateTable,
          LintKind::UnusedEntity, LintKind::OverlappingSubtrees,
          LintKind::UselessBypass, LintKind::RemovableUsage}) {
        EXPECT_STRNE(lintKindName(kind), "?");
    }
}

} // namespace
} // namespace mdes
