/**
 * @file
 * Backward list scheduler tests: legality, latency/width behavior, and
 * a characterization of the Section 7 direction parameterization
 * (backward-tuned usage-time shifts and check ordering).
 */

#include <gtest/gtest.h>

#include <map>

#include "core/transforms.h"
#include "hmdes/compile.h"
#include "lmdes/low_mdes.h"
#include "machines/machines.h"
#include "sched/backward_scheduler.h"
#include "sched/verify.h"
#include "workload/workload.h"

namespace mdes {
namespace {

using lmdes::LowMdes;
using sched::BackwardListScheduler;
using sched::Block;
using sched::BlockSchedule;
using sched::Instr;
using sched::SchedStats;

LowMdes
twoWide()
{
    static const char *src = R"(
machine "two-wide" {
    resource S[2];
    ortree AnyS { for i in 0 .. 1 { option { use S[i] at 0; } } }
    table Any = AnyS;
    operation ADD { table Any; latency 1; }
    operation LOAD { table Any; latency 3; }
}
)";
    return LowMdes::lower(hmdes::compileOrThrow(src), {});
}

Instr
instr(uint32_t cls, std::vector<int32_t> srcs, std::vector<int32_t> dsts)
{
    Instr in;
    in.op_class = cls;
    in.srcs = std::move(srcs);
    in.dsts = std::move(dsts);
    return in;
}

TEST(Backward, PacksIndependentOps)
{
    LowMdes low = twoWide();
    uint32_t ADD = low.findOpClass("ADD");
    Block b;
    for (int i = 0; i < 4; ++i)
        b.instrs.push_back(instr(ADD, {10 + i}, {20 + i}));
    BackwardListScheduler s(low);
    SchedStats stats;
    BlockSchedule sched = s.scheduleBlock(b, stats);
    EXPECT_EQ(sched.length, 2);
    EXPECT_EQ(sched::verifySchedule(b, sched, low), "");
}

TEST(Backward, HonorsLatencyChains)
{
    LowMdes low = twoWide();
    uint32_t ADD = low.findOpClass("ADD");
    uint32_t LOAD = low.findOpClass("LOAD");
    Block b;
    b.instrs = {instr(LOAD, {1}, {2}), instr(ADD, {2}, {3}),
                instr(ADD, {3}, {4})};
    BackwardListScheduler s(low);
    SchedStats stats;
    BlockSchedule sched = s.scheduleBlock(b, stats);
    EXPECT_EQ(sched.cycles[0], 0);
    EXPECT_GE(sched.cycles[1] - sched.cycles[0], 3);
    EXPECT_GE(sched.cycles[2] - sched.cycles[1], 1);
    EXPECT_EQ(sched::verifySchedule(b, sched, low), "");
}

TEST(Backward, NormalizesToCycleZero)
{
    LowMdes low = twoWide();
    uint32_t ADD = low.findOpClass("ADD");
    Block b;
    b.instrs = {instr(ADD, {1}, {2})};
    BackwardListScheduler s(low);
    SchedStats stats;
    BlockSchedule sched = s.scheduleBlock(b, stats);
    EXPECT_EQ(sched.cycles[0], 0);
    EXPECT_EQ(sched.length, 1);
}

TEST(Backward, EmptyBlock)
{
    LowMdes low = twoWide();
    BackwardListScheduler s(low);
    SchedStats stats;
    BlockSchedule sched = s.scheduleBlock({}, stats);
    EXPECT_EQ(stats.ops_scheduled, 0u);
}

TEST(Backward, AllMachinesScheduleLegally)
{
    for (const auto *info : machines::all()) {
        SCOPED_TRACE(info->name);
        Mdes m = hmdes::compileOrThrow(info->source);
        // Backward-tuned transformations.
        PipelineConfig config = PipelineConfig::all();
        config.direction = SchedDirection::Backward;
        runPipeline(m, config);
        LowMdes low = LowMdes::lower(m, {});

        workload::WorkloadSpec spec = info->workload;
        spec.num_ops = 4000;
        sched::Program program = workload::generate(spec, low);
        // Backward scheduling ignores cascading.
        for (auto &block : program.blocks) {
            for (auto &in : block.instrs)
                in.cascadable = false;
        }

        BackwardListScheduler s(low);
        SchedStats stats;
        auto schedules = s.scheduleProgram(program, stats);
        ASSERT_EQ(schedules.size(), program.blocks.size());
        for (size_t b = 0; b < schedules.size(); ++b) {
            ASSERT_EQ(sched::verifySchedule(program.blocks[b],
                                            schedules[b], low),
                      "")
                << "block " << b;
        }
        EXPECT_GT(stats.avgAttemptsPerOp(), 0.99);
    }
}

TEST(Backward, DirectionTuningCharacterization)
{
    // Section 7 prescribes, for a backward scheduler, shifting each
    // resource's *latest* usage time to zero and probing latest-first.
    // The paper gives no backward measurements; this characterizes ours:
    // the tuning helps the K5 (its two-dispatch-cycle tables put real
    // usage spread in hot options), is neutral where every resource is
    // single-time (PA7100, SuperSPARC), and can *hurt* when a rare long
    // busy-tail (the Pentium divide holding its ALU ~10 cycles) drags a
    // resource's latest-usage constant away from the common case. The
    // identical schedule is produced either way.
    std::map<std::string, double> ratio;
    for (const auto *info : machines::all()) {
        SCOPED_TRACE(info->name);
        uint64_t checks[2];
        std::vector<BlockSchedule> scheds[2];
        for (int pass = 0; pass < 2; ++pass) {
            Mdes m = hmdes::compileOrThrow(info->source);
            PipelineConfig config = PipelineConfig::all();
            config.direction = pass == 0 ? SchedDirection::Forward
                                         : SchedDirection::Backward;
            runPipeline(m, config);
            lmdes::LowerOptions lopts;
            lopts.pack_bit_vector = true;
            LowMdes low = LowMdes::lower(m, lopts);

            workload::WorkloadSpec spec = info->workload;
            spec.num_ops = 4000;
            sched::Program program = workload::generate(spec, low);
            for (auto &block : program.blocks) {
                for (auto &in : block.instrs)
                    in.cascadable = false;
            }
            BackwardListScheduler s(low);
            SchedStats stats;
            scheds[pass] = s.scheduleProgram(program, stats);
            checks[pass] = stats.checks.resource_checks;
        }
        ratio[info->name] = double(checks[1]) / double(checks[0]);
        // Tuning never changes the schedule, only the checking cost.
        ASSERT_EQ(scheds[0].size(), scheds[1].size());
        for (size_t b = 0; b < scheds[0].size(); ++b)
            ASSERT_EQ(scheds[0][b].cycles, scheds[1][b].cycles);
    }
    EXPECT_LT(ratio["K5"], 1.0);
    EXPECT_NEAR(ratio["PA7100"], 1.0, 0.05);
    EXPECT_NEAR(ratio["SuperSPARC"], 1.0, 0.05);
    EXPECT_LT(ratio["Pentium"], 1.5); // tail pathology, bounded
}

} // namespace
} // namespace mdes
