/**
 * @file
 * Unit tests for every MDES transformation (paper Sections 5, 7, 8):
 * CSE/copy-propagation/dead-code, redundant-option removal, usage-time
 * shifting, usage sorting, OR-subtree sorting, and common-usage hoisting
 * with its two application heuristics.
 */

#include <gtest/gtest.h>

#include "core/transforms.h"
#include "hmdes/compile.h"
#include "machines/machines.h"

namespace mdes {
namespace {

// ------------------------------------------------------------------- CSE

TEST(Cse, MergesIdenticalOptions)
{
    Mdes m("t");
    ResourceId r = m.addResourceClass("R", 1);
    OptionId a = m.addOption({{{0, r}}});
    OptionId b = m.addOption({{{0, r}}}); // duplicate
    OrTreeId t1 = m.addOrTree({"A", {a}});
    OrTreeId t2 = m.addOrTree({"B", {b}});
    TreeId tree = m.addTree({"T", {t1, t2}});
    // Both subtrees need R at 0 - contrived but legal for this test.
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    auto stats = eliminateRedundantInfo(m);
    EXPECT_EQ(stats.merged_options, 1u);
    // The two OR-trees now have identical option lists and merge too.
    EXPECT_EQ(stats.merged_or_trees, 1u);
    EXPECT_EQ(m.options().size(), 1u);
    EXPECT_EQ(m.validate(), "");
}

TEST(Cse, DoesNotMergeDifferentlyOrderedOptions)
{
    // Usage order determines check order; set-equal but differently
    // ordered options must stay distinct.
    Mdes m("t");
    ResourceId r = m.addResourceClass("R", 2);
    OptionId a = m.addOption({{{0, r}, {0, r + 1}}});
    OptionId b = m.addOption({{{0, r + 1}, {0, r}}});
    OrTreeId t1 = m.addOrTree({"A", {a, b}});
    TreeId tree = m.addTree({"T", {t1}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    auto stats = eliminateRedundantInfo(m);
    EXPECT_EQ(stats.merged_options, 0u);
    EXPECT_EQ(m.options().size(), 2u);
}

TEST(Cse, RemovesUnusedInformation)
{
    Mdes m("t");
    ResourceId r = m.addResourceClass("R", 1);
    OptionId used = m.addOption({{{0, r}}});
    OptionId unused = m.addOption({{{1, r}}});
    OrTreeId live = m.addOrTree({"Live", {used}});
    m.addOrTree({"Dead", {unused}});
    TreeId tree = m.addTree({"T", {live}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    auto stats = eliminateRedundantInfo(m);
    EXPECT_EQ(stats.removed_dead, 2u);
    EXPECT_EQ(m.options().size(), 1u);
    EXPECT_EQ(m.orTrees().size(), 1u);
}

TEST(Cse, Idempotent)
{
    Mdes m = hmdes::compileOrThrow(machines::pentium().source);
    eliminateRedundantInfo(m);
    Mdes once = m;
    auto stats = eliminateRedundantInfo(m);
    EXPECT_EQ(stats.merged_options, 0u);
    EXPECT_EQ(stats.merged_or_trees, 0u);
    EXPECT_EQ(stats.merged_trees, 0u);
    EXPECT_EQ(stats.removed_dead, 0u);
    EXPECT_EQ(m.options().size(), once.options().size());
}

TEST(Cse, PentiumCollapsesCopyPastedPipes)
{
    // The Pentium description copy-pastes the either-pipe OR-tree per
    // opcode family; CSE must fold them to one.
    Mdes m = hmdes::compileOrThrow(machines::pentium().source);
    size_t before = m.orTrees().size();
    auto stats = eliminateRedundantInfo(m);
    EXPECT_GT(stats.merged_or_trees, 2u);
    EXPECT_LT(m.orTrees().size(), before);
}

// ------------------------------------------------- Redundant option removal

TEST(RedundantOptions, RemovesExactDuplicate)
{
    Mdes m("t");
    ResourceId r = m.addResourceClass("R", 2);
    OptionId a = m.addOption({{{0, r}}});
    OptionId b = m.addOption({{{0, r}}});
    OptionId c = m.addOption({{{0, r + 1}}});
    OrTreeId t = m.addOrTree({"T", {a, b, c}});
    TreeId tree = m.addTree({"T", {t}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    EXPECT_EQ(removeRedundantOptions(m), 1u);
    EXPECT_EQ(m.orTree(m.tree(m.opClasses()[0].tree).or_trees[0])
                  .options.size(),
              2u);
}

TEST(RedundantOptions, RemovesSupersetOfHigherPriority)
{
    Mdes m("t");
    ResourceId r = m.addResourceClass("R", 2);
    OptionId small = m.addOption({{{0, r}}});
    OptionId big = m.addOption({{{0, r}, {0, r + 1}}}); // superset
    OrTreeId t = m.addOrTree({"T", {small, big}});
    TreeId tree = m.addTree({"T", {t}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    EXPECT_EQ(removeRedundantOptions(m), 1u);
}

TEST(RedundantOptions, KeepsSupersetWithHigherPriority)
{
    // The superset option listed FIRST is not redundant: it is preferred
    // when available, and the subset may fit when it does not.
    Mdes m("t");
    ResourceId r = m.addResourceClass("R", 2);
    OptionId big = m.addOption({{{0, r}, {0, r + 1}}});
    OptionId small = m.addOption({{{0, r}}});
    OrTreeId t = m.addOrTree({"T", {big, small}});
    TreeId tree = m.addTree({"T", {t}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    EXPECT_EQ(removeRedundantOptions(m), 0u);
}

TEST(RedundantOptions, Pa7100MemoryDuplicate)
{
    Mdes m = hmdes::compileOrThrow(machines::pa7100().source);
    size_t removed = removeRedundantOptions(m);
    EXPECT_GE(removed, 1u);
    // Memory ops now have exactly 2 options.
    EXPECT_EQ(m.expandedOptionCount(m.opClass(m.findOpClass("LDW")).tree),
              2u);
}

// ------------------------------------------------------------- Time shift

TEST(TimeShift, ForwardConcentratesEarliestAtZero)
{
    Mdes m("t");
    ResourceId a = m.addResourceClass("A", 1);
    ResourceId b = m.addResourceClass("B", 1);
    OptionId o1 = m.addOption({{{-1, a}, {2, b}}});
    OptionId o2 = m.addOption({{{1, a}, {3, b}}});
    OrTreeId t = m.addOrTree({"T", {o1, o2}});
    TreeId tree = m.addTree({"T", {t}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    auto shifts = shiftUsageTimes(m, SchedDirection::Forward);
    EXPECT_EQ(shifts[a], -1);
    EXPECT_EQ(shifts[b], 2);
    EXPECT_EQ(m.option(o1).usages[0].time, 0); // -1 - (-1)
    EXPECT_EQ(m.option(o1).usages[1].time, 0); // 2 - 2
    EXPECT_EQ(m.option(o2).usages[0].time, 2); // 1 - (-1)
    EXPECT_EQ(m.option(o2).usages[1].time, 1); // 3 - 2
}

TEST(TimeShift, BackwardConcentratesLatestAtZero)
{
    Mdes m("t");
    ResourceId a = m.addResourceClass("A", 1);
    OptionId o1 = m.addOption({{{-1, a}}});
    OptionId o2 = m.addOption({{{2, a}}});
    OrTreeId t = m.addOrTree({"T", {o1, o2}});
    TreeId tree = m.addTree({"T", {t}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    shiftUsageTimes(m, SchedDirection::Backward);
    EXPECT_EQ(m.option(o1).usages[0].time, -3);
    EXPECT_EQ(m.option(o2).usages[0].time, 0);
}

TEST(TimeShift, IdempotentForward)
{
    Mdes m = hmdes::compileOrThrow(machines::superSparc().source);
    shiftUsageTimes(m);
    Mdes once = m;
    auto shifts = shiftUsageTimes(m);
    for (int32_t s : shifts)
        EXPECT_EQ(s, 0);
    EXPECT_EQ(m.options().size(), once.options().size());
}

TEST(TimeShift, AllMachinesEndUpNonNegative)
{
    for (const auto *info : machines::all()) {
        SCOPED_TRACE(info->name);
        Mdes m = hmdes::compileOrThrow(info->source);
        shiftUsageTimes(m);
        for (const auto &opt : m.options()) {
            for (const auto &u : opt.usages)
                EXPECT_GE(u.time, 0);
        }
    }
}

// ------------------------------------------------------------ Usage sorting

TEST(SortUsages, ForwardPutsTimeZeroFirst)
{
    Mdes m("t");
    ResourceId r = m.addResourceClass("R", 3);
    OptionId o = m.addOption({{{2, r}, {0, r + 1}, {1, r + 2}}});
    OrTreeId t = m.addOrTree({"T", {o}});
    TreeId tree = m.addTree({"T", {t}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    sortUsageChecks(m, SchedDirection::Forward);
    EXPECT_EQ(m.option(o).usages[0].time, 0);
    EXPECT_EQ(m.option(o).usages[1].time, 1);
    EXPECT_EQ(m.option(o).usages[2].time, 2);

    sortUsageChecks(m, SchedDirection::Backward);
    EXPECT_EQ(m.option(o).usages[0].time, 2);
    EXPECT_EQ(m.option(o).usages[2].time, 0);
}

TEST(SortUsages, TiesBrokenByResource)
{
    Mdes m("t");
    ResourceId r = m.addResourceClass("R", 3);
    OptionId o = m.addOption({{{0, r + 2}, {0, r}, {0, r + 1}}});
    OrTreeId t = m.addOrTree({"T", {o}});
    TreeId tree = m.addTree({"T", {t}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    sortUsageChecks(m);
    EXPECT_EQ(m.option(o).usages[0].resource, r);
    EXPECT_EQ(m.option(o).usages[1].resource, r + 1);
    EXPECT_EQ(m.option(o).usages[2].resource, r + 2);
}

// --------------------------------------------------------- OR-subtree sort

TEST(SortOrTrees, OrdersByEarliestTimeThenOptionsThenSharing)
{
    Mdes m("t");
    ResourceId a = m.addResourceClass("A", 4);
    ResourceId b = m.addResourceClass("B", 2);
    ResourceId c = m.addResourceClass("C", 1);

    // big: 4 options at time 0; late: 1 option at time 1;
    // unit: 1 option at time 0.
    std::vector<OptionId> big_opts;
    for (uint32_t i = 0; i < 4; ++i)
        big_opts.push_back(m.addOption({{{0, a + i}}}));
    OrTreeId big = m.addOrTree({"Big", big_opts});
    OrTreeId late = m.addOrTree({"Late", {m.addOption({{{1, b}}})}});
    OrTreeId unit = m.addOrTree({"Unit", {m.addOption({{{0, c}}})}});

    TreeId tree = m.addTree({"T", {big, late, unit}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    EXPECT_EQ(sortOrSubtrees(m), 1u);
    // Earliest time first (0 before 1); among time-0 trees the
    // one-option tree precedes the four-option tree.
    EXPECT_EQ(m.tree(tree).or_trees,
              (std::vector<OrTreeId>{unit, big, late}));
}

TEST(SortOrTrees, SharingBreaksTies)
{
    Mdes m("t");
    ResourceId a = m.addResourceClass("A", 2);
    ResourceId b = m.addResourceClass("B", 2);
    // Two 2-option trees at time 0; "shared" is used by a second table.
    OrTreeId lonely = m.addOrTree(
        {"Lonely",
         {m.addOption({{{0, a}}}), m.addOption({{{0, a + 1}}})}});
    OrTreeId shared = m.addOrTree(
        {"Shared",
         {m.addOption({{{0, b}}}), m.addOption({{{0, b + 1}}})}});
    TreeId t1 = m.addTree({"T1", {lonely, shared}});
    TreeId t2 = m.addTree({"T2", {shared}});
    m.addOpClass({"OP1", t1, 1, kInvalidId, ""});
    m.addOpClass({"OP2", t2, 1, kInvalidId, ""});

    sortOrSubtrees(m);
    EXPECT_EQ(m.tree(t1).or_trees,
              (std::vector<OrTreeId>{shared, lonely}));
}

TEST(SortOrTrees, StableWhenAlreadySorted)
{
    Mdes m("t");
    ResourceId a = m.addResourceClass("A", 1);
    ResourceId b = m.addResourceClass("B", 1);
    OrTreeId first = m.addOrTree({"F", {m.addOption({{{0, a}}})}});
    OrTreeId second = m.addOrTree({"S", {m.addOption({{{0, b}}})}});
    TreeId tree = m.addTree({"T", {first, second}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    EXPECT_EQ(sortOrSubtrees(m), 0u);
    EXPECT_EQ(m.tree(tree).or_trees,
              (std::vector<OrTreeId>{first, second}));
}

// ----------------------------------------------------------------- Hoisting

TEST(Hoist, Rule1AppendsToExistingOneOptionSubtree)
{
    Mdes m("t");
    ResourceId u = m.addResourceClass("U", 1);
    ResourceId c = m.addResourceClass("C", 1);
    ResourceId d = m.addResourceClass("D", 2);
    // One-option subtree at time 0; a 2-option subtree whose options
    // share C@0 (plus differing D usages).
    OrTreeId unit = m.addOrTree({"Unit", {m.addOption({{{0, u}}})}});
    OrTreeId multi = m.addOrTree(
        {"Multi",
         {m.addOption({{{0, c}, {0, d}}}),
          m.addOption({{{0, c}, {0, d + 1}}})}});
    TreeId tree = m.addTree({"T", {unit, multi}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    EXPECT_EQ(hoistCommonUsages(m), 1u);
    eliminateRedundantInfo(m);

    const auto &t = m.tree(m.opClasses()[0].tree);
    ASSERT_EQ(t.or_trees.size(), 2u);
    // The one-option subtree absorbed C@0.
    const auto &one = m.orTree(t.or_trees[0]);
    ASSERT_EQ(one.options.size(), 1u);
    EXPECT_EQ(m.option(one.options[0]).usages.size(), 2u);
    // The multi subtree's options lost the common usage.
    const auto &rest = m.orTree(t.or_trees[1]);
    for (OptionId o : rest.options)
        EXPECT_EQ(m.option(o).usages.size(), 1u);
    EXPECT_EQ(m.validate(), "");
}

TEST(Hoist, Rule2CreatesNewSubtreeWhenOnlyUsageAtThatTime)
{
    Mdes m("t");
    ResourceId c = m.addResourceClass("C", 1);
    ResourceId d = m.addResourceClass("D", 2);
    // Options share C@1 (the only usage at time 1) and differ at time 0.
    OrTreeId multi = m.addOrTree(
        {"Multi",
         {m.addOption({{{0, d}, {1, c}}}),
          m.addOption({{{0, d + 1}, {1, c}}})}});
    TreeId tree = m.addTree({"T", {multi}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    EXPECT_EQ(hoistCommonUsages(m), 1u);
    eliminateRedundantInfo(m);

    const auto &t = m.tree(m.opClasses()[0].tree);
    ASSERT_EQ(t.or_trees.size(), 2u);
    // New one-option subtree placed first.
    const auto &common = m.orTree(t.or_trees[0]);
    ASSERT_EQ(common.options.size(), 1u);
    EXPECT_EQ(m.option(common.options[0]).usages[0].resource, c);
    EXPECT_EQ(m.validate(), "");
}

TEST(Hoist, SkipsWhenCommonUsageSharesItsTimeSlot)
{
    Mdes m("t");
    ResourceId c = m.addResourceClass("C", 1);
    ResourceId d = m.addResourceClass("D", 2);
    // Common usage C@0 coexists with the differing D usages at time 0:
    // no rule-1 target exists, and rule 2's only-usage test fails.
    OrTreeId multi = m.addOrTree(
        {"Multi",
         {m.addOption({{{0, c}, {0, d}}}),
          m.addOption({{{0, c}, {0, d + 1}}})}});
    TreeId tree = m.addTree({"T", {multi}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    EXPECT_EQ(hoistCommonUsages(m), 0u);
}

TEST(Hoist, ClonesSharedSubtreesBeforeMutating)
{
    Mdes m("t");
    ResourceId u = m.addResourceClass("U", 2);
    ResourceId c = m.addResourceClass("C", 1);
    ResourceId d = m.addResourceClass("D", 2);
    OrTreeId multi = m.addOrTree(
        {"Multi",
         {m.addOption({{{0, c}, {0, d}}}),
          m.addOption({{{0, c}, {0, d + 1}}})}});
    // Tree 1 has a one-option companion (rule 1 fires); tree 2 shares
    // the multi subtree but has no companion (no hoist there).
    OrTreeId unit = m.addOrTree({"Unit", {m.addOption({{{0, u}}})}});
    TreeId t1 = m.addTree({"T1", {unit, multi}});
    TreeId t2 = m.addTree({"T2", {multi}});
    m.addOpClass({"OP1", t1, 1, kInvalidId, ""});
    m.addOpClass({"OP2", t2, 1, kInvalidId, ""});

    EXPECT_EQ(hoistCommonUsages(m), 1u);
    // Tree 2 still sees the original, unmutated subtree.
    const auto &orig = m.orTree(m.tree(t2).or_trees[0]);
    for (OptionId o : orig.options)
        EXPECT_EQ(m.option(o).usages.size(), 2u);
    EXPECT_EQ(m.validate(), "");
}

TEST(Hoist, NeverCreatesEmptyOptions)
{
    Mdes m("t");
    ResourceId c = m.addResourceClass("C", 1);
    // Both options are exactly the common usage; hoisting would empty
    // them, so it must decline.
    OrTreeId multi = m.addOrTree(
        {"Multi", {m.addOption({{{1, c}}}), m.addOption({{{1, c}}})}});
    TreeId tree = m.addTree({"T", {multi}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    EXPECT_EQ(hoistCommonUsages(m), 0u);
    EXPECT_EQ(m.validate(), "");
}

// ----------------------------------------------------------------- Pipeline

TEST(Pipeline, AllRunsEveryPassAndStaysValid)
{
    for (const auto *info : machines::all()) {
        SCOPED_TRACE(info->name);
        Mdes m = hmdes::compileOrThrow(info->source);
        auto stats = runPipeline(m, PipelineConfig::all());
        EXPECT_EQ(m.validate(), "");
        // Every machine carries decay, so Section 5 always finds work.
        EXPECT_GT(stats.cse.merged_options + stats.cse.removed_dead, 0u);
    }
}

TEST(Pipeline, NoneIsIdentity)
{
    Mdes m = hmdes::compileOrThrow(machines::superSparc().source);
    Mdes copy = m;
    runPipeline(copy, PipelineConfig::none());
    EXPECT_EQ(copy.options().size(), m.options().size());
    EXPECT_EQ(copy.orTrees().size(), m.orTrees().size());
    EXPECT_EQ(copy.trees().size(), m.trees().size());
}

} // namespace
} // namespace mdes
