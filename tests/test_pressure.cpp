/**
 * @file
 * Resource-pressure analysis tests: demand accounting, bottleneck
 * identification, consistency with the modulo scheduler's ResMII, the
 * over-subscription predicate, and soundness (the bound never exceeds a
 * schedule, given multi-cycle busy tails).
 */

#include <gtest/gtest.h>

#include "core/collision.h"
#include "core/transforms.h"
#include "hmdes/compile.h"
#include "lmdes/low_mdes.h"
#include "machines/machines.h"
#include "random_mdes.h"
#include "sched/list_scheduler.h"
#include "sched/modulo_scheduler.h"
#include "sched/pressure.h"
#include "workload/workload.h"

namespace mdes {
namespace {

using lmdes::LowMdes;

LowMdes
sparc()
{
    return LowMdes::lower(
        hmdes::compileOrThrow(machines::superSparc().source), {});
}

sched::Instr
op(const LowMdes &low, const char *opcode)
{
    sched::Instr in;
    in.op_class = low.findOpClass(opcode);
    in.srcs = {1};
    in.dsts = {2};
    return in;
}

TEST(Pressure, SingleInstanceBottleneck)
{
    LowMdes low = sparc();
    sched::Block b;
    // Three loads: the lone memory unit must serve all three.
    for (int i = 0; i < 3; ++i)
        b.instrs.push_back(op(low, "LD"));
    auto p = sched::analyzePressure(b, low);
    EXPECT_EQ(p.resource_bound, 3);
    // The bottleneck demand is exactly 3 cycles on one instance.
    EXPECT_DOUBLE_EQ(p.demand[p.bottleneck], 3.0);
}

TEST(Pressure, MultiInstanceResourcesDivideDemand)
{
    LowMdes low = sparc();
    sched::Block b;
    // Four 1-src IALU ops: 2 IALUs, 2 write ports, 4 read ports,
    // 3 decoders -> every instance's guaranteed demand is 0 (the op can
    // always avoid any *specific* instance), so the bound comes only
    // from single-instance resources - of which IALU ops use none.
    for (int i = 0; i < 4; ++i)
        b.instrs.push_back(op(low, "ADD_I"));
    auto p = sched::analyzePressure(b, low);
    EXPECT_EQ(p.resource_bound, 0);
}

TEST(Pressure, EmptyBlock)
{
    LowMdes low = sparc();
    auto p = sched::analyzePressure({}, low);
    EXPECT_EQ(p.resource_bound, 0);
    EXPECT_EQ(p.demand.size(), low.numResources());
}

TEST(Pressure, MatchesModuloResMii)
{
    LowMdes low = sparc();
    sched::ModuloScheduler ms(low);
    workload::WorkloadSpec spec = machines::superSparc().workload;
    spec.num_ops = 400;
    auto loops = workload::generateLoops(spec, low);
    for (const auto &body : loops.blocks) {
        auto p = sched::analyzePressure(body, low);
        EXPECT_EQ(std::max(p.resource_bound, 1), ms.resMii(body));
    }
}

TEST(Pressure, BoundNeverExceedsBusyMakespan)
{
    // Soundness on real machine workloads: resource_bound lower-bounds
    // the *busy makespan* - the issue span plus any multi-cycle unit
    // tail (bounded by the widest option's usage span).
    for (const auto *info : machines::all()) {
        SCOPED_TRACE(info->name);
        Mdes m = hmdes::compileOrThrow(info->source);
        runPipeline(m, PipelineConfig::all());
        int32_t span = maxUsageSpan(m);
        LowMdes low = LowMdes::lower(m, {});
        workload::WorkloadSpec spec = info->workload;
        spec.num_ops = 2000;
        auto program = workload::generate(spec, low);
        sched::ListScheduler scheduler(low);
        sched::SchedStats stats;
        for (const auto &block : program.blocks) {
            auto p = sched::analyzePressure(block, low);
            auto sched = scheduler.scheduleBlock(block, stats);
            EXPECT_LE(p.resource_bound, sched.length + span);
        }
    }
}

TEST(Pressure, BoundSoundOnRandomMachines)
{
    Rng rng(0x9E55);
    for (int trial = 0; trial < 20; ++trial) {
        Mdes base = mdes::testing::randomMdes(rng);
        int32_t span = maxUsageSpan(base);
        LowMdes low = LowMdes::lower(base, {});
        auto spec = mdes::testing::randomWorkloadSpec(
            base, 0x42 + uint64_t(trial), 200);
        auto program = workload::generate(spec, low);
        sched::ListScheduler scheduler(low);
        sched::SchedStats stats;
        for (const auto &block : program.blocks) {
            auto p = sched::analyzePressure(block, low);
            auto sched = scheduler.scheduleBlock(block, stats);
            ASSERT_LE(p.resource_bound, sched.length + span)
                << "trial " << trial;
        }
    }
}

TEST(Pressure, OversubscriptionPredicate)
{
    LowMdes low = sparc();
    sched::Block b;
    b.instrs.push_back(op(low, "LD"));
    b.instrs.push_back(op(low, "LD"));
    uint32_t ld = low.findOpClass("LD");
    // Two loads fit a 2-cycle budget; speculating two more does not.
    EXPECT_FALSE(sched::wouldOversubscribe(b, low, ld, 0, 2));
    EXPECT_TRUE(sched::wouldOversubscribe(b, low, ld, 2, 2));
    EXPECT_FALSE(sched::wouldOversubscribe(b, low, ld, 2, 4));
}

} // namespace
} // namespace mdes
