/**
 * @file
 * Persistent store tests: content addressing, atomic publish, tolerant
 * loading (corruption / truncation / mislabeling quarantines instead of
 * throwing), LRU eviction order, single-flight racing through the
 * two-tier cache, and the end-to-end guarantee that a corrupted on-disk
 * artifact costs a recompilation, never a failed request.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

#include "lmdes/image.h"
#include "random_mdes.h"
#include "service/cache.h"
#include "service/service.h"
#include "store/store.h"
#include "support/faultsim.h"
#include "support/rng.h"

namespace mdes {
namespace {

namespace fs = std::filesystem;

using lmdes::LowMdes;
using store::ArtifactStore;
using store::StoreConfig;

/** A fresh per-test store directory under the system temp dir. */
fs::path
freshDir(const std::string &name)
{
    fs::path dir = fs::temp_directory_path() /
                   ("mdes-test-store-" + std::to_string(::getpid()) + "-" +
                    name);
    fs::remove_all(dir);
    return dir;
}

/** A tiny distinct machine per @p salt so tests can mint distinct keys. */
Mdes
tinyMachine(int salt = 0)
{
    Mdes m("tiny" + std::to_string(salt));
    ResourceId r = m.addResourceClass("R", 2 + salt);
    OptionId o = m.addOption({{{0, r}, {1, r + 1}}});
    OrTreeId t = m.addOrTree({"T", {o}});
    TreeId tree = m.addTree({"Tbl", {t}});
    m.addOpClass({"OP", tree, 2, kInvalidId, "test"});
    return m;
}

/** Read a whole file into a string. */
std::string
slurp(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

/** FNV-1a64, matching the store's integrity trailer. */
uint64_t
storeFnv1a64(const char *data, size_t n)
{
    uint64_t h = 1469598103934665603ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= uint8_t(data[i]);
        h *= 1099511628211ull;
    }
    return h;
}

/** Rewrite @p path with @p data plus a freshly computed whole-file
 * trailer, so deliberate *format* patches are not mistaken for rot. */
void
resealArtifact(const fs::path &path, std::string data)
{
    ASSERT_GE(data.size(), 8u);
    uint64_t sum = storeFnv1a64(data.data(), data.size() - 8);
    std::memcpy(&data[data.size() - 8], &sum, sizeof(sum));
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), std::streamsize(data.size()));
}

/** Flip one byte of @p path at @p offset (from the end if negative). */
void
flipByte(const fs::path &path, int64_t offset)
{
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open()) << path;
    f.seekg(0, std::ios::end);
    int64_t size = f.tellg();
    int64_t at = offset >= 0 ? offset : size + offset;
    ASSERT_GE(at, 0);
    ASSERT_LT(at, size);
    f.seekg(at);
    char c = 0;
    f.read(&c, 1);
    c = char(uint8_t(c) ^ 0xA5);
    f.seekp(at);
    f.write(&c, 1);
}

TEST(StoreKey, StableAndInputSensitive)
{
    const std::string source = "fake hmdes source";
    uint64_t base =
        store::artifactKey(source, PipelineConfig::all(), true);
    EXPECT_EQ(base,
              store::artifactKey(source, PipelineConfig::all(), true));
    EXPECT_NE(base, store::artifactKey(source + " ",
                                       PipelineConfig::all(), true));
    EXPECT_NE(base,
              store::artifactKey(source, PipelineConfig::none(), true));
    EXPECT_NE(base,
              store::artifactKey(source, PipelineConfig::all(), false));
    EXPECT_NE(base, store::artifactKey(source, PipelineConfig::all(), true,
                                       exp::Rep::OrTree));

    PipelineConfig backward = PipelineConfig::all();
    backward.direction = SchedDirection::Backward;
    EXPECT_NE(base, store::artifactKey(source, backward, true));
}

TEST(Store, PublishIsAtomicAndRoundTrips)
{
    fs::path dir = freshDir("roundtrip");
    ArtifactStore s(StoreConfig{.dir = dir.string()});
    LowMdes low = LowMdes::lower(tinyMachine(), {});
    uint64_t key = 0x1234ABCDull;

    ASSERT_TRUE(s.store(key, low, 42));
    EXPECT_TRUE(fs::exists(dir / store::artifactFileName(key)));
    EXPECT_TRUE(fs::exists(dir / store::metaFileName(key)));
    // Nothing half-written may remain after a successful publish.
    for (const auto &entry : fs::directory_iterator(dir))
        EXPECT_EQ(entry.path().filename().string().find(".tmp-"),
                  std::string::npos)
            << entry.path();

    auto loaded = s.load(key);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(*loaded, low);

    auto infos = s.list();
    ASSERT_EQ(infos.size(), 1u);
    EXPECT_EQ(infos[0].key, key);
    EXPECT_EQ(infos[0].config_fingerprint, 42u);
    EXPECT_FALSE(infos[0].quarantined);

    store::StoreStats st = s.stats();
    EXPECT_EQ(st.stores, 1u);
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.corrupt, 0u);
    fs::remove_all(dir);
}

TEST(Store, OrphanedPublishTempsAreSweptAtOpenAndByPrune)
{
    // A publisher killed between temp-write and rename (kill -9 under
    // the supervision plane) leaves a ".tmp-*" orphan. The next open
    // must sweep it, count it, and leave real artifacts alone.
    fs::path dir = freshDir("residue");
    {
        ArtifactStore s(StoreConfig{.dir = dir.string()});
        LowMdes low = LowMdes::lower(tinyMachine(), {});
        ASSERT_TRUE(s.store(0xBEEF, low, 7));
    }
    std::ofstream(dir / ".tmp-123-abc") << "half-written artifact";
    std::ofstream(dir / ".tmp-456-def") << "another casualty";

    ArtifactStore s(StoreConfig{.dir = dir.string()});
    EXPECT_EQ(s.stats().residue_swept, 2u);
    for (const auto &entry : fs::directory_iterator(dir))
        EXPECT_EQ(entry.path().filename().string().find(".tmp-"),
                  std::string::npos)
            << entry.path();
    // The real artifact survived the sweep.
    EXPECT_NE(s.load(0xBEEF), nullptr);

    // prune() also sweeps residue that appeared while the store was
    // open (a sibling process crashing mid-publish into the same dir).
    std::ofstream(dir / ".tmp-789-ghi") << "late orphan";
    store::PruneResult pr = s.prune(UINT64_MAX);
    EXPECT_EQ(pr.residue_removed, 1u);
    EXPECT_EQ(pr.removed, 0u);
    EXPECT_EQ(s.stats().residue_swept, 3u);
    EXPECT_FALSE(fs::exists(dir / ".tmp-789-ghi"));
    fs::remove_all(dir);
}

TEST(Store, MissOnAbsentKey)
{
    fs::path dir = freshDir("miss");
    ArtifactStore s(StoreConfig{.dir = dir.string()});
    EXPECT_EQ(s.load(0xDEAD), nullptr);
    EXPECT_EQ(s.stats().misses, 1u);
    fs::remove_all(dir);
}

TEST(Store, CorruptArtifactIsQuarantinedThenReplaced)
{
    fs::path dir = freshDir("corrupt");
    ArtifactStore s(StoreConfig{.dir = dir.string()});
    LowMdes low = LowMdes::lower(tinyMachine(), {});
    uint64_t key = 7;
    ASSERT_TRUE(s.store(key, low, 0));

    flipByte(dir / store::artifactFileName(key), -10);
    EXPECT_EQ(s.load(key), nullptr);
    EXPECT_FALSE(fs::exists(dir / store::artifactFileName(key)));
    EXPECT_FALSE(fs::exists(dir / store::metaFileName(key)));
    EXPECT_TRUE(fs::exists(dir / store::quarantineFileName(key)));
    store::StoreStats st = s.stats();
    EXPECT_EQ(st.corrupt, 1u);
    EXPECT_EQ(st.misses, 1u);

    auto infos = s.list();
    ASSERT_EQ(infos.size(), 1u);
    EXPECT_TRUE(infos[0].quarantined);

    // Republishing heals the slot and clears the quarantine file.
    ASSERT_TRUE(s.store(key, low, 0));
    EXPECT_FALSE(fs::exists(dir / store::quarantineFileName(key)));
    auto loaded = s.load(key);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(*loaded, low);
    fs::remove_all(dir);
}

TEST(Store, TruncatedArtifactIsQuarantined)
{
    fs::path dir = freshDir("truncated");
    ArtifactStore s(StoreConfig{.dir = dir.string()});
    LowMdes low = LowMdes::lower(tinyMachine(), {});
    uint64_t key = 9;
    ASSERT_TRUE(s.store(key, low, 0));

    fs::path file = dir / store::artifactFileName(key);
    fs::resize_file(file, fs::file_size(file) / 2);
    EXPECT_EQ(s.load(key), nullptr);
    EXPECT_TRUE(fs::exists(dir / store::quarantineFileName(key)));
    EXPECT_EQ(s.stats().corrupt, 1u);
    fs::remove_all(dir);
}

TEST(Store, MislabeledArtifactIsQuarantined)
{
    // A file whose header names a different key (e.g. a bad copy) must
    // not be served under the name it sits at.
    fs::path dir = freshDir("mislabel");
    ArtifactStore s(StoreConfig{.dir = dir.string()});
    LowMdes low = LowMdes::lower(tinyMachine(), {});
    ASSERT_TRUE(s.store(11, low, 0));
    fs::copy_file(dir / store::artifactFileName(11),
                  dir / store::artifactFileName(12));
    EXPECT_EQ(s.load(12), nullptr);
    EXPECT_TRUE(fs::exists(dir / store::quarantineFileName(12)));
    // The honest slot still serves.
    EXPECT_NE(s.load(11), nullptr);
    fs::remove_all(dir);
}

TEST(Store, PruneEvictsLeastRecentlyAccessedFirst)
{
    fs::path dir = freshDir("prune");
    ArtifactStore s(StoreConfig{.dir = dir.string()});
    uint64_t total = 0;
    for (int i = 0; i < 3; ++i) {
        LowMdes low = LowMdes::lower(tinyMachine(i), {});
        ASSERT_TRUE(s.store(uint64_t(i + 1), low, 0));
        total += fs::file_size(dir / store::artifactFileName(i + 1));
    }
    // Pin the access order deterministically: key 2 oldest, then 3,
    // key 1 most recent.
    auto now = fs::file_time_type::clock::now();
    using std::chrono::hours;
    fs::last_write_time(dir / store::metaFileName(2), now - hours(48));
    fs::last_write_time(dir / store::metaFileName(3), now - hours(24));
    fs::last_write_time(dir / store::metaFileName(1), now);

    // Budget for two artifacts: exactly the oldest (key 2) must go.
    uint64_t one = fs::file_size(dir / store::artifactFileName(1));
    store::PruneResult pr = s.prune(total - one + 1);
    EXPECT_EQ(pr.removed, 1u);
    EXPECT_FALSE(fs::exists(dir / store::artifactFileName(2)));
    EXPECT_TRUE(fs::exists(dir / store::artifactFileName(3)));
    EXPECT_TRUE(fs::exists(dir / store::artifactFileName(1)));
    EXPECT_LE(pr.bytes_after, pr.bytes_before);
    EXPECT_EQ(s.stats().evictions, 1u);

    // A zero budget clears the store.
    pr = s.prune(0);
    EXPECT_EQ(pr.removed, 2u);
    EXPECT_EQ(pr.bytes_after, 0u);
    fs::remove_all(dir);
}

TEST(Store, PruneRemovesQuarantinedFiles)
{
    fs::path dir = freshDir("prune_bad");
    ArtifactStore s(StoreConfig{.dir = dir.string()});
    LowMdes low = LowMdes::lower(tinyMachine(), {});
    ASSERT_TRUE(s.store(1, low, 0));
    flipByte(dir / store::artifactFileName(1), -10);
    EXPECT_EQ(s.load(1), nullptr);
    ASSERT_TRUE(fs::exists(dir / store::quarantineFileName(1)));

    // Even an unbounded sweep drops quarantined files.
    s.prune(uint64_t(-1));
    EXPECT_FALSE(fs::exists(dir / store::quarantineFileName(1)));
    fs::remove_all(dir);
}

TEST(Store, QuarantineRacingPruneIsSafe)
{
    // Quarantine (corrupt loads renaming artifacts to .bad), republish,
    // and prune all race on one store. Nothing may crash, and once the
    // dust settles a pruned slot stays pruned - quarantine must never
    // resurrect an artifact.
    fs::path dir = freshDir("quarantine_race");
    ArtifactStore s(StoreConfig{.dir = dir.string()});
    constexpr uint64_t kKeys = 4;
    LowMdes low = LowMdes::lower(tinyMachine(), {});

    // Seed every slot and verify the quarantine accounting that `store
    // stat` reports: corrupt loads flag each artifact in list().
    faultsim::install(faultsim::Plan::parse("seed=21,store/corrupt-byte=1"));
    for (uint64_t key = 1; key <= kKeys; ++key)
        ASSERT_TRUE(s.store(key, low, 0));
    for (uint64_t key = 1; key <= kKeys; ++key)
        EXPECT_EQ(s.load(key), nullptr);
    uint64_t quarantined = 0;
    for (const auto &info : s.list())
        quarantined += info.quarantined;
    EXPECT_EQ(quarantined, kKeys);

    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    // Publishers keep healing slots, loaders keep quarantining them
    // (every read corrupts under the plan), the pruner keeps emptying
    // the directory out from under both.
    for (int t = 0; t < 2; ++t)
        threads.emplace_back([&] {
            while (!stop)
                for (uint64_t key = 1; key <= kKeys; ++key)
                    s.store(key, low, 0);
        });
    for (int t = 0; t < 2; ++t)
        threads.emplace_back([&] {
            while (!stop)
                for (uint64_t key = 1; key <= kKeys; ++key)
                    s.load(key);
        });
    threads.emplace_back([&] {
        while (!stop)
            s.prune(0);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    stop = true;
    for (auto &t : threads)
        t.join();
    faultsim::uninstall();

    // Final sweep: a pruned store stays empty (no resurrection), and
    // every slot reads as a clean miss.
    s.prune(0);
    EXPECT_TRUE(fs::is_empty(dir));
    for (uint64_t key = 1; key <= kKeys; ++key)
        EXPECT_EQ(s.load(key), nullptr);
    // The store still works after the storm.
    ASSERT_TRUE(s.store(1, low, 0));
    auto healed = s.load(1);
    ASSERT_NE(healed, nullptr);
    EXPECT_EQ(*healed, low);
    fs::remove_all(dir);
}

TEST(Store, SizeBudgetTriggersEvictionOnPublish)
{
    fs::path dir = freshDir("budget");
    LowMdes low = LowMdes::lower(tinyMachine(), {});
    // Measure one published artifact (container header + padding +
    // image + trailer); every key yields the same size, so a budget of
    // exactly one file means at most one survives each publish.
    uint64_t artifact_bytes = 0;
    {
        fs::path probe_dir = freshDir("budget_probe");
        ArtifactStore probe(StoreConfig{.dir = probe_dir.string()});
        ASSERT_TRUE(probe.store(1, low, 0));
        artifact_bytes =
            fs::file_size(probe_dir / store::artifactFileName(1));
        fs::remove_all(probe_dir);
    }
    ArtifactStore s(StoreConfig{.dir = dir.string(),
                                .max_bytes = artifact_bytes});
    for (uint64_t key = 1; key <= 4; ++key)
        ASSERT_TRUE(s.store(key, low, 0));
    uint64_t artifacts = 0;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().extension() == ".lmdes")
            ++artifacts;
    EXPECT_EQ(artifacts, 1u);
    EXPECT_GT(s.stats().evictions, 0u);
    fs::remove_all(dir);
}

TEST(Store, RandomMachinesRoundTripThroughDisk)
{
    fs::path dir = freshDir("random");
    ArtifactStore s(StoreConfig{.dir = dir.string()});
    Rng rng(0xBEEFull);
    for (uint64_t key = 1; key <= 8; ++key) {
        Mdes m = testing::randomMdes(rng);
        lmdes::LowerOptions opts;
        opts.pack_bit_vector = rng.chance(0.5);
        LowMdes low = LowMdes::lower(m, opts);
        ASSERT_TRUE(s.store(key, low, key));
        auto loaded = s.load(key);
        ASSERT_NE(loaded, nullptr);
        EXPECT_EQ(*loaded, low);
    }
    fs::remove_all(dir);
}

TEST(Store, MappedHitBorrowsTheFileAndSkipsDeserialization)
{
    // The tentpole contract: a warm load attaches the artifact in place
    // (mapped, zero full deserializations), it does not parse it.
    fs::path dir = freshDir("mapped");
    ArtifactStore s(StoreConfig{.dir = dir.string()});
    LowMdes low = LowMdes::lower(tinyMachine(), {});
    ASSERT_TRUE(s.store(5, low, 0));

    uint64_t before = lmdes::fullDeserializations();
    auto loaded = s.load(5);
    ASSERT_NE(loaded, nullptr);
    EXPECT_TRUE(loaded->mapped());
    EXPECT_EQ(lmdes::fullDeserializations(), before);
    EXPECT_EQ(*loaded, low);
    EXPECT_EQ(s.stats().mapped_hits, 1u);
    fs::remove_all(dir);
}

TEST(Store, StaleContainerVersionIsEvictedNotQuarantined)
{
    // Plant an artifact whose *container* claims an older store format:
    // healthy bytes from another release. The load must read as a plain
    // miss, silently drop the entry (no .bad residue, no corrupt
    // count), and let a republish heal the slot.
    fs::path dir = freshDir("stale_container");
    ArtifactStore s(StoreConfig{.dir = dir.string()});
    LowMdes low = LowMdes::lower(tinyMachine(), {});
    uint64_t key = 31;
    ASSERT_TRUE(s.store(key, low, 0));

    fs::path file = dir / store::artifactFileName(key);
    std::string data = slurp(file);
    uint32_t old_version = 2;
    std::memcpy(&data[4], &old_version, sizeof(old_version));
    resealArtifact(file, std::move(data));

    // list() can see the staleness before any load touches it.
    auto infos = s.list();
    ASSERT_EQ(infos.size(), 1u);
    EXPECT_TRUE(infos[0].stale);
    EXPECT_FALSE(infos[0].quarantined);

    EXPECT_EQ(s.load(key), nullptr);
    EXPECT_FALSE(fs::exists(file));
    EXPECT_FALSE(fs::exists(dir / store::metaFileName(key)));
    EXPECT_FALSE(fs::exists(dir / store::quarantineFileName(key)));
    store::StoreStats st = s.stats();
    EXPECT_EQ(st.stale_evicted, 1u);
    EXPECT_EQ(st.corrupt, 0u);
    EXPECT_EQ(st.misses, 1u);

    // The recompile-and-republish path starts from a clean slot.
    ASSERT_TRUE(s.store(key, low, 0));
    auto healed = s.load(key);
    ASSERT_NE(healed, nullptr);
    EXPECT_EQ(*healed, low);
    fs::remove_all(dir);
}

TEST(Store, StaleImageVersionIsEvictedNotQuarantined)
{
    // Same contract one layer down: the container is current but the
    // LMDES image inside speaks an older format version. Still "written
    // by another release", still a silent evict-and-recompile.
    fs::path dir = freshDir("stale_image");
    ArtifactStore s(StoreConfig{.dir = dir.string()});
    LowMdes low = LowMdes::lower(tinyMachine(), {});
    uint64_t key = 33;
    ASSERT_TRUE(s.store(key, low, 0));

    fs::path file = dir / store::artifactFileName(key);
    std::string data = slurp(file);
    size_t img_off = data.find("LMDS", 4);
    ASSERT_NE(img_off, std::string::npos);
    uint32_t old_version = 6;
    std::memcpy(&data[img_off + 4], &old_version, sizeof(old_version));
    resealArtifact(file, std::move(data));

    EXPECT_EQ(s.load(key), nullptr);
    EXPECT_FALSE(fs::exists(file));
    EXPECT_FALSE(fs::exists(dir / store::quarantineFileName(key)));
    store::StoreStats st = s.stats();
    EXPECT_EQ(st.stale_evicted, 1u);
    EXPECT_EQ(st.corrupt, 0u);
    fs::remove_all(dir);
}

TEST(Store, MidPageCorruptionQuarantines)
{
    // A flip in the middle of the image (not near the header or the
    // trailer) must still read as Corrupt: the trailer covers every
    // byte of the file.
    fs::path dir = freshDir("midpage");
    ArtifactStore s(StoreConfig{.dir = dir.string()});
    LowMdes low = LowMdes::lower(tinyMachine(), {});
    uint64_t key = 40;
    ASSERT_TRUE(s.store(key, low, 0));
    fs::path file = dir / store::artifactFileName(key);
    flipByte(file, int64_t(fs::file_size(file) / 2));

    EXPECT_EQ(s.load(key), nullptr);
    EXPECT_TRUE(fs::exists(dir / store::quarantineFileName(key)));
    store::StoreStats st = s.stats();
    EXPECT_EQ(st.corrupt, 1u);
    EXPECT_EQ(st.stale_evicted, 0u);
    fs::remove_all(dir);
}

TEST(Store, LiveMappingSurvivesPruneAndQuarantine)
{
    // The munmap-on-release contract: a held artifact stays valid after
    // the file underneath it is pruned, republished, corrupted, and
    // quarantined - the mapping pins the old inode.
    fs::path dir = freshDir("live_mapping");
    ArtifactStore s(StoreConfig{.dir = dir.string()});
    LowMdes low = LowMdes::lower(tinyMachine(), {});
    uint64_t key = 50;
    ASSERT_TRUE(s.store(key, low, 0));

    auto held = s.load(key);
    ASSERT_NE(held, nullptr);
    ASSERT_TRUE(held->mapped());

    // Prune everything out from under the mapping.
    s.prune(0);
    EXPECT_FALSE(fs::exists(dir / store::artifactFileName(key)));
    EXPECT_EQ(*held, low);

    // Republish, corrupt, quarantine - the held view never wobbles.
    ASSERT_TRUE(s.store(key, low, 0));
    auto second = s.load(key);
    ASSERT_NE(second, nullptr);
    flipByte(dir / store::artifactFileName(key), -10);
    EXPECT_EQ(s.load(key), nullptr);
    EXPECT_TRUE(fs::exists(dir / store::quarantineFileName(key)));
    EXPECT_EQ(*held, low);
    EXPECT_EQ(*second, low);

    // Releasing the views (munmap) after all that must be clean too.
    held.reset();
    second.reset();
    fs::remove_all(dir);
}

/** Order-sensitive FNV over every POD pool of @p low, so two processes
 * can compare the bytes they are actually scheduling from. */
uint64_t
podFingerprint(const lmdes::LowMdes &low)
{
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](const void *p, size_t n) {
        const auto *b = static_cast<const unsigned char *>(p);
        for (size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= 1099511628211ull;
        }
    };
    auto span = [&mix](auto s) { mix(s.data(), s.size_bytes()); };
    span(low.checks());
    span(low.options());
    span(low.optionRefs());
    span(low.orTrees());
    span(low.orRefs());
    span(low.trees());
    span(low.treeSummaries());
    span(low.prefilter());
    span(low.bypasses());
    return h;
}

TEST(Store, ForkedProcessesServeBitIdenticalArtifacts)
{
    // N sharded `mdesc serve` processes are modeled by a fork: parent
    // and child each open the store and map the same artifact; the
    // bytes they serve must be bit-identical (one physical copy in the
    // page cache, not N deserialized replicas).
    fs::path dir = freshDir("forked");
    LowMdes low = LowMdes::lower(tinyMachine(), {});
    uint64_t key = 60;
    {
        ArtifactStore publisher(StoreConfig{.dir = dir.string()});
        ASSERT_TRUE(publisher.store(key, low, 0));
    }

    int pipefd[2];
    ASSERT_EQ(::pipe(pipefd), 0);
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: its own store handle, its own mapping, its own
        // fingerprint back through the pipe. _exit keeps gtest and
        // stdio state out of the forked copy.
        ::close(pipefd[0]);
        uint64_t fp = 0;
        try {
            ArtifactStore child(StoreConfig{.dir = dir.string()});
            auto loaded = child.load(key);
            if (loaded && loaded->mapped())
                fp = podFingerprint(*loaded);
        } catch (...) {
        }
        ssize_t n = ::write(pipefd[1], &fp, sizeof(fp));
        ::close(pipefd[1]);
        ::_exit(n == sizeof(fp) ? 0 : 1);
    }
    ::close(pipefd[1]);
    uint64_t child_fp = 0;
    ASSERT_EQ(::read(pipefd[0], &child_fp, sizeof(child_fp)),
              ssize_t(sizeof(child_fp)));
    ::close(pipefd[0]);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

    ArtifactStore parent(StoreConfig{.dir = dir.string()});
    auto loaded = parent.load(key);
    ASSERT_NE(loaded, nullptr);
    ASSERT_TRUE(loaded->mapped());
    EXPECT_NE(child_fp, 0u);
    EXPECT_EQ(podFingerprint(*loaded), child_fp);
    EXPECT_EQ(podFingerprint(low), child_fp);
    fs::remove_all(dir);
}

TEST(TwoTierCache, RacingThreadsCompileOnceAndPublishOnce)
{
    fs::path dir = freshDir("race");
    auto disk = std::make_shared<ArtifactStore>(
        StoreConfig{.dir = dir.string()});
    service::DescriptionCache cache(8);
    cache.attachStore(disk);

    const uint64_t key = 77;
    std::atomic<int> compiled{0};
    auto compile = [&]() -> service::CompileResult {
        ++compiled;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return {std::make_shared<const LowMdes>(
                    LowMdes::lower(tinyMachine(), {})),
                false};
    };

    std::vector<std::thread> threads;
    std::vector<service::CompiledMdes> results(8);
    for (size_t i = 0; i < results.size(); ++i)
        threads.emplace_back(
            [&, i] { results[i] = cache.getOrCompile(key, compile); });
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(compiled.load(), 1);
    for (const auto &r : results) {
        ASSERT_NE(r, nullptr);
        EXPECT_EQ(r, results[0]); // one shared artifact, not copies
    }
    EXPECT_EQ(disk->stats().stores, 1u);
    EXPECT_TRUE(fs::exists(dir / store::artifactFileName(key)));

    // A later process (fresh memory tier, same store) never compiles.
    service::DescriptionCache restarted(8);
    restarted.attachStore(disk);
    service::DescriptionCache::Lookup lookup;
    auto again = restarted.getOrCompile(key, compile, &lookup);
    ASSERT_NE(again, nullptr);
    EXPECT_EQ(compiled.load(), 1);
    EXPECT_FALSE(lookup.hit);
    EXPECT_TRUE(lookup.disk);
    EXPECT_EQ(*again, *results[0]);
    fs::remove_all(dir);
}

TEST(TwoTierCache, CorruptStoredArtifactMeansRecompileNotFailure)
{
    // The acceptance guarantee: corrupting a stored artifact yields a
    // recompilation, never a caller-visible error.
    fs::path dir = freshDir("service_corrupt");
    service::ScheduleRequest req;
    req.machine = "K5";
    req.synth_ops = 200;

    {
        service::MdesService svc({.num_workers = 2,
                                  .store_dir = dir.string()});
        auto responses = svc.runBatch({req});
        ASSERT_TRUE(responses[0].ok()) << responses[0].error.message;
    }
    // Exactly one artifact was published; rot it.
    uint64_t artifacts = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() != ".lmdes")
            continue;
        ++artifacts;
        flipByte(entry.path(), -10);
    }
    ASSERT_EQ(artifacts, 1u);

    service::MdesService svc({.num_workers = 2,
                              .store_dir = dir.string()});
    auto responses = svc.runBatch({req});
    ASSERT_TRUE(responses[0].ok()) << responses[0].error.message;
    EXPECT_FALSE(responses[0].disk_hit);

    service::DescriptionCache::Stats cs = svc.cache().stats();
    EXPECT_EQ(cs.compiles, 1u);
    EXPECT_EQ(cs.disk_hits, 0u);
    EXPECT_EQ(cs.disk_corrupt, 1u);
    // The recompiled artifact was republished and now serves restarts.
    service::MdesService healed({.num_workers = 2,
                                 .store_dir = dir.string()});
    auto after = healed.runBatch({req});
    ASSERT_TRUE(after[0].ok());
    EXPECT_TRUE(after[0].disk_hit);
    EXPECT_EQ(healed.cache().stats().compiles, 0u);
    fs::remove_all(dir);
}

} // namespace
} // namespace mdes
