/**
 * @file
 * Wide-machine tests: descriptions with more than 64 resource instances
 * (several RU-map words per cycle) must lower, check, schedule,
 * transform, and serialize exactly like narrow ones. A clustered-VLIW
 * style machine with 96 instances exercises the multi-word slot path
 * end to end, including an equivalence check against a logically
 * identical narrow machine.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/transforms.h"
#include "hmdes/compile.h"
#include "lmdes/low_mdes.h"
#include "rumap/checker.h"
#include "sched/list_scheduler.h"
#include "sched/modulo_scheduler.h"
#include "sched/verify.h"
#include "workload/workload.h"

namespace mdes {
namespace {

using lmdes::LowMdes;

/**
 * A 12-cluster VLIW: each cluster has 4 slots, 2 ALUs, and 2 regfile
 * ports = 96 instances. Pad[n] makes a narrow twin when n is small.
 */
std::string
wideSource(int clusters)
{
    std::ostringstream os;
    os << "machine \"wide\" {\n";
    os << "  resource Slot[" << clusters * 4 << "];\n";
    os << "  resource ALU[" << clusters * 2 << "];\n";
    os << "  resource Port[" << clusters * 2 << "];\n";
    // Cluster 0's trees only, so narrow and wide twins behave alike.
    os << R"(
  ortree Slot0 { for s in 0 .. 3 { option { use Slot[s] at -1; } } }
  ortree Alu0 { for a in 0 .. 1 { option { use ALU[a] at 0; } } }
  ortree Port0 { for p in 0 .. 1 { option { use Port[p] at 1; } } }
  table T = and(Alu0, Port0, Slot0);
  operation ADD { table T; latency 1; }
  operation MUL { table T; latency 3; }
}
)";
    return os.str();
}

TEST(Wide, SlotWordsScaleWithResources)
{
    Mdes narrow = hmdes::compileOrThrow(wideSource(1));
    Mdes wide = hmdes::compileOrThrow(wideSource(12));
    EXPECT_EQ(LowMdes::lower(narrow, {}).slotWords(), 1u);
    EXPECT_EQ(LowMdes::lower(wide, {}).slotWords(), 2u);
}

TEST(Wide, CheckerMatchesNarrowTwin)
{
    // Cluster-0 behavior must be identical whether the machine declares
    // 8 or 96 instances.
    for (bool bv : {false, true}) {
        SCOPED_TRACE(bv ? "bit-vector" : "scalar");
        lmdes::LowerOptions opts;
        opts.pack_bit_vector = bv;
        LowMdes narrow =
            LowMdes::lower(hmdes::compileOrThrow(wideSource(1)), opts);
        LowMdes wide =
            LowMdes::lower(hmdes::compileOrThrow(wideSource(12)), opts);

        rumap::Checker cn(narrow), cw(wide);
        rumap::RuMap rn, rw;
        rumap::CheckStats sn, sw;
        uint32_t tree_n = narrow.opClasses()[0].tree;
        uint32_t tree_w = wide.opClasses()[0].tree;
        // Saturate cycle 0: placements must succeed/fail in lockstep.
        for (int i = 0; i < 6; ++i) {
            EXPECT_EQ(cn.tryReserve(tree_n, 0, rn, sn),
                      cw.tryReserve(tree_w, 0, rw, sw))
                << "placement " << i;
        }
        EXPECT_EQ(sn.options_checked, sw.options_checked);
    }
}

TEST(Wide, SchedulesLegallyThroughFullPipeline)
{
    Mdes m = hmdes::compileOrThrow(wideSource(12));
    runPipeline(m, PipelineConfig::all());
    lmdes::LowerOptions opts;
    opts.pack_bit_vector = true;
    LowMdes low = LowMdes::lower(m, opts);
    EXPECT_EQ(low.slotWords(), 2u);

    workload::WorkloadSpec spec;
    spec.seed = 77;
    spec.num_ops = 2000;
    spec.num_regs = 24;
    spec.min_block_size = 4;
    spec.max_block_size = 10;
    spec.classes = {{"ADD", 3.0, 2, 1, false, false},
                    {"MUL", 1.0, 2, 1, false, false}};
    sched::Program program = workload::generate(spec, low);

    sched::ListScheduler scheduler(low);
    sched::SchedStats stats;
    auto schedules = scheduler.scheduleProgram(program, stats);
    for (size_t b = 0; b < program.blocks.size(); ++b) {
        ASSERT_EQ(sched::verifySchedule(program.blocks[b], schedules[b],
                                        low),
                  "")
            << "block " << b;
    }
    // Cluster 0 has 2 ALUs: at most 2 ops per cycle.
    EXPECT_GE(stats.avgAttemptsPerOp(), 1.0);
}

TEST(Wide, ModuloSchedulingWorks)
{
    Mdes m = hmdes::compileOrThrow(wideSource(12));
    runPipeline(m, PipelineConfig::all());
    LowMdes low = LowMdes::lower(m, {});

    sched::Block body;
    for (int i = 0; i < 4; ++i) {
        sched::Instr in;
        in.op_class = low.findOpClass("ADD");
        in.srcs = {10 + i};
        in.dsts = {20 + i};
        body.instrs.push_back(in);
    }
    sched::ModuloScheduler ms(low);
    sched::SchedStats stats;
    auto sched = ms.schedule(body, stats);
    ASSERT_TRUE(sched.success);
    EXPECT_EQ(sched.ii, 2); // 4 ops, 2 cluster-0 ALUs
    auto graph = sched::LoopDepGraph::build(body, low);
    EXPECT_EQ(sched::verifyModuloSchedule(body, graph, sched), "");
}

TEST(Wide, SerializationRoundTrips)
{
    Mdes m = hmdes::compileOrThrow(wideSource(12));
    lmdes::LowerOptions opts;
    opts.pack_bit_vector = true;
    LowMdes low = LowMdes::lower(m, opts);
    std::stringstream buf;
    low.save(buf);
    LowMdes loaded = LowMdes::load(buf);
    EXPECT_EQ(loaded, low);
    EXPECT_EQ(loaded.slotWords(), 2u);
}

} // namespace
} // namespace mdes
