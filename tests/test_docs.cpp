/**
 * @file
 * Documentation/asset sync tests: the complete example in
 * docs/LANGUAGE.md must actually compile (warning-free), and the
 * on-disk description and .sasm assets under descriptions/ must stay
 * valid as the language evolves.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/transforms.h"
#include "hmdes/compile.h"
#include "lmdes/low_mdes.h"
#include "machines/machines.h"
#include "workload/sasm.h"

#ifndef MDES_SOURCE_DIR
#define MDES_SOURCE_DIR "."
#endif

namespace mdes {
namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** The first fenced ```text block of a markdown file. */
std::string
firstFencedBlock(const std::string &markdown)
{
    size_t open = markdown.find("```text\n");
    EXPECT_NE(open, std::string::npos);
    open += 8;
    size_t close = markdown.find("```", open);
    EXPECT_NE(close, std::string::npos);
    return markdown.substr(open, close - open);
}

TEST(Docs, LanguageReferenceExampleCompiles)
{
    std::string md =
        readFile(std::string(MDES_SOURCE_DIR) + "/docs/LANGUAGE.md");
    std::string example = firstFencedBlock(md);
    ASSERT_NE(example.find("machine \"Blackbird-VLIW\""),
              std::string::npos)
        << "the first fenced block is expected to be the full example";

    DiagnosticEngine diags;
    auto m = hmdes::compile(example, diags);
    ASSERT_TRUE(m.has_value()) << diags.toString();
    EXPECT_TRUE(diags.diagnostics().empty()) << diags.toString();
    EXPECT_EQ(m->validate(), "");
    EXPECT_EQ(m->bypasses().size(), 1u);
    // The doc's claims about the example hold.
    EXPECT_EQ(m->expandedOptionCount(m->opClass(m->findOpClass("MUL_A"))
                                         .tree),
              4u);
}

TEST(Docs, ShippedDescriptionCompilesWarningFree)
{
    std::string src = readFile(std::string(MDES_SOURCE_DIR) +
                               "/descriptions/blackbird_vliw.hmdes");
    DiagnosticEngine diags;
    auto m = hmdes::compile(src, diags);
    ASSERT_TRUE(m.has_value()) << diags.toString();
    EXPECT_TRUE(diags.diagnostics().empty()) << diags.toString();
    runPipeline(*m, PipelineConfig::all());
    EXPECT_EQ(m->validate(), "");
}

TEST(Docs, ShippedSasmStreamParsesForSuperSparc)
{
    std::string text = readFile(std::string(MDES_SOURCE_DIR) +
                                "/descriptions/dotproduct.sasm");
    Mdes m = hmdes::compileOrThrow(machines::superSparc().source);
    lmdes::LowMdes low = lmdes::LowMdes::lower(m, {});
    DiagnosticEngine diags;
    auto program = workload::parseSasm(text, low, diags);
    EXPECT_FALSE(diags.hasErrors()) << diags.toString();
    EXPECT_GE(program.blocks.size(), 2u);
    EXPECT_GE(program.numOps(), 10u);
}

} // namespace
} // namespace mdes
