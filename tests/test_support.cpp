/**
 * @file
 * Unit tests for the support library: bit vectors, deterministic RNG,
 * histograms, text tables, diagnostics, EINTR-safe I/O wrappers.
 */

#include <pthread.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "support/bit_vector.h"
#include "support/diagnostics.h"
#include "support/histogram.h"
#include "support/io_retry.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/text_table.h"

namespace mdes {
namespace {

// ---------------------------------------------------------------- BitVector

TEST(BitVector, StartsEmpty)
{
    BitVector v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_TRUE(v.none());
    EXPECT_FALSE(v.any());
    EXPECT_EQ(v.count(), 0u);
}

TEST(BitVector, SetResetTest)
{
    BitVector v(130);
    v.set(0);
    v.set(64);
    v.set(129);
    EXPECT_TRUE(v.test(0));
    EXPECT_TRUE(v.test(64));
    EXPECT_TRUE(v.test(129));
    EXPECT_FALSE(v.test(1));
    EXPECT_EQ(v.count(), 3u);
    v.reset(64);
    EXPECT_FALSE(v.test(64));
    EXPECT_EQ(v.count(), 2u);
}

TEST(BitVector, ClearRemovesEverything)
{
    BitVector v(70);
    for (size_t i = 0; i < 70; i += 7)
        v.set(i);
    v.clear();
    EXPECT_TRUE(v.none());
}

TEST(BitVector, IntersectsDetectsSharedBits)
{
    BitVector a(100), b(100);
    a.set(3);
    a.set(77);
    b.set(50);
    EXPECT_FALSE(a.intersects(b));
    b.set(77);
    EXPECT_TRUE(a.intersects(b));
}

TEST(BitVector, UnionAndIntersection)
{
    BitVector a(100), b(100);
    a.set(1);
    a.set(65);
    b.set(65);
    b.set(99);
    BitVector u = a;
    u |= b;
    EXPECT_TRUE(u.test(1));
    EXPECT_TRUE(u.test(65));
    EXPECT_TRUE(u.test(99));
    BitVector i = a;
    i &= b;
    EXPECT_FALSE(i.test(1));
    EXPECT_TRUE(i.test(65));
    EXPECT_FALSE(i.test(99));
}

TEST(BitVector, ResizePreservesAndClearsTail)
{
    BitVector v(10);
    v.set(9);
    v.resize(70);
    EXPECT_TRUE(v.test(9));
    EXPECT_FALSE(v.test(69));
    v.set(69);
    v.resize(65);
    v.resize(70);
    // Bit 69 was truncated away; shrinking must clear it.
    EXPECT_FALSE(v.test(69));
    EXPECT_TRUE(v.test(9));
}

TEST(BitVector, EqualityAndToString)
{
    BitVector a(4), b(4);
    a.set(1);
    b.set(1);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.toString(), "0100");
    b.set(3);
    EXPECT_NE(a, b);
}

// --------------------------------------------------------------------- Rng

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    std::set<uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        uint64_t v = rng.below(13);
        ASSERT_LT(v, 13u);
        seen.insert(v);
    }
    // All 13 values should appear in 2000 draws.
    EXPECT_EQ(seen.size(), 13u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool lo = false, hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        lo |= v == -3;
        hi |= v == 3;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = rng.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, PickWeightedRespectsWeights)
{
    Rng rng(13);
    std::vector<double> weights = {1.0, 0.0, 3.0};
    size_t counts[3] = {0, 0, 0};
    for (int i = 0; i < 8000; ++i)
        ++counts[rng.pickWeighted(weights)];
    EXPECT_EQ(counts[1], 0u);
    EXPECT_NEAR(double(counts[2]) / double(counts[0]), 3.0, 0.4);
}

// --------------------------------------------------------------- Histogram

TEST(Histogram, CountsAndFractions)
{
    Histogram h;
    h.add(1);
    h.add(1);
    h.add(4);
    h.add(0);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.countAt(1), 2u);
    EXPECT_EQ(h.countAt(7), 0u);
    EXPECT_DOUBLE_EQ(h.fractionAt(1), 0.5);
    EXPECT_DOUBLE_EQ(h.fractionBetween(1, 4), 0.75);
    EXPECT_EQ(h.maxValue(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), 1.5);
}

TEST(Histogram, MergeCombines)
{
    Histogram a, b;
    a.add(2);
    b.add(2);
    b.add(5);
    a.merge(b);
    EXPECT_EQ(a.total(), 3u);
    EXPECT_EQ(a.countAt(2), 2u);
    EXPECT_EQ(a.countAt(5), 1u);
}

TEST(Histogram, MergeMatchesDirectRecording)
{
    // Per-worker histograms merged at drain time must equal one
    // histogram that saw every sample (the service-metrics use case).
    Histogram direct, a, b, c;
    for (uint64_t v : {0u, 1u, 1u, 3u, 8u, 8u, 8u, 2u})
        direct.add(v);
    for (uint64_t v : {0u, 1u, 8u})
        a.add(v);
    for (uint64_t v : {1u, 3u, 8u})
        b.add(v);
    for (uint64_t v : {8u, 2u})
        c.add(v);
    a.merge(b);
    a.merge(c);
    EXPECT_EQ(a.total(), direct.total());
    EXPECT_EQ(a.maxValue(), direct.maxValue());
    EXPECT_DOUBLE_EQ(a.mean(), direct.mean());
    for (uint64_t v = 0; v <= direct.maxValue(); ++v)
        EXPECT_EQ(a.countAt(v), direct.countAt(v)) << "value " << v;
}

TEST(Histogram, MergeWithEmptyIsIdentity)
{
    Histogram h, empty;
    h.add(2);
    h.add(5);
    h.merge(empty);
    EXPECT_EQ(h.total(), 2u);
    EXPECT_DOUBLE_EQ(h.mean(), 3.5);

    empty.merge(h);
    EXPECT_EQ(empty.total(), 2u);
    EXPECT_EQ(empty.countAt(5), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 3.5);
}

TEST(Histogram, EmptyBehaves)
{
    Histogram h;
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.maxValue(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionAt(3), 0.0);
    EXPECT_NE(h.render(), "");
}

TEST(Histogram, RenderShowsBars)
{
    Histogram h;
    for (int i = 0; i < 10; ++i)
        h.add(1);
    h.add(3);
    std::string out = h.render(20);
    EXPECT_NE(out.find("90.91%"), std::string::npos); // 10 of 11 samples
    EXPECT_NE(out.find("####################"), std::string::npos);
    // Zero-count rows (value 0 and 2) are skipped.
    EXPECT_EQ(out.find(" 0.00%"), std::string::npos);
}

// -------------------------------------------------------------------- JSON

TEST(Json, EscapesSpecialCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(jsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
    EXPECT_EQ(jsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Json, WritesNestedDocument)
{
    JsonWriter w;
    w.beginObject();
    w.key("name").value("pentium");
    w.key("requests").value(uint64_t(42));
    w.key("hit_rate").value(0.5);
    w.key("ok").value(true);
    w.key("buckets").beginArray();
    w.value(uint64_t(1)).value(uint64_t(2)).value(uint64_t(3));
    w.endArray();
    w.key("nested").beginObject();
    w.key("empty").beginArray().endArray();
    w.endObject();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"name\":\"pentium\",\"requests\":42,\"hit_rate\":0.5,"
              "\"ok\":true,\"buckets\":[1,2,3],"
              "\"nested\":{\"empty\":[]}}");
}

TEST(Json, NonFiniteDoublesBecomeNull)
{
    JsonWriter w;
    w.beginArray();
    w.value(1.0 / 0.0).value(0.25);
    w.endArray();
    EXPECT_EQ(w.str(), "[null,0.25]");
}

// --------------------------------------------------------------- TextTable

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t;
    t.setHeader({"Name", "Count"});
    t.addRow({"alpha", "10"});
    t.addRow({"b", "2000"});
    std::string out = t.toString();
    EXPECT_NE(out.find("| Name"), std::string::npos);
    EXPECT_NE(out.find("2000"), std::string::npos);
    // All lines equally wide.
    size_t width = out.find('\n');
    size_t pos = 0;
    while (pos < out.size()) {
        size_t next = out.find('\n', pos);
        EXPECT_EQ(next - pos, width);
        pos = next + 1;
    }
}

TEST(TextTable, Formatters)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::percent(0.845, 1), "84.5%");
    EXPECT_EQ(TextTable::bytes(312640), "312640");
}

TEST(TextTable, SeparatorRows)
{
    TextTable t;
    t.setHeader({"A"});
    t.addRow({"x"});
    t.addSeparator();
    t.addRow({"y"});
    std::string out = t.toString();
    // header sep + top + mid + bottom = 4 separator lines.
    size_t count = 0, pos = 0;
    while ((pos = out.find("+-", pos)) != std::string::npos) {
        ++count;
        pos += 2;
    }
    EXPECT_EQ(count, 4u);
}

// ------------------------------------------------------------- Diagnostics

TEST(Diagnostics, CollectsAndRenders)
{
    DiagnosticEngine diags;
    EXPECT_FALSE(diags.hasErrors());
    diags.warning({1, 2}, "watch out");
    EXPECT_FALSE(diags.hasErrors());
    diags.error({3, 4}, "boom");
    EXPECT_TRUE(diags.hasErrors());
    ASSERT_EQ(diags.diagnostics().size(), 2u);
    EXPECT_EQ(diags.diagnostics()[1].toString(), "3:4: error: boom");
    EXPECT_NE(diags.toString().find("warning: watch out"),
              std::string::npos);
}

// ----------------------------------------------------------------- io_retry

TEST(IoRetry, ReadWriteRoundTripOverAPipe)
{
    int p[2];
    ASSERT_EQ(pipe(p), 0);
    const char msg[] = "supervision plane";
    ASSERT_EQ(io::writeRetry(p[1], msg, sizeof(msg)),
              ssize_t(sizeof(msg)));
    char buf[64] = {};
    ASSERT_EQ(io::readRetry(p[0], buf, sizeof(buf)),
              ssize_t(sizeof(msg)));
    EXPECT_STREQ(buf, msg);
    close(p[0]);
    close(p[1]);
}

TEST(IoRetry, SendRetryToClosedPeerIsEpipeNotSigpipe)
{
    // sendRetry must OR in MSG_NOSIGNAL: writing to a peer that already
    // closed has to come back as -1/EPIPE. Without the flag the kernel
    // raises SIGPIPE and this whole test binary dies here.
    int sv[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    close(sv[1]);
    char byte = 'x';
    // First send may land in the (now orphaned) buffer; the second is
    // guaranteed to see the broken pipe.
    io::sendRetry(sv[0], &byte, 1);
    ssize_t n = io::sendRetry(sv[0], &byte, 1);
    EXPECT_EQ(n, -1);
    EXPECT_EQ(errno, EPIPE);
    close(sv[0]);
}

TEST(IoRetry, RetryIntrRerunsUntilNotEintr)
{
    int calls = 0;
    long r = io::retryIntr([&]() -> long {
        if (++calls < 3) {
            errno = EINTR;
            return -1;
        }
        return 42;
    });
    EXPECT_EQ(r, 42);
    EXPECT_EQ(calls, 3);

    // A non-EINTR failure is returned immediately, errno intact.
    calls = 0;
    r = io::retryIntr([&]() -> long {
        ++calls;
        errno = ECONNRESET;
        return -1;
    });
    EXPECT_EQ(r, -1);
    EXPECT_EQ(errno, ECONNRESET);
    EXPECT_EQ(calls, 1);
}

namespace {
void ignoreSigusr1(int) {}
} // namespace

TEST(IoRetry, ReadRetrySurvivesARealSignalInterruption)
{
    // Install a no-SA_RESTART handler so the blocking read genuinely
    // returns -1/EINTR, then prove readRetry hides the interruption.
    struct sigaction sa = {};
    struct sigaction old = {};
    sa.sa_handler = ignoreSigusr1;
    ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

    int p[2];
    ASSERT_EQ(pipe(p), 0);
    std::atomic<bool> reading{false};
    pthread_t self = pthread_self();
    std::thread interrupter([&] {
        while (!reading.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        for (int i = 0; i < 5; ++i) {
            pthread_kill(self, SIGUSR1);
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        const char msg[] = "finally";
        io::writeRetry(p[1], msg, sizeof(msg));
    });

    char buf[32] = {};
    reading.store(true);
    ssize_t n = io::readRetry(p[0], buf, sizeof(buf));
    interrupter.join();
    EXPECT_EQ(n, ssize_t(sizeof("finally")));
    EXPECT_STREQ(buf, "finally");
    close(p[0]);
    close(p[1]);
    sigaction(SIGUSR1, &old, nullptr);
}

TEST(IoRetry, EpollWaitRetryHonoursItsTimeout)
{
    int ep = epoll_create1(0);
    ASSERT_GE(ep, 0);
    epoll_event ev;
    auto t0 = std::chrono::steady_clock::now();
    int n = io::epollWaitRetry(ep, &ev, 1, 60);
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    EXPECT_EQ(n, 0);
    EXPECT_GE(ms, 50);
    EXPECT_LT(ms, 2000);
    close(ep);
}

} // namespace
} // namespace mdes
