/**
 * @file
 * Eichenberger/Davidson-style usage minimization tests: collision
 * vectors are preserved exactly, redundant usages disappear,
 * load-bearing usages survive, and - the key soundness property -
 * schedules are bit-identical before and after minimization, on the
 * shipped machines and on randomly generated ones.
 */

#include <gtest/gtest.h>

#include "core/collision.h"
#include "core/expand.h"
#include "core/minimize.h"
#include "core/transforms.h"
#include "hmdes/compile.h"
#include "lmdes/low_mdes.h"
#include "machines/machines.h"
#include "random_mdes.h"
#include "sched/list_scheduler.h"
#include "workload/workload.h"

namespace mdes {
namespace {

TEST(Minimize, RemovesShadowedUsage)
{
    // Two resources used in lock-step: either one alone forbids exactly
    // the same latencies, so one of the pair can go.
    Mdes m("shadow");
    ResourceId a = m.addResourceClass("A", 1);
    ResourceId b = m.addResourceClass("B", 1);
    OptionId o = m.addOption({{{0, a}, {0, b}, {1, a}, {1, b}}});
    OrTreeId t = m.addOrTree({"T", {o}});
    TreeId tree = m.addTree({"Tbl", {t}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    EXPECT_EQ(minimizeUsages(m), 2u);
    EXPECT_EQ(m.option(o).usages.size(), 2u);
    EXPECT_EQ(m.validate(), "");
}

TEST(Minimize, KeepsLoadBearingUsages)
{
    // One resource used at two distinct times: the self collision
    // vector {0, 2} needs both usages (each forbidden latency has only
    // one witness pair).
    Mdes m("tight");
    ResourceId a = m.addResourceClass("A", 1);
    OptionId o = m.addOption({{{0, a}, {2, a}}});
    OrTreeId t = m.addOrTree({"T", {o}});
    TreeId tree = m.addTree({"Tbl", {t}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    EXPECT_EQ(minimizeUsages(m), 0u);
    EXPECT_EQ(m.option(o).usages.size(), 2u);
}

TEST(Minimize, LockStepResourcesCollapse)
{
    // The Eichenberger/Davidson insight: a resource whose usages track
    // another's in lock-step adds no forbidden latency of its own, so
    // one copy suffices - here B@2 and even A@0 fold into the self
    // collision vector {0} that any single usage provides.
    Mdes m("fold");
    ResourceId a = m.addResourceClass("A", 1);
    ResourceId b = m.addResourceClass("B", 1);
    OptionId o = m.addOption({{{0, a}, {2, b}}});
    OrTreeId t = m.addOrTree({"T", {o}});
    TreeId tree = m.addTree({"Tbl", {t}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    EXPECT_EQ(minimizeUsages(m), 1u);
    EXPECT_EQ(m.option(o).usages.size(), 1u);
}

TEST(Minimize, NeverEmptiesAnOption)
{
    Mdes m("single");
    ResourceId a = m.addResourceClass("A", 1);
    OptionId o = m.addOption({{{0, a}}});
    OrTreeId t = m.addOrTree({"T", {o}});
    TreeId tree = m.addTree({"Tbl", {t}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    minimizeUsages(m);
    EXPECT_GE(m.option(o).usages.size(), 1u);
    EXPECT_EQ(m.validate(), "");
}

TEST(Minimize, CrossOptionInteractionBlocksRemoval)
{
    // Option X uses A at 0 and 1; option Y uses A at 1 only. X's usage
    // at 1 is shadowed within (X, X) but still needed for CV(X, Y) and
    // CV(Y, X) latency 0... verify minimization accounts for Y.
    Mdes m("cross");
    ResourceId a = m.addResourceClass("A", 1);
    ResourceId b = m.addResourceClass("B", 1);
    // X: A@0, A@1, B@0(B makes self-CV of A@1 non-trivially covered?).
    OptionId x = m.addOption({{{0, a}, {1, a}}});
    OptionId y = m.addOption({{{1, b}}});
    OrTreeId tx = m.addOrTree({"X", {x}});
    OrTreeId ty = m.addOrTree({"Y", {y}});
    m.addOpClass({"OPX", m.addTree({"TX", {tx}}), 1, kInvalidId, ""});
    m.addOpClass({"OPY", m.addTree({"TY", {ty}}), 1, kInvalidId, ""});

    Mdes before = m;
    minimizeUsages(m);
    // Whatever was removed, every pairwise collision vector must match.
    int32_t bound = std::max(maxUsageSpan(before), 4);
    for (OptionId p = 0; p < before.options().size(); ++p) {
        for (OptionId q = 0; q < before.options().size(); ++q) {
            EXPECT_EQ(collisionVector(before, p, q, bound),
                      collisionVector(m, p, q, bound));
        }
    }
}

TEST(Minimize, PreservesAllCollisionVectorsOnShippedMachines)
{
    for (const auto *info : machines::all()) {
        SCOPED_TRACE(info->name);
        Mdes before = hmdes::compileOrThrow(info->source);
        Mdes after = before;
        size_t removed = minimizeUsages(after);
        ASSERT_EQ(after.validate(), "");
        int32_t bound = maxUsageSpan(before) + 1;
        ASSERT_EQ(before.options().size(), after.options().size());
        for (OptionId p = 0; p < before.options().size(); ++p) {
            for (OptionId q = 0; q < before.options().size(); ++q) {
                ASSERT_EQ(collisionVector(before, p, q, bound),
                          collisionVector(after, p, q, bound))
                    << "pair " << p << "," << q;
            }
        }
        (void)removed; // some machines may have nothing redundant
    }
}

TEST(Minimize, SchedulesIdenticalOnShippedMachines)
{
    for (const auto *info : machines::all()) {
        SCOPED_TRACE(info->name);
        Mdes base = hmdes::compileOrThrow(info->source);

        workload::WorkloadSpec spec = info->workload;
        spec.num_ops = 5000;

        auto scheduleWith = [&](const Mdes &model) {
            lmdes::LowMdes low = lmdes::LowMdes::lower(model, {});
            sched::Program program = workload::generate(spec, low);
            sched::ListScheduler s(low);
            sched::SchedStats stats;
            return s.scheduleProgram(program, stats);
        };

        auto before = scheduleWith(base);
        Mdes minimized = base;
        minimizeUsages(minimized);
        auto after = scheduleWith(minimized);

        ASSERT_EQ(before.size(), after.size());
        for (size_t i = 0; i < before.size(); ++i)
            ASSERT_EQ(before[i].cycles, after[i].cycles) << "block " << i;
    }
}

TEST(Minimize, SchedulesIdenticalOnRandomMachines)
{
    Rng rng(0xED96);
    for (int trial = 0; trial < 25; ++trial) {
        SCOPED_TRACE("trial " + std::to_string(trial));
        Mdes base = mdes::testing::randomMdes(rng);
        lmdes::LowMdes low0 = lmdes::LowMdes::lower(base, {});
        auto spec = mdes::testing::randomWorkloadSpec(
            base, 0xAB + uint64_t(trial), 400);
        sched::Program program = workload::generate(spec, low0);

        auto scheduleWith = [&](const Mdes &model) {
            lmdes::LowMdes low = lmdes::LowMdes::lower(model, {});
            sched::ListScheduler s(low);
            sched::SchedStats stats;
            return s.scheduleProgram(program, stats);
        };
        auto before = scheduleWith(base);
        Mdes minimized = base;
        minimizeUsages(minimized);
        ASSERT_EQ(minimized.validate(), "");
        auto after = scheduleWith(minimized);
        for (size_t i = 0; i < before.size(); ++i)
            ASSERT_EQ(before[i].cycles, after[i].cycles) << "block " << i;
    }
}

TEST(Minimize, Idempotent)
{
    Mdes m = expandToOrForm(
        hmdes::compileOrThrow(machines::superSparc().source));
    minimizeUsages(m);
    EXPECT_EQ(minimizeUsages(m), 0u);
}

} // namespace
} // namespace mdes
