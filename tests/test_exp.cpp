/**
 * @file
 * Experiment-runner tests: configuration helpers, determinism,
 * workload-size overrides, size-only runs, and cross-run consistency of
 * the statistics the benches report.
 */

#include <gtest/gtest.h>

#include "exp/runner.h"

namespace mdes {
namespace {

TEST(Exp, RepNames)
{
    EXPECT_STREQ(exp::repName(exp::Rep::OrTree), "OR-tree");
    EXPECT_STREQ(exp::repName(exp::Rep::AndOrTree), "AND/OR-tree");
}

TEST(Exp, OriginalConfigRunsNoTransforms)
{
    auto config =
        exp::originalConfig(machines::pa7100(), exp::Rep::AndOrTree);
    EXPECT_FALSE(config.transforms.cse);
    EXPECT_FALSE(config.transforms.time_shift);
    EXPECT_FALSE(config.bit_vector);
    config.num_ops_override = 2000;
    auto result = exp::run(config);
    // Untransformed: the duplicated memory option is still there.
    EXPECT_EQ(result.mid.expandedOptionCount(
                  result.mid.opClass(result.mid.findOpClass("LDW")).tree),
              3u);
}

TEST(Exp, OptimizedConfigRunsEverything)
{
    auto config =
        exp::optimizedConfig(machines::pa7100(), exp::Rep::AndOrTree);
    EXPECT_TRUE(config.transforms.cse);
    EXPECT_TRUE(config.transforms.redundant_options);
    EXPECT_TRUE(config.transforms.time_shift);
    EXPECT_TRUE(config.transforms.sort_usages);
    EXPECT_TRUE(config.transforms.hoist);
    EXPECT_TRUE(config.transforms.sort_or_trees);
    EXPECT_TRUE(config.bit_vector);
    config.num_ops_override = 2000;
    auto result = exp::run(config);
    EXPECT_EQ(result.mid.expandedOptionCount(
                  result.mid.opClass(result.mid.findOpClass("LDW")).tree),
              2u);
    EXPECT_TRUE(result.low.packed());
}

TEST(Exp, RunsAreDeterministic)
{
    auto config =
        exp::originalConfig(machines::superSparc(), exp::Rep::OrTree);
    config.num_ops_override = 3000;
    auto a = exp::run(config);
    auto b = exp::run(config);
    EXPECT_EQ(a.stats.checks.attempts, b.stats.checks.attempts);
    EXPECT_EQ(a.stats.checks.resource_checks,
              b.stats.checks.resource_checks);
    EXPECT_EQ(a.memory.total(), b.memory.total());
    ASSERT_EQ(a.schedules.size(), b.schedules.size());
    for (size_t i = 0; i < a.schedules.size(); ++i)
        EXPECT_EQ(a.schedules[i].cycles, b.schedules[i].cycles);
}

TEST(Exp, NumOpsOverrideChangesWorkloadSize)
{
    auto config =
        exp::originalConfig(machines::pa7100(), exp::Rep::AndOrTree);
    config.num_ops_override = 1000;
    auto small = exp::run(config);
    config.num_ops_override = 4000;
    auto large = exp::run(config);
    EXPECT_GE(small.stats.ops_scheduled, 1000u);
    EXPECT_LT(small.stats.ops_scheduled, 1200u);
    EXPECT_GE(large.stats.ops_scheduled, 4000u);
}

TEST(Exp, SizeOnlyRunSkipsScheduling)
{
    auto config =
        exp::originalConfig(machines::k5(), exp::Rep::AndOrTree);
    config.schedule = false;
    auto result = exp::run(config);
    EXPECT_EQ(result.stats.ops_scheduled, 0u);
    EXPECT_TRUE(result.schedules.empty());
    EXPECT_GT(result.memory.total(), 0u);
}

TEST(Exp, BuildModelMatchesRunModel)
{
    auto config =
        exp::optimizedConfig(machines::superSparc(), exp::Rep::OrTree);
    config.schedule = false;
    Mdes via_build = exp::buildModel(config);
    auto via_run = exp::run(config);
    EXPECT_EQ(via_build.options().size(), via_run.mid.options().size());
    EXPECT_EQ(via_build.orTrees().size(), via_run.mid.orTrees().size());
    EXPECT_EQ(via_build.trees().size(), via_run.mid.trees().size());
}

TEST(Exp, MemoryMatchesLoweredModel)
{
    for (const auto *m : machines::all()) {
        auto config = exp::originalConfig(*m, exp::Rep::AndOrTree);
        config.schedule = false;
        auto result = exp::run(config);
        EXPECT_EQ(result.memory.total(), result.low.memory().total());
    }
}

} // namespace
} // namespace mdes
