/**
 * @file
 * ServiceMetrics unit tests: every ErrorCode has a printable name, the
 * JSON dump is well-formed and round-trips losslessly through the
 * support/json parser, StageLatency's power-of-two bucketing handles
 * both extremes of the input range, and the trace-section aggregates
 * (transform effects, conflict heat) merge and key correctly.
 */

#include <bit>
#include <cstdint>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "exp/runner.h"
#include "machines/machines.h"
#include "service/metrics.h"
#include "support/json.h"

namespace mdes {
namespace {

TEST(ErrorCode, EveryCodeHasADistinctName)
{
    std::set<std::string> names;
    for (size_t i = 0; i < size_t(service::ErrorCode::kNumCodes); ++i) {
        const char *name =
            service::errorCodeName(service::ErrorCode(i));
        ASSERT_NE(name, nullptr) << "code " << i;
        EXPECT_STRNE(name, "") << "code " << i;
        EXPECT_STRNE(name, "?") << "code " << i;
        EXPECT_TRUE(names.insert(name).second)
            << "duplicate name '" << name << "' for code " << i;
    }
}

TEST(ErrorCode, RobustnessCodesHaveStableNames)
{
    // These names appear in batch summaries, JSON reports, and CI
    // regexes; renaming them is a compatibility break.
    EXPECT_STREQ(service::errorCodeName(service::ErrorCode::Overloaded),
                 "overloaded");
    EXPECT_STREQ(service::errorCodeName(service::ErrorCode::CircuitOpen),
                 "circuit-open");
    EXPECT_STREQ(service::errorCodeName(service::ErrorCode::Degraded),
                 "degraded");
}

TEST(StageLatency, ApproxPercentileTracksTheBuckets)
{
    service::StageLatency empty;
    EXPECT_EQ(empty.approxPercentileUs(0.99), 0u);

    service::StageLatency s;
    for (int i = 0; i < 9; ++i)
        s.record(100); // bucket 7: [64, 128)
    s.record(5000);    // bucket 13: [4096, 8192)

    // The median sits in the 100us bucket; its conservative estimate is
    // the bucket's upper edge.
    EXPECT_EQ(s.approxPercentileUs(0.5), 127u);
    EXPECT_GE(s.approxPercentileUs(0.5), 100u); // never under-reports
    // The tail estimate is clamped to the observed maximum.
    EXPECT_EQ(s.approxPercentileUs(0.99), 5000u);
    EXPECT_EQ(s.approxPercentileUs(1.0), 5000u);
    EXPECT_EQ(s.approxPercentileUs(0.0), 127u);
    // Out-of-range quantiles clamp instead of misbehaving.
    EXPECT_EQ(s.approxPercentileUs(-1.0), s.approxPercentileUs(0.0));
    EXPECT_EQ(s.approxPercentileUs(2.0), s.approxPercentileUs(1.0));
}

TEST(StageLatency, BucketEdgesCoverTheFullRange)
{
    service::StageLatency zero;
    zero.record(0);
    EXPECT_EQ(zero.count, 1u);
    EXPECT_EQ(zero.total_us, 0u);
    EXPECT_EQ(zero.max_us, 0u);
    // bit_width(0) == 0: the zero-microsecond bucket.
    EXPECT_EQ(zero.log2_us.countAt(0), 1u);
    EXPECT_EQ(zero.log2_us.maxValue(), 0u);
    EXPECT_EQ(zero.log2_us.total(), zero.count);

    service::StageLatency huge;
    huge.record(UINT64_MAX);
    EXPECT_EQ(huge.count, 1u);
    EXPECT_EQ(huge.total_us, UINT64_MAX);
    EXPECT_EQ(huge.max_us, UINT64_MAX);
    // bit_width(UINT64_MAX) == 64: the top bucket, no overflow.
    ASSERT_EQ(std::bit_width(UINT64_MAX), 64);
    EXPECT_EQ(huge.log2_us.countAt(64), 1u);
    EXPECT_EQ(huge.log2_us.maxValue(), 64u);
    EXPECT_EQ(huge.log2_us.total(), huge.count);
}

TEST(StageLatency, MergeOfTheExtremesIsLossless)
{
    service::StageLatency a;
    a.record(0);
    service::StageLatency b;
    b.record(UINT64_MAX);

    a.merge(b);
    EXPECT_EQ(a.count, 2u);
    EXPECT_EQ(a.total_us, UINT64_MAX);
    EXPECT_EQ(a.max_us, UINT64_MAX);
    EXPECT_EQ(a.log2_us.total(), 2u);
    EXPECT_EQ(a.log2_us.countAt(0), 1u);
    EXPECT_EQ(a.log2_us.countAt(64), 1u);
    for (uint64_t bucket = 1; bucket < 64; ++bucket)
        EXPECT_EQ(a.log2_us.countAt(bucket), 0u) << "bucket " << bucket;

    // Merging an empty series changes nothing.
    a.merge(service::StageLatency{});
    EXPECT_EQ(a.count, 2u);
    EXPECT_EQ(a.total_us, UINT64_MAX);
}

/** A metrics object with every section populated, including the ones
 * gated on disk/trace state, so toJson() exercises all branches. */
service::ServiceMetrics
populatedMetrics()
{
    service::ServiceMetrics m;
    m.recordOutcome(service::ErrorCode::Ok);
    m.recordOutcome(service::ErrorCode::Ok);
    m.recordOutcome(service::ErrorCode::CompileFailed);
    m.compile.record(1500);
    m.workload.record(40);
    m.schedule.record(900);
    m.total.record(2500);
    m.ops_scheduled = 600;
    m.attempts = 750;
    m.resource_checks = 9000;
    m.cache.hits = 2;
    m.cache.misses = 1;
    m.cache.compiles = 1;
    m.cache.size = 1;
    m.cache.capacity = 8;
    m.cache.disk_enabled = true;
    m.cache.disk_hits = 1;
    m.cache.disk_misses = 1;
    m.cache.disk_stores = 1;
    m.transform_effects.merged_options = 12;
    m.transform_effects.usages_hoisted = 3;
    m.attempts_per_op.add(1);
    m.attempts_per_op.add(1);
    m.attempts_per_op.add(4);
    m.resource_conflicts["M.alu[0]"] = 5;
    m.resource_conflicts["M.bus"] = 11;
    return m;
}

TEST(ServiceMetrics, JsonParsesAndRoundTripsLosslessly)
{
    const std::string doc = populatedMetrics().toJson();
    JsonValue v = parseJson(doc);
    ASSERT_EQ(v.kind, JsonValue::Kind::Object);
    EXPECT_EQ(writeJson(v), doc);

    EXPECT_EQ(v.find("requests")->number, 3.0);
    EXPECT_EQ(v.find("ok")->number, 2.0);
    EXPECT_EQ(v.find("errors")->find("compile-failed")->number, 1.0);
    EXPECT_EQ(v.find("cache")->find("disk")->find("hits")->number, 1.0);
    EXPECT_EQ(v.find("latency")->find("compile")->find("max_us")->number,
              1500.0);

    const JsonValue *tr = v.find("trace");
    ASSERT_NE(tr, nullptr);
    EXPECT_EQ(
        tr->find("transform_effects")->find("merged_options")->number,
        12.0);
    EXPECT_EQ(tr->find("attempts_per_op")->find("count")->number, 3.0);
    EXPECT_EQ(tr->find("attempts_per_op")->find("max")->number, 4.0);
    // Conflicts are ranked most-contended first.
    const JsonValue *conflicts = tr->find("resource_conflicts");
    ASSERT_NE(conflicts, nullptr);
    ASSERT_EQ(conflicts->object.size(), 2u);
    EXPECT_EQ(conflicts->object[0].first, "M.bus");
    EXPECT_EQ(conflicts->object[0].second.number, 11.0);
    EXPECT_EQ(conflicts->object[1].first, "M.alu[0]");
}

TEST(ServiceMetrics, MergeSumsEverySection)
{
    service::ServiceMetrics a = populatedMetrics();
    service::ServiceMetrics b = populatedMetrics();
    b.resource_conflicts["M.decode"] = 1;
    a.merge(b);

    EXPECT_EQ(a.requests, 6u);
    EXPECT_EQ(a.ok, 4u);
    EXPECT_EQ(a.errors[size_t(service::ErrorCode::CompileFailed)], 2u);
    EXPECT_EQ(a.compile.count, 2u);
    EXPECT_EQ(a.transform_effects.merged_options, 24u);
    EXPECT_EQ(a.attempts_per_op.total(), 6u);
    EXPECT_EQ(a.resource_conflicts["M.bus"], 22u);
    EXPECT_EQ(a.resource_conflicts["M.decode"], 1u);
}

TEST(ServiceMetrics, RecordShedIsTheSingleAuthority)
{
    // A shed submission must move all three views of "shed" together:
    // the request count, the Overloaded error bucket, and the
    // robustness counter. recordShed() is the only place that does so.
    service::ServiceMetrics m;
    m.recordShed(3);
    EXPECT_EQ(m.requests, 3u);
    EXPECT_EQ(m.errors[size_t(service::ErrorCode::Overloaded)], 3u);
    EXPECT_EQ(m.requests_shed, 3u);
    EXPECT_TRUE(m.shedConsistent());

    // Interleaving normal outcomes never breaks the invariant.
    m.recordOutcome(service::ErrorCode::Ok);
    m.recordOutcome(service::ErrorCode::CompileFailed);
    m.recordShed(2);
    EXPECT_EQ(m.requests, 7u);
    EXPECT_EQ(m.requests_shed, 5u);
    EXPECT_TRUE(m.shedConsistent());

    // The JSON dump's errors.overloaded (the authoritative counter)
    // agrees with robustness.requests_shed (the mirror).
    JsonValue v = parseJson(m.toJson());
    EXPECT_EQ(v.find("errors")->find("overloaded")->number, 5.0);
    EXPECT_EQ(v.find("robustness")->find("requests_shed")->number, 5.0);
}

TEST(ServiceMetrics, ShedConsistencySurvivesMerge)
{
    service::ServiceMetrics a, b;
    a.recordShed(2);
    b.recordShed(4);
    b.recordOutcome(service::ErrorCode::Ok);
    a.merge(b);
    EXPECT_EQ(a.requests_shed, 6u);
    EXPECT_EQ(a.errors[size_t(service::ErrorCode::Overloaded)], 6u);
    EXPECT_EQ(a.requests, 7u);
    EXPECT_TRUE(a.shedConsistent());
}

TEST(NetStats, MergeSumsEveryCounterAndJsonExposesThem)
{
    service::ServiceMetrics m = populatedMetrics();
    m.net.enabled = true;
    m.net.accepted = 4;
    m.net.closed = 3;
    m.net.active = 1;
    m.net.resets = 2;
    m.net.frames_in = 40;
    m.net.frames_out = 38;
    m.net.bytes_in = 4000;
    m.net.bytes_out = 9000;
    m.net.protocol_errors = 1;
    m.net.bad_requests = 2;
    m.net.shed = 5;
    m.net.deadline_expired = 1;
    m.net.backpressure_stalls = 7;
    m.net.cancelled_on_close = 1;

    service::ServiceMetrics other;
    other.net.enabled = true;
    other.net.accepted = 1;
    other.net.frames_in = 2;
    m.merge(other);
    EXPECT_EQ(m.net.accepted, 5u);
    EXPECT_EQ(m.net.frames_in, 42u);
    EXPECT_EQ(m.net.shed, 5u);

    const std::string doc = m.toJson();
    JsonValue v = parseJson(doc);
    EXPECT_EQ(writeJson(v), doc); // still round-trips with the section
    const JsonValue *net = v.find("net");
    ASSERT_NE(net, nullptr);
    EXPECT_EQ(net->find("accepted")->number, 5.0);
    EXPECT_EQ(net->find("frames_in")->number, 42.0);
    EXPECT_EQ(net->find("backpressure_stalls")->number, 7.0);
    EXPECT_EQ(net->find("cancelled_on_close")->number, 1.0);

    // Disabled (no server ran): the section is absent entirely.
    service::ServiceMetrics plain = populatedMetrics();
    EXPECT_EQ(parseJson(plain.toJson()).find("net"), nullptr);
}

TEST(ServiceMetrics, RecordConflictsKeysByMachineAndResource)
{
    const machines::MachineInfo *machine = machines::all().front();
    exp::RunConfig config =
        exp::optimizedConfig(*machine, exp::Rep::AndOrTree);
    config.schedule = false;
    exp::RunResult result = exp::run(config);
    const lmdes::LowMdes &low = result.low;
    ASSERT_GE(low.numResources(), 2u);

    std::vector<uint64_t> per_resource(low.numResources(), 0);
    per_resource[0] = 4;
    per_resource[1] = 9;

    service::ServiceMetrics m;
    m.recordConflicts(low, per_resource);
    ASSERT_EQ(m.resource_conflicts.size(), 2u);
    EXPECT_EQ(m.resource_conflicts[low.machineName() + "." +
                                   low.resourceName(0)],
              4u);
    EXPECT_EQ(m.resource_conflicts[low.machineName() + "." +
                                   low.resourceName(1)],
              9u);
    // Zero entries contribute no keys; a second fold accumulates.
    m.recordConflicts(low, per_resource);
    EXPECT_EQ(m.resource_conflicts.size(), 2u);
    EXPECT_EQ(m.resource_conflicts[low.machineName() + "." +
                                   low.resourceName(1)],
              18u);
}

} // namespace
} // namespace mdes
