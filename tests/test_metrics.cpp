/**
 * @file
 * ServiceMetrics unit tests: every ErrorCode has a printable name, the
 * JSON dump is well-formed and round-trips losslessly through the
 * support/json parser, StageLatency's power-of-two bucketing handles
 * both extremes of the input range, and the trace-section aggregates
 * (transform effects, conflict heat) merge and key correctly.
 */

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/runner.h"
#include "machines/machines.h"
#include "service/metrics.h"
#include "service/stats.h"
#include "support/json.h"

namespace mdes {
namespace {

TEST(ErrorCode, EveryCodeHasADistinctName)
{
    std::set<std::string> names;
    for (size_t i = 0; i < size_t(service::ErrorCode::kNumCodes); ++i) {
        const char *name =
            service::errorCodeName(service::ErrorCode(i));
        ASSERT_NE(name, nullptr) << "code " << i;
        EXPECT_STRNE(name, "") << "code " << i;
        EXPECT_STRNE(name, "?") << "code " << i;
        EXPECT_TRUE(names.insert(name).second)
            << "duplicate name '" << name << "' for code " << i;
    }
}

TEST(ErrorCode, RobustnessCodesHaveStableNames)
{
    // These names appear in batch summaries, JSON reports, and CI
    // regexes; renaming them is a compatibility break.
    EXPECT_STREQ(service::errorCodeName(service::ErrorCode::Overloaded),
                 "overloaded");
    EXPECT_STREQ(service::errorCodeName(service::ErrorCode::CircuitOpen),
                 "circuit-open");
    EXPECT_STREQ(service::errorCodeName(service::ErrorCode::Degraded),
                 "degraded");
}

TEST(StageLatency, ApproxPercentileTracksTheBuckets)
{
    service::StageLatency empty;
    EXPECT_EQ(empty.approxPercentileUs(0.99), 0u);

    service::StageLatency s;
    for (int i = 0; i < 9; ++i)
        s.record(100); // bucket 7: [64, 128)
    s.record(5000);    // bucket 13: [4096, 8192)

    // The median sits in the 100us bucket and is interpolated within
    // it: rank 5 of the 9 samples there, 64 + 63*5/9 = 99.
    EXPECT_EQ(s.approxPercentileUs(0.5), 99u);
    // The tail estimate is clamped to the observed maximum.
    EXPECT_EQ(s.approxPercentileUs(0.99), 5000u);
    EXPECT_EQ(s.approxPercentileUs(1.0), 5000u);
    // Rank 1 of the 100us bucket: 64 + 63*1/9 = 71.
    EXPECT_EQ(s.approxPercentileUs(0.0), 71u);
    // Out-of-range quantiles clamp instead of misbehaving.
    EXPECT_EQ(s.approxPercentileUs(-1.0), s.approxPercentileUs(0.0));
    EXPECT_EQ(s.approxPercentileUs(2.0), s.approxPercentileUs(1.0));
}

TEST(StageLatency, InterpolatedPercentilesTrackExactPercentiles)
{
    // Regression for the pre-interpolation estimator, which always
    // reported a bucket's upper edge (up to 2x the true value). The
    // interpolated estimate must land in the same log2 bucket as the
    // exact percentile of the underlying samples - error bounded by
    // the bucket width, never a whole bucket high.
    std::vector<uint64_t> vals;
    uint64_t x = 12345;
    for (int i = 0; i < 1000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        vals.push_back(50 + (x >> 33) % 2000);
    }
    service::StageLatency s;
    for (uint64_t v : vals)
        s.record(v);
    std::sort(vals.begin(), vals.end());

    for (double q : {0.05, 0.25, 0.5, 0.9, 0.95, 0.99}) {
        size_t rank = size_t(std::ceil(q * double(vals.size())));
        ASSERT_GE(rank, 1u);
        uint64_t exact = vals[rank - 1];
        uint64_t approx = s.approxPercentileUs(q);
        EXPECT_EQ(std::bit_width(approx), std::bit_width(exact))
            << "q=" << q << " exact=" << exact << " approx=" << approx;
        EXPECT_LE(approx, s.max_us) << "q=" << q;
    }
    // Monotone in q.
    EXPECT_LE(s.approxPercentileUs(0.5), s.approxPercentileUs(0.9));
    EXPECT_LE(s.approxPercentileUs(0.9), s.approxPercentileUs(0.99));
    EXPECT_LE(s.approxPercentileUs(0.99), s.approxPercentileUs(1.0));
}

TEST(StageLatency, BucketEdgesCoverTheFullRange)
{
    service::StageLatency zero;
    zero.record(0);
    EXPECT_EQ(zero.count, 1u);
    EXPECT_EQ(zero.total_us, 0u);
    EXPECT_EQ(zero.max_us, 0u);
    // bit_width(0) == 0: the zero-microsecond bucket.
    EXPECT_EQ(zero.log2_us.countAt(0), 1u);
    EXPECT_EQ(zero.log2_us.maxValue(), 0u);
    EXPECT_EQ(zero.log2_us.total(), zero.count);

    service::StageLatency huge;
    huge.record(UINT64_MAX);
    EXPECT_EQ(huge.count, 1u);
    EXPECT_EQ(huge.total_us, UINT64_MAX);
    EXPECT_EQ(huge.max_us, UINT64_MAX);
    // bit_width(UINT64_MAX) == 64: the top bucket, no overflow.
    ASSERT_EQ(std::bit_width(UINT64_MAX), 64);
    EXPECT_EQ(huge.log2_us.countAt(64), 1u);
    EXPECT_EQ(huge.log2_us.maxValue(), 64u);
    EXPECT_EQ(huge.log2_us.total(), huge.count);
}

TEST(StageLatency, MergeOfTheExtremesIsLossless)
{
    service::StageLatency a;
    a.record(0);
    service::StageLatency b;
    b.record(UINT64_MAX);

    a.merge(b);
    EXPECT_EQ(a.count, 2u);
    EXPECT_EQ(a.total_us, UINT64_MAX);
    EXPECT_EQ(a.max_us, UINT64_MAX);
    EXPECT_EQ(a.log2_us.total(), 2u);
    EXPECT_EQ(a.log2_us.countAt(0), 1u);
    EXPECT_EQ(a.log2_us.countAt(64), 1u);
    for (uint64_t bucket = 1; bucket < 64; ++bucket)
        EXPECT_EQ(a.log2_us.countAt(bucket), 0u) << "bucket " << bucket;

    // Merging an empty series changes nothing.
    a.merge(service::StageLatency{});
    EXPECT_EQ(a.count, 2u);
    EXPECT_EQ(a.total_us, UINT64_MAX);
}

/** A metrics object with every section populated, including the ones
 * gated on disk/trace state, so toJson() exercises all branches. */
service::ServiceMetrics
populatedMetrics()
{
    service::ServiceMetrics m;
    m.recordOutcome(service::ErrorCode::Ok);
    m.recordOutcome(service::ErrorCode::Ok);
    m.recordOutcome(service::ErrorCode::CompileFailed);
    m.compile.record(1500);
    m.workload.record(40);
    m.schedule.record(900);
    m.total.record(2500);
    m.ops_scheduled = 600;
    m.attempts = 750;
    m.resource_checks = 9000;
    m.cache.hits = 2;
    m.cache.misses = 1;
    m.cache.compiles = 1;
    m.cache.size = 1;
    m.cache.capacity = 8;
    m.cache.disk_enabled = true;
    m.cache.disk_hits = 1;
    m.cache.disk_misses = 1;
    m.cache.disk_stores = 1;
    m.transform_effects.merged_options = 12;
    m.transform_effects.usages_hoisted = 3;
    m.attempts_per_op.add(1);
    m.attempts_per_op.add(1);
    m.attempts_per_op.add(4);
    m.resource_conflicts["M.alu[0]"] = 5;
    m.resource_conflicts["M.bus"] = 11;
    return m;
}

TEST(ServiceMetrics, JsonParsesAndRoundTripsLosslessly)
{
    const std::string doc = populatedMetrics().toJson();
    JsonValue v = parseJson(doc);
    ASSERT_EQ(v.kind, JsonValue::Kind::Object);
    EXPECT_EQ(writeJson(v), doc);

    EXPECT_EQ(v.find("requests")->number, 3.0);
    EXPECT_EQ(v.find("ok")->number, 2.0);
    EXPECT_EQ(v.find("errors")->find("compile-failed")->number, 1.0);
    EXPECT_EQ(v.find("cache")->find("disk")->find("hits")->number, 1.0);
    EXPECT_EQ(v.find("latency")->find("compile")->find("max_us")->number,
              1500.0);

    const JsonValue *tr = v.find("trace");
    ASSERT_NE(tr, nullptr);
    EXPECT_EQ(
        tr->find("transform_effects")->find("merged_options")->number,
        12.0);
    EXPECT_EQ(tr->find("attempts_per_op")->find("count")->number, 3.0);
    EXPECT_EQ(tr->find("attempts_per_op")->find("max")->number, 4.0);
    // Conflicts are ranked most-contended first.
    const JsonValue *conflicts = tr->find("resource_conflicts");
    ASSERT_NE(conflicts, nullptr);
    ASSERT_EQ(conflicts->object.size(), 2u);
    EXPECT_EQ(conflicts->object[0].first, "M.bus");
    EXPECT_EQ(conflicts->object[0].second.number, 11.0);
    EXPECT_EQ(conflicts->object[1].first, "M.alu[0]");
}

TEST(ServiceMetrics, MergeSumsEverySection)
{
    service::ServiceMetrics a = populatedMetrics();
    service::ServiceMetrics b = populatedMetrics();
    b.resource_conflicts["M.decode"] = 1;
    a.merge(b);

    EXPECT_EQ(a.requests, 6u);
    EXPECT_EQ(a.ok, 4u);
    EXPECT_EQ(a.errors[size_t(service::ErrorCode::CompileFailed)], 2u);
    EXPECT_EQ(a.compile.count, 2u);
    EXPECT_EQ(a.transform_effects.merged_options, 24u);
    EXPECT_EQ(a.attempts_per_op.total(), 6u);
    EXPECT_EQ(a.resource_conflicts["M.bus"], 22u);
    EXPECT_EQ(a.resource_conflicts["M.decode"], 1u);
}

TEST(ServiceMetrics, RecordShedIsTheSingleAuthority)
{
    // A shed submission must move all three views of "shed" together:
    // the request count, the Overloaded error bucket, and the
    // robustness counter. recordShed() is the only place that does so.
    service::ServiceMetrics m;
    m.recordShed(3);
    EXPECT_EQ(m.requests, 3u);
    EXPECT_EQ(m.errors[size_t(service::ErrorCode::Overloaded)], 3u);
    EXPECT_EQ(m.requests_shed, 3u);
    EXPECT_TRUE(m.shedConsistent());

    // Interleaving normal outcomes never breaks the invariant.
    m.recordOutcome(service::ErrorCode::Ok);
    m.recordOutcome(service::ErrorCode::CompileFailed);
    m.recordShed(2);
    EXPECT_EQ(m.requests, 7u);
    EXPECT_EQ(m.requests_shed, 5u);
    EXPECT_TRUE(m.shedConsistent());

    // The JSON dump's errors.overloaded (the authoritative counter)
    // agrees with robustness.requests_shed (the mirror).
    JsonValue v = parseJson(m.toJson());
    EXPECT_EQ(v.find("errors")->find("overloaded")->number, 5.0);
    EXPECT_EQ(v.find("robustness")->find("requests_shed")->number, 5.0);
}

TEST(ServiceMetrics, ShedConsistencySurvivesMerge)
{
    service::ServiceMetrics a, b;
    a.recordShed(2);
    b.recordShed(4);
    b.recordOutcome(service::ErrorCode::Ok);
    a.merge(b);
    EXPECT_EQ(a.requests_shed, 6u);
    EXPECT_EQ(a.errors[size_t(service::ErrorCode::Overloaded)], 6u);
    EXPECT_EQ(a.requests, 7u);
    EXPECT_TRUE(a.shedConsistent());
}

TEST(NetStats, MergeSumsEveryCounterAndJsonExposesThem)
{
    service::ServiceMetrics m = populatedMetrics();
    m.net.enabled = true;
    m.net.accepted = 4;
    m.net.closed = 3;
    m.net.active = 1;
    m.net.resets = 2;
    m.net.frames_in = 40;
    m.net.frames_out = 38;
    m.net.bytes_in = 4000;
    m.net.bytes_out = 9000;
    m.net.protocol_errors = 1;
    m.net.bad_requests = 2;
    m.net.shed = 5;
    m.net.deadline_expired = 1;
    m.net.backpressure_stalls = 7;
    m.net.cancelled_on_close = 1;

    service::ServiceMetrics other;
    other.net.enabled = true;
    other.net.accepted = 1;
    other.net.frames_in = 2;
    m.merge(other);
    EXPECT_EQ(m.net.accepted, 5u);
    EXPECT_EQ(m.net.frames_in, 42u);
    EXPECT_EQ(m.net.shed, 5u);

    const std::string doc = m.toJson();
    JsonValue v = parseJson(doc);
    EXPECT_EQ(writeJson(v), doc); // still round-trips with the section
    const JsonValue *net = v.find("net");
    ASSERT_NE(net, nullptr);
    EXPECT_EQ(net->find("accepted")->number, 5.0);
    EXPECT_EQ(net->find("frames_in")->number, 42.0);
    EXPECT_EQ(net->find("backpressure_stalls")->number, 7.0);
    EXPECT_EQ(net->find("cancelled_on_close")->number, 1.0);

    // Disabled (no server ran): the section is absent entirely.
    service::ServiceMetrics plain = populatedMetrics();
    EXPECT_EQ(parseJson(plain.toJson()).find("net"), nullptr);
}

TEST(ServiceMetrics, RecordConflictsKeysByMachineAndResource)
{
    const machines::MachineInfo *machine = machines::all().front();
    exp::RunConfig config =
        exp::optimizedConfig(*machine, exp::Rep::AndOrTree);
    config.schedule = false;
    exp::RunResult result = exp::run(config);
    const lmdes::LowMdes &low = result.low;
    ASSERT_GE(low.numResources(), 2u);

    std::vector<uint64_t> per_resource(low.numResources(), 0);
    per_resource[0] = 4;
    per_resource[1] = 9;

    service::ServiceMetrics m;
    m.recordConflicts(low, per_resource);
    ASSERT_EQ(m.resource_conflicts.size(), 2u);
    EXPECT_EQ(m.resource_conflicts[low.machineName() + "." +
                                   low.resourceName(0)],
              4u);
    EXPECT_EQ(m.resource_conflicts[low.machineName() + "." +
                                   low.resourceName(1)],
              9u);
    // Zero entries contribute no keys; a second fold accumulates.
    m.recordConflicts(low, per_resource);
    EXPECT_EQ(m.resource_conflicts.size(), 2u);
    EXPECT_EQ(m.resource_conflicts[low.machineName() + "." +
                                   low.resourceName(1)],
              18u);
}

// --- Sliding windows ---------------------------------------------------

TEST(WindowRing, ViewsDecayWhileLifetimeWouldNot)
{
    service::WindowRing ring;
    const uint64_t now = 1000; // epoch 100
    ring.record(now, service::ErrorCode::Ok, 100);
    ring.record(now + 5, service::ErrorCode::Ok, 200); // same epoch

    service::WindowView w10 = ring.over(now + 5, 10);
    EXPECT_EQ(w10.requests, 2u);
    EXPECT_EQ(w10.ok, 2u);
    EXPECT_EQ(w10.total.count, 2u);
    EXPECT_EQ(w10.total.max_us, 200u);
    EXPECT_DOUBLE_EQ(w10.ratePerS(), 0.2);

    // One epoch later the 10s view is empty but the 60s view still
    // covers the old epoch.
    EXPECT_EQ(ring.over(now + 15, 10).requests, 0u);
    EXPECT_EQ(ring.over(now + 15, 60).requests, 2u);
    // Past the 60s horizon everything has decayed.
    EXPECT_EQ(ring.over(now + 100, 60).requests, 0u);
}

TEST(WindowRing, EmptyWindowPercentilesAreZeroNotGarbage)
{
    service::WindowRing ring;
    EXPECT_TRUE(ring.empty());
    service::WindowView v = ring.over(12345, 60);
    EXPECT_EQ(v.requests, 0u);
    EXPECT_EQ(v.total.approxPercentileUs(0.5), 0u);
    EXPECT_EQ(v.total.approxPercentileUs(0.99), 0u);
    EXPECT_DOUBLE_EQ(v.ratePerS(), 0.0);
    EXPECT_DOUBLE_EQ(v.total.meanUs(), 0.0);

    // A ring with data outside the horizon behaves the same.
    ring.record(100, service::ErrorCode::Ok, 500);
    service::WindowView later = ring.over(100 + 700, 60);
    EXPECT_EQ(later.requests, 0u);
    EXPECT_EQ(later.total.approxPercentileUs(0.99), 0u);
}

TEST(WindowRing, RotationReclaimsWrappedSlots)
{
    // One request per epoch across three full ring wraps: each slot is
    // claimed and reset repeatedly, and only the freshest epochs
    // remain visible.
    service::WindowRing ring;
    const uint64_t epochs = uint64_t(service::kWindowSlots) * 3;
    for (uint64_t e = 1; e <= epochs; ++e)
        ring.record(e * service::kWindowSeconds,
                    service::ErrorCode::Ok, 100 * e);
    const uint64_t last_s = epochs * service::kWindowSeconds;
    EXPECT_EQ(ring.over(last_s, 10).requests, 1u);
    // The 60s horizon spans 6 epochs (current plus five back).
    EXPECT_EQ(ring.over(last_s, 60).requests, 6u);
    // No slot survived from an earlier wrap.
    for (size_t i = 0; i < service::kWindowSlots; ++i)
        EXPECT_GT(ring.slot(i).epoch + service::kWindowSlots, epochs)
            << "slot " << i;
}

TEST(WindowRing, ShedCountsAsRequestAndError)
{
    service::WindowRing ring;
    ring.recordShed(200, 3);
    ring.record(200, service::ErrorCode::Ok, 50);
    service::WindowView v = ring.over(200, 10);
    EXPECT_EQ(v.requests, 4u);
    EXPECT_EQ(v.errors, 3u);
    EXPECT_EQ(v.shed, 3u);
    EXPECT_EQ(v.ok, 1u);
    // Shed submissions carry no latency sample.
    EXPECT_EQ(v.total.count, 1u);
}

TEST(WindowRing, MergeIsEpochKeyed)
{
    const uint64_t now = 500; // epoch 50
    // Equal epochs sum.
    service::WindowRing a, b;
    a.record(now, service::ErrorCode::Ok, 100);
    b.record(now, service::ErrorCode::Ok, 300);
    a.merge(b);
    service::WindowView v = a.over(now, 10);
    EXPECT_EQ(v.requests, 2u);
    EXPECT_EQ(v.total.max_us, 300u);

    // A mid-rotation merge: the same slot holds a newer epoch in one
    // ring and a stale previous-wrap epoch in the other. The newer
    // delta replaces; the stale one is dropped, not double-counted.
    service::WindowRing c, d;
    const uint64_t wrapped =
        now + uint64_t(service::kWindowSlots) * service::kWindowSeconds;
    c.record(now, service::ErrorCode::Ok, 100);
    d.record(wrapped, service::ErrorCode::Ok, 300);
    c.merge(d);
    EXPECT_EQ(c.over(wrapped, 10).requests, 1u);
    EXPECT_EQ(c.over(wrapped, 10).total.max_us, 300u);
    // Merging the stale direction changes nothing.
    service::WindowRing e;
    e.record(now, service::ErrorCode::Ok, 100);
    d.merge(e);
    EXPECT_EQ(d.over(wrapped, 10).requests, 1u);
}

// --- The live stats document -------------------------------------------

TEST(StatsProtocol, SnapshotRoundTripsThroughJson)
{
    service::ServiceMetrics m = populatedMetrics();
    const uint64_t now = 700; // epoch 70
    m.windows.record(now, service::ErrorCode::Ok, 500);
    m.windows.record(now, service::ErrorCode::CompileFailed, 900);
    m.net.enabled = true;
    m.net.active = 2;
    m.net.stats_requests = 5;
    m.net.stats_coalesced = 1;

    const std::string doc = service::statsToJson(m, now);
    // The document is valid JSON (CI validates the same schema).
    EXPECT_EQ(parseJson(doc).kind, JsonValue::Kind::Object);

    service::StatSnapshot snap = service::parseStats(doc);
    EXPECT_EQ(snap.now_s, now);
    EXPECT_EQ(snap.shards, 1u);
    EXPECT_EQ(snap.requests, m.requests);
    EXPECT_EQ(snap.ok, m.ok);
    EXPECT_EQ(snap.lifetime_total.count, m.total.count);
    EXPECT_EQ(snap.lifetime_total.max_us, m.total.max_us);
    EXPECT_EQ(snap.lifetime_total.approxPercentileUs(0.99),
              m.total.approxPercentileUs(0.99));
    EXPECT_EQ(snap.net.stats_requests, 5u);
    EXPECT_EQ(snap.net.stats_coalesced, 1u);

    // The window ring survives the round trip slot-for-slot.
    service::WindowView w10 = snap.windows.over(now, 10);
    EXPECT_EQ(w10.requests, 2u);
    EXPECT_EQ(w10.errors, 1u);
    EXPECT_EQ(w10.total.max_us, 900u);
}

TEST(StatsProtocol, MergeShardStatsBuildsTheFleetView)
{
    const uint64_t now = 900; // epoch 90
    service::ServiceMetrics m1;
    m1.recordOutcome(service::ErrorCode::Ok);
    m1.total.record(100);
    m1.windows.record(now, service::ErrorCode::Ok, 100);
    service::ServiceMetrics m2;
    m2.recordOutcome(service::ErrorCode::Ok);
    m2.total.record(5000);
    m2.windows.record(now, service::ErrorCode::Ok, 5000);

    const std::string fleet = service::mergeShardStats(
        {service::statsToJson(m1, now), service::statsToJson(m2, now)},
        now);
    service::StatSnapshot snap = service::parseStats(fleet);
    EXPECT_EQ(snap.shards, 2u);
    EXPECT_EQ(snap.stale_shards, 0u);
    EXPECT_EQ(snap.requests, 2u);
    ASSERT_EQ(snap.per_shard.size(), 2u);
    EXPECT_EQ(snap.per_shard[0].w60_p99_us, 100u);
    EXPECT_EQ(snap.per_shard[1].w60_p99_us, 5000u);
    // Fleet percentiles come from the merged distribution - the p99
    // reflects the slow shard's sample, not an average of per-shard
    // percentiles (which would report ~2550).
    EXPECT_EQ(snap.lifetime_total.approxPercentileUs(0.99), 5000u);
    EXPECT_EQ(snap.windows.over(now, 60).total.max_us, 5000u);
}

TEST(StatsProtocol, StalledShardYieldsAPartialFleetViewNotAnError)
{
    const uint64_t now = 900;
    service::ServiceMetrics m1;
    m1.recordOutcome(service::ErrorCode::Ok);
    m1.total.record(100);
    m1.windows.record(now, service::ErrorCode::Ok, 100);

    // Shard 1 timed out (empty answer); shard 2 sent garbage.
    const std::string fleet = service::mergeShardStats(
        {service::statsToJson(m1, now), "", "{definitely not json"},
        now);
    service::StatSnapshot snap = service::parseStats(fleet);
    EXPECT_EQ(snap.shards, 1u);
    EXPECT_EQ(snap.stale_shards, 2u);
    EXPECT_EQ(snap.requests, 1u); // the live shard's numbers survive
    ASSERT_EQ(snap.per_shard.size(), 3u);
    EXPECT_FALSE(snap.per_shard[0].stale);
    EXPECT_TRUE(snap.per_shard[1].stale);
    EXPECT_TRUE(snap.per_shard[2].stale);
    // Rendering a partial view works (the dashboard shows STALE rows).
    const std::string text = service::renderStats(snap);
    EXPECT_NE(text.find("STALE"), std::string::npos);
    EXPECT_NE(text.find("live"), std::string::npos);

    // Every shard stale: still a well-formed document.
    service::StatSnapshot all_stale =
        service::parseStats(service::mergeShardStats({"", ""}, now));
    EXPECT_EQ(all_stale.stale_shards, 2u);
    EXPECT_EQ(all_stale.requests, 0u);
}

TEST(ServiceMetrics, WindowSectionAppearsInTableAndJson)
{
    service::ServiceMetrics m = populatedMetrics();
    m.windows.record(service::windowNowS(), service::ErrorCode::Ok,
                     250);
    const std::string doc = m.toJson();
    JsonValue v = parseJson(doc);
    EXPECT_EQ(writeJson(v), doc);
    const JsonValue *w = v.find("windows");
    ASSERT_NE(w, nullptr);
    ASSERT_NE(w->find("w10"), nullptr);
    EXPECT_EQ(w->find("w10")->find("horizon_s")->number, 10.0);
    ASSERT_NE(w->find("w60"), nullptr);
    // The 60s view also covers the previous epoch, so this holds even
    // if an epoch boundary falls between record() and toJson().
    EXPECT_EQ(w->find("w60")->find("requests")->number, 1.0);

    const std::string table = m.toTable();
    EXPECT_NE(table.find("last 10s"), std::string::npos);
    EXPECT_NE(table.find("last 60s"), std::string::npos);
}

} // namespace
} // namespace mdes
