/**
 * @file
 * High-level MDES language tests: lexing, parsing, expression and loop
 * evaluation, semantic checks, and error reporting with locations.
 */

#include <gtest/gtest.h>

#include "hmdes/compile.h"
#include "hmdes/lexer.h"
#include "hmdes/parser.h"
#include "machines/machines.h"

namespace mdes {
namespace {

using hmdes::Lexer;
using hmdes::Token;
using hmdes::TokenKind;

std::vector<Token>
lex(std::string_view src, DiagnosticEngine &diags)
{
    Lexer lexer(src, diags);
    return lexer.lexAll();
}

// ------------------------------------------------------------------- Lexer

TEST(Lexer, BasicTokens)
{
    DiagnosticEngine diags;
    auto tokens = lex("machine \"X\" { resource R[3]; }", diags);
    ASSERT_FALSE(diags.hasErrors());
    ASSERT_EQ(tokens.size(), 11u);
    EXPECT_EQ(tokens[0].kind, TokenKind::KwMachine);
    EXPECT_EQ(tokens[1].kind, TokenKind::String);
    EXPECT_EQ(tokens[1].text, "X");
    EXPECT_EQ(tokens[3].kind, TokenKind::KwResource);
    EXPECT_EQ(tokens[4].kind, TokenKind::Identifier);
    EXPECT_EQ(tokens[4].text, "R");
    EXPECT_EQ(tokens[6].kind, TokenKind::Integer);
    EXPECT_EQ(tokens[6].value, 3);
    EXPECT_EQ(tokens.back().kind, TokenKind::EndOfFile);
}

TEST(Lexer, CommentsAreSkipped)
{
    DiagnosticEngine diags;
    auto tokens = lex("// line\n/* block\nstill */ let /*x*/ A = 1;",
                      diags);
    ASSERT_FALSE(diags.hasErrors());
    EXPECT_EQ(tokens[0].kind, TokenKind::KwLet);
}

TEST(Lexer, TracksLineAndColumn)
{
    DiagnosticEngine diags;
    auto tokens = lex("let\n  foo", diags);
    EXPECT_EQ(tokens[0].loc.line, 1);
    EXPECT_EQ(tokens[0].loc.column, 1);
    EXPECT_EQ(tokens[1].loc.line, 2);
    EXPECT_EQ(tokens[1].loc.column, 3);
}

TEST(Lexer, DotDotAndArithmetic)
{
    DiagnosticEngine diags;
    auto tokens = lex("0 .. 3 + 4 * -2 % (1/1)", diags);
    ASSERT_FALSE(diags.hasErrors());
    EXPECT_EQ(tokens[1].kind, TokenKind::DotDot);
    EXPECT_EQ(tokens[3].kind, TokenKind::Plus);
    EXPECT_EQ(tokens[5].kind, TokenKind::Star);
    EXPECT_EQ(tokens[6].kind, TokenKind::Minus);
}

TEST(Lexer, ReportsBadCharacters)
{
    DiagnosticEngine diags;
    lex("let @ = 1;", diags);
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_NE(diags.toString().find("unexpected character"),
              std::string::npos);
}

TEST(Lexer, ReportsUnterminatedString)
{
    DiagnosticEngine diags;
    lex("machine \"oops", diags);
    EXPECT_TRUE(diags.hasErrors());
}

TEST(Lexer, ReportsUnterminatedBlockComment)
{
    DiagnosticEngine diags;
    lex("/* never closed", diags);
    EXPECT_TRUE(diags.hasErrors());
}

TEST(Lexer, SingleDotIsAnError)
{
    DiagnosticEngine diags;
    lex("0 . 3", diags);
    EXPECT_TRUE(diags.hasErrors());
}

// ----------------------------------------------------------------- Parsing

/** A minimal valid machine around the given body. */
std::string
wrap(const std::string &body)
{
    return "machine \"T\" {\n" + body + "\n}";
}

TEST(Compile, MinimalMachine)
{
    auto m = hmdes::compileOrThrow(wrap(R"(
        resource R;
        ortree TheR { option { use R at 0; } }
        table T = TheR;
        operation NOP { table T; }
    )"));
    EXPECT_EQ(m.name(), "T");
    EXPECT_EQ(m.numResources(), 1u);
    ASSERT_EQ(m.opClasses().size(), 1u);
    EXPECT_EQ(m.opClasses()[0].latency, 1); // default
}

TEST(Compile, LetConstantsAndArithmetic)
{
    auto m = hmdes::compileOrThrow(wrap(R"(
        let N = 2 + 2 * 3;         // 8
        let T = -(N / 4) % 3;      // -2
        resource R[N];
        ortree O { option { use R[N - 1] at T; } }
        table Tbl = O;
        operation X { table Tbl; latency N - 6; }
    )"));
    EXPECT_EQ(m.numResources(), 8u);
    EXPECT_EQ(m.option(0).usages[0].resource, 7u);
    EXPECT_EQ(m.option(0).usages[0].time, -2);
    EXPECT_EQ(m.opClasses()[0].latency, 2);
}

TEST(Compile, ForLoopsExpandOptions)
{
    auto m = hmdes::compileOrThrow(wrap(R"(
        resource R[4];
        ortree Pairs {
            for a in 0 .. 3 { for b in a + 1 .. 3 {
                option { use R[a] at 0; use R[b] at 0; }
            } }
        }
        table T = Pairs;
        operation X { table T; }
    )"));
    EXPECT_EQ(m.orTree(0).options.size(), 6u); // C(4,2)
    // First option should be R[0]+R[1] (loop order preserved).
    EXPECT_EQ(m.option(m.orTree(0).options[0]).usages[0].resource, 0u);
    EXPECT_EQ(m.option(m.orTree(0).options[0]).usages[1].resource, 1u);
}

TEST(Compile, UsageLevelForLoops)
{
    // A divide unit busy for six consecutive cycles, written as a loop
    // inside a single option.
    auto m = hmdes::compileOrThrow(wrap(R"(
        resource DIV;
        resource S[2];
        ortree Busy {
            option { for t in 0 .. 5 { use DIV at t; } }
        }
        ortree Slots {
            option { for i in 0 .. 1 { use S[i] at 0; } use DIV at 6; }
        }
        table T = and(Busy, Slots);
        operation X { table T; }
    )"));
    ASSERT_EQ(m.option(0).usages.size(), 6u);
    for (int32_t t = 0; t < 6; ++t) {
        EXPECT_EQ(m.option(0).usages[size_t(t)].time, t);
        EXPECT_EQ(m.option(0).usages[size_t(t)].resource, 0u);
    }
    // Mixed loop + plain usages in one option.
    ASSERT_EQ(m.option(1).usages.size(), 3u);
    EXPECT_EQ(m.option(1).usages[2].time, 6);
}

TEST(Compile, NestedUsageForLoops)
{
    auto m = hmdes::compileOrThrow(wrap(R"(
        resource G[2];
        ortree Grid {
            option { for a in 0 .. 1 { for t in 0 .. 1 {
                use G[a] at a * 2 + t;
            } } }
        }
        table T = Grid;
        operation X { table T; }
    )"));
    ASSERT_EQ(m.option(0).usages.size(), 4u);
    EXPECT_EQ(m.option(0).usages[3].time, 3);
    EXPECT_EQ(m.option(0).usages[3].resource, 1u);
}

TEST(Compile, UsageForDuplicateIsStillAnError)
{
    DiagnosticEngine diags;
    auto m = hmdes::compile(wrap(R"(
        resource DIV;
        ortree Busy { option { for t in 0 .. 1 { use DIV at 0; } } }
        table T = Busy;
        operation X { table T; }
    )"),
                            diags);
    EXPECT_FALSE(m.has_value());
    EXPECT_NE(diags.toString().find("duplicate usage"),
              std::string::npos);
}

TEST(Compile, UsageForEmptyExpansionIsEmptyOptionError)
{
    DiagnosticEngine diags;
    auto m = hmdes::compile(wrap(R"(
        resource DIV;
        ortree Busy { option { for t in 1 .. 0 { use DIV at t; } } }
        table T = Busy;
        operation X { table T; }
    )"),
                            diags);
    EXPECT_FALSE(m.has_value());
    EXPECT_NE(diags.toString().find("no resource usages"),
              std::string::npos);
}

TEST(Compile, EmptyLoopRangeYieldsNothing)
{
    DiagnosticEngine diags;
    auto m = hmdes::compile(wrap(R"(
        resource R[2];
        ortree O {
            option { use R[0] at 0; }
            for i in 1 .. 0 { option { use R[1] at 0; } }
        }
        table T = O;
        operation X { table T; }
    )"),
                            diags);
    ASSERT_TRUE(m.has_value()) << diags.toString();
    EXPECT_EQ(m->orTree(0).options.size(), 1u);
}

TEST(Compile, AndTableComposesOrTrees)
{
    auto m = hmdes::compileOrThrow(wrap(R"(
        resource A[2]; resource B[3];
        ortree AnyA { for i in 0 .. 1 { option { use A[i] at 0; } } }
        ortree AnyB { for i in 0 .. 2 { option { use B[i] at 1; } } }
        table T = and(AnyA, AnyB);
        operation X { table T; }
    )"));
    ASSERT_EQ(m.trees().size(), 1u);
    EXPECT_EQ(m.tree(0).or_trees.size(), 2u);
    EXPECT_EQ(m.expandedOptionCount(0), 6u);
    EXPECT_EQ(m.leafOptionCount(0), 5u);
}

TEST(Compile, SharedOrTreesShareIds)
{
    auto m = hmdes::compileOrThrow(wrap(R"(
        resource A; resource B;
        ortree UnitA { option { use A at 0; } }
        ortree UnitB { option { use B at 0; } }
        table T1 = and(UnitA, UnitB);
        table T2 = and(UnitA, UnitB);
        operation X { table T1; }
        operation Y { table T2; }
    )"));
    // Both tables reference the *same* OR-tree entities.
    EXPECT_EQ(m.tree(0).or_trees, m.tree(1).or_trees);
}

TEST(Compile, CascadeAndNote)
{
    auto m = hmdes::compileOrThrow(wrap(R"(
        resource R[2];
        ortree Any { for i in 0 .. 1 { option { use R[i] at 0; } } }
        ortree One { option { use R[1] at 0; } }
        table Full = Any;
        table Casc = One;
        operation ADD { table Full; cascade Casc; latency 1; note "adds"; }
    )"));
    const auto &oc = m.opClasses()[0];
    EXPECT_NE(oc.cascade_tree, kInvalidId);
    EXPECT_EQ(oc.comment, "adds");
}

// ---------------------------------------------------------- Semantic errors

struct BadCase
{
    const char *label;
    const char *body;
    const char *expect;
};

class CompileErrors : public testing::TestWithParam<BadCase>
{
};

TEST_P(CompileErrors, ReportsTheProblem)
{
    DiagnosticEngine diags;
    auto m = hmdes::compile(wrap(GetParam().body), diags);
    EXPECT_FALSE(m.has_value());
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_NE(diags.toString().find(GetParam().expect), std::string::npos)
        << "diagnostics were:\n"
        << diags.toString();
}

const BadCase kBadCases[] = {
    {"unknown_resource",
     "ortree O { option { use Nope at 0; } } table T = O; "
     "operation X { table T; }",
     "unknown resource"},
    {"index_out_of_range",
     "resource R[2]; ortree O { option { use R[2] at 0; } } "
     "table T = O; operation X { table T; }",
     "out of range"},
    {"missing_index",
     "resource R[2]; ortree O { option { use R at 0; } } "
     "table T = O; operation X { table T; }",
     "index is required"},
    {"duplicate_usage",
     "resource R; ortree O { option { use R at 0; use R at 0; } } "
     "table T = O; operation X { table T; }",
     "duplicate usage"},
    {"empty_option",
     "resource R; ortree O { option { } } table T = O; "
     "operation X { table T; }",
     "no resource usages"},
    {"empty_ortree",
     "resource R; ortree O { } table T = O; operation X { table T; }",
     "no options"},
    {"unknown_ortree",
     "resource R; table T = Ghost; operation X { table T; }",
     "unknown ortree"},
    {"unknown_table",
     "resource R; ortree O { option { use R at 0; } } "
     "operation X { table Ghost; }",
     "unknown table"},
    {"unknown_cascade",
     "resource R; ortree O { option { use R at 0; } } table T = O; "
     "operation X { table T; cascade Ghost; }",
     "unknown cascade table"},
    {"duplicate_resource",
     "resource R; resource R; ortree O { option { use R at 0; } } "
     "table T = O; operation X { table T; }",
     "already declared"},
    {"duplicate_ortree",
     "resource R; ortree O { option { use R at 0; } } "
     "ortree O { option { use R at 0; } } table T = O; "
     "operation X { table T; }",
     "already declared"},
    {"duplicate_table",
     "resource R; ortree O { option { use R at 0; } } table T = O; "
     "table T = O; operation X { table T; }",
     "already declared"},
    {"duplicate_operation",
     "resource R; ortree O { option { use R at 0; } } table T = O; "
     "operation X { table T; } operation X { table T; }",
     "already declared"},
    {"unknown_constant",
     "resource R[N]; ortree O { option { use R[0] at 0; } } "
     "table T = O; operation X { table T; }",
     "unknown constant"},
    {"division_by_zero",
     "let N = 1 / 0; resource R; ortree O { option { use R at 0; } } "
     "table T = O; operation X { table T; }",
     "division by zero"},
    {"loop_shadowing",
     "let i = 1; resource R[2]; "
     "ortree O { for i in 0 .. 1 { option { use R[i] at 0; } } } "
     "table T = O; operation X { table T; }",
     "shadows"},
    {"negative_latency",
     "resource R; ortree O { option { use R at 0; } } table T = O; "
     "operation X { table T; latency 0 - 5; }",
     "latency out of range"},
    {"no_operations", "resource R;", "declares no operations"},
    {"operation_without_table",
     "resource R; ortree O { option { use R at 0; } } table T = O; "
     "operation X { latency 1; }",
     "missing a table"},
};

std::string
badName(const testing::TestParamInfo<BadCase> &info)
{
    return info.param.label;
}

INSTANTIATE_TEST_SUITE_P(AllBadInputs, CompileErrors,
                         testing::ValuesIn(kBadCases), badName);

TEST(CompileWarnings, OverlappingAndSubtreesWarn)
{
    DiagnosticEngine diags;
    auto m = hmdes::compile(wrap(R"(
        resource R[2];
        ortree A { for i in 0 .. 1 { option { use R[i] at 0; } } }
        ortree B { option { use R[0] at 0; } }
        table T = and(A, B);
        operation X { table T; }
    )"),
                            diags);
    ASSERT_TRUE(m.has_value());
    EXPECT_FALSE(diags.hasErrors());
    EXPECT_NE(diags.toString().find("same resource at the same time"),
              std::string::npos);
}

TEST(CompileWarnings, DisjointAndSubtreesDoNotWarn)
{
    DiagnosticEngine diags;
    auto m = hmdes::compile(wrap(R"(
        resource R[2]; resource S;
        ortree A { for i in 0 .. 1 { option { use R[i] at 0; } } }
        ortree B { option { use S at 0; } }
        ortree C { option { use R[0] at 1; } }  // same resource, other time
        table T = and(A, B, C);
        operation X { table T; }
    )"),
                            diags);
    ASSERT_TRUE(m.has_value());
    EXPECT_TRUE(diags.diagnostics().empty());
}

TEST(CompileWarnings, ShippedMachinesCompileWarningFree)
{
    for (const auto *info : machines::all()) {
        DiagnosticEngine diags;
        auto m = hmdes::compile(info->source, diags);
        ASSERT_TRUE(m.has_value());
        EXPECT_TRUE(diags.diagnostics().empty())
            << info->name << ":\n"
            << diags.toString();
    }
}

TEST(CompileErrorsExtra, SyntaxErrorHasLocation)
{
    DiagnosticEngine diags;
    auto m = hmdes::compile("machine \"X\" {\n  resource ;\n}", diags);
    EXPECT_FALSE(m.has_value() && !diags.hasErrors());
    ASSERT_FALSE(diags.diagnostics().empty());
    EXPECT_EQ(diags.diagnostics()[0].loc.line, 2);
}

TEST(CompileErrorsExtra, RecoversAndReportsMultipleErrors)
{
    DiagnosticEngine diags;
    hmdes::compile(wrap(R"(
        resource R;
        resource R;
        ortree O { option { use Ghost at 0; } }
    )"),
                   diags);
    EXPECT_GE(diags.diagnostics().size(), 2u);
}

TEST(CompileErrorsExtra, ThrowingEntryThrows)
{
    EXPECT_THROW(hmdes::compileOrThrow("machine \"X\" {}"), MdesError);
}

TEST(CompileErrorsExtra, TrailingGarbageRejected)
{
    DiagnosticEngine diags;
    hmdes::compile("machine \"X\" { resource R; ortree O { option { use "
                   "R at 0; } } table T = O; operation A { table T; } } "
                   "extra",
                   diags);
    EXPECT_TRUE(diags.hasErrors());
}

} // namespace
} // namespace mdes
