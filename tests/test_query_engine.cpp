/**
 * @file
 * Flat query-engine contract tests.
 *
 * The checker rebuild (slot addressing, epoch-stamped pending overlay,
 * collision-vector prefilter, flat probe program) must be *observably
 * identical* to the straightforward tree-walking engine it replaced:
 * same decisions, same chosen options, same reservations. This file
 * pins that contract:
 *
 *  - a ReferenceChecker implements the pre-rebuild algorithm directly
 *    off the lowered description (nested tree walk, cycle-addressed map
 *    probes, linear pending scan) and is run in lockstep against the
 *    real Checker over random machines, linear and modulo maps, and
 *    negative issue cycles;
 *  - wouldFit() is proven side-effect-free: probing between two
 *    tryReserve()s changes neither the map nor any checker state that
 *    could alter a later decision;
 *  - the RU map itself is checked against a naive std::map model,
 *    including modulo wrap with multi-word machines (ii x slotWords()
 *    slots) and negative decode-stage cycles.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "lmdes/low_mdes.h"
#include "random_mdes.h"
#include "rumap/checker.h"
#include "rumap/ru_map.h"
#include "support/rng.h"

namespace mdes {
namespace {

using lmdes::LowMdes;
using rumap::Checker;
using rumap::CheckStats;
using rumap::RuMap;
using testing::randomMdes;
using testing::RandomMdesOptions;

// ---------------------------------------------------------- reference

/**
 * The pre-rebuild constraint checker, kept deliberately naive: walk the
 * shared AND/OR structures through five levels of indirection, probe the
 * map through the cycle-addressed API (normalizing on every probe), and
 * test options already chosen this attempt with a linear scan of the
 * pending list. Slow, obvious, and the semantic oracle for Checker.
 */
class ReferenceChecker
{
  public:
    explicit ReferenceChecker(const LowMdes &low) : low_(low) {}

    bool
    tryReserve(uint32_t tree, int32_t cycle, RuMap &ru,
               std::vector<uint32_t> *chosen = nullptr)
    {
        bool ok = evaluate(tree, cycle, ru, chosen);
        ++attempts;
        if (ok) {
            ++successes;
            for (const auto &p : pending_)
                ru.reserveSlot(p.first, p.second);
        }
        return ok;
    }

    bool
    wouldFit(uint32_t tree, int32_t cycle, const RuMap &ru)
    {
        return evaluate(tree, cycle, ru, nullptr);
    }

    uint64_t attempts = 0;
    uint64_t successes = 0;

  private:
    bool
    evaluate(uint32_t tree, int32_t cycle, const RuMap &ru,
             std::vector<uint32_t> *chosen)
    {
        pending_.clear();
        if (chosen)
            chosen->clear();
        const lmdes::LowTree &t = low_.trees()[tree];
        int32_t base = cycle * int32_t(low_.slotWords());
        for (uint32_t s = 0; s < t.num_or_trees; ++s) {
            const lmdes::LowOrTree &ot =
                low_.orTrees()[low_.orRefs()[t.first_or_ref + s]];
            bool found = false;
            for (uint32_t oi = 0; oi < ot.num_options && !found; ++oi) {
                uint32_t opt_id =
                    low_.optionRefs()[ot.first_option_ref + oi];
                const lmdes::LowOption &opt = low_.options()[opt_id];
                bool fits = true;
                for (uint32_t c = 0; c < opt.num_checks && fits; ++c) {
                    const lmdes::Check &chk =
                        low_.checks()[opt.first_check + c];
                    int32_t at = ru.normalize(base + chk.slot);
                    if (!ru.availableSlot(at, chk.mask) ||
                        pendingConflict(at, chk.mask))
                        fits = false;
                }
                if (fits) {
                    found = true;
                    for (uint32_t c = 0; c < opt.num_checks; ++c) {
                        const lmdes::Check &chk =
                            low_.checks()[opt.first_check + c];
                        pending_.push_back(
                            {ru.normalize(base + chk.slot), chk.mask});
                    }
                    if (chosen)
                        chosen->push_back(opt_id);
                }
            }
            if (!found)
                return false;
        }
        return true;
    }

    bool
    pendingConflict(int32_t slot, uint64_t mask) const
    {
        for (const auto &p : pending_)
            if (p.first == slot && (p.second & mask) != 0)
                return true;
        return false;
    }

    const LowMdes &low_;
    std::vector<std::pair<int32_t, uint64_t>> pending_;
};

/** Every map word over a window wide enough to cover any reservation
 * the tests can make (both engines probe identical slots, so equal
 * windows means equal maps). */
std::vector<uint64_t>
snapshot(const RuMap &ru, const LowMdes &low)
{
    std::vector<uint64_t> words;
    if (ru.initiationInterval() > 0) {
        for (int32_t s = 0; s < ru.initiationInterval(); ++s)
            words.push_back(ru.wordSlot(s));
    } else {
        int32_t span = 64 * int32_t(low.slotWords());
        for (int32_t s = -span; s < span; ++s)
            words.push_back(ru.wordSlot(s));
    }
    return words;
}

// -------------------------------------------------------- equivalence

/** Run the real Checker and the ReferenceChecker in lockstep over every
 * (cycle, op-class) attempt and require identical decisions, chosen
 * options, and maps after every single attempt. */
void
runLockstep(const LowMdes &low, RuMap &ru_new, RuMap &ru_ref,
            int32_t first_cycle, int32_t last_cycle)
{
    Checker checker(low);
    ReferenceChecker ref(low);
    CheckStats stats;
    std::vector<uint32_t> chosen_new, chosen_ref;

    for (int32_t cycle = first_cycle; cycle <= last_cycle; ++cycle) {
        for (const auto &oc : low.opClasses()) {
            // The pure query must predict exactly what tryReserve is
            // about to decide.
            bool fit_new = checker.wouldFit(oc.tree, cycle, ru_new);
            bool fit_ref = ref.wouldFit(oc.tree, cycle, ru_ref);
            ASSERT_EQ(fit_new, fit_ref)
                << "wouldFit diverged: tree " << oc.tree << " cycle "
                << cycle;

            bool ok_new = checker.tryReserve(oc.tree, cycle, ru_new,
                                             stats, &chosen_new);
            bool ok_ref =
                ref.tryReserve(oc.tree, cycle, ru_ref, &chosen_ref);
            ASSERT_EQ(ok_new, ok_ref)
                << "tryReserve diverged: tree " << oc.tree << " cycle "
                << cycle;
            ASSERT_EQ(ok_new, fit_new);
            // chosen_options is only specified on success (on failure
            // the prefilter may reject before any option is walked).
            if (ok_new)
                ASSERT_EQ(chosen_new, chosen_ref)
                    << "chosen options diverged: tree " << oc.tree
                    << " cycle " << cycle;
            ASSERT_EQ(snapshot(ru_new, low), snapshot(ru_ref, low))
                << "maps diverged after tree " << oc.tree << " cycle "
                << cycle;
        }
    }
    // wouldFit() ran once per attempt above and recorded nothing.
    EXPECT_EQ(stats.attempts, ref.attempts);
    EXPECT_EQ(stats.successes, ref.successes);
}

TEST(QueryEngineEquivalence, LinearMapsOnRandomMachines)
{
    Rng rng(20260806);
    for (int iter = 0; iter < 12; ++iter) {
        RandomMdesOptions opts;
        opts.disjoint_subtrees = (iter % 2 == 0);
        Mdes m = randomMdes(rng, opts);
        LowMdes low = LowMdes::lower(m, {});
        RuMap ru_new, ru_ref;
        runLockstep(low, ru_new, ru_ref, 0, 11);
    }
}

TEST(QueryEngineEquivalence, NegativeDecodeStageCycles)
{
    // Usage times start at -2 in the generator, so early negative issue
    // cycles exercise downward window growth and Euclidean wrap.
    Rng rng(977);
    for (int iter = 0; iter < 8; ++iter) {
        RandomMdesOptions opts;
        opts.disjoint_subtrees = (iter % 2 == 0);
        Mdes m = randomMdes(rng, opts);
        LowMdes low = LowMdes::lower(m, {});
        RuMap ru_new, ru_ref;
        runLockstep(low, ru_new, ru_ref, -9, 4);
    }
}

TEST(QueryEngineEquivalence, ModuloMapsWrapIdentically)
{
    Rng rng(31337);
    for (int iter = 0; iter < 10; ++iter) {
        RandomMdesOptions opts;
        opts.disjoint_subtrees = (iter % 2 == 0);
        Mdes m = randomMdes(rng, opts);
        LowMdes low = LowMdes::lower(m, {});
        // Whole cycles wrap together: ii x slotWords() slots.
        int32_t ii = int32_t(2 + (iter % 5));
        RuMap ru_new(ii * int32_t(low.slotWords()));
        RuMap ru_ref(ii * int32_t(low.slotWords()));
        runLockstep(low, ru_new, ru_ref, -6, 9);
    }
}

// ------------------------------------------------------------- purity

TEST(WouldFitPurity, ProbeBetweenReservesChangesNothing)
{
    // Two identical runs of the same tryReserve sequence; the probed run
    // additionally calls wouldFit between every pair of reserves. Every
    // decision, every chosen option, and the final map must be
    // unaffected, and each wouldFit must leave the map bytes untouched.
    Rng rng(424242);
    for (int iter = 0; iter < 8; ++iter) {
        RandomMdesOptions opts;
        opts.disjoint_subtrees = (iter % 2 == 0);
        Mdes m = randomMdes(rng, opts);
        LowMdes low = LowMdes::lower(m, {});

        Checker control(low), probed(low);
        CheckStats control_stats, probed_stats;
        RuMap ru_control, ru_probed;
        std::vector<uint32_t> chosen_control, chosen_probed;

        for (int32_t cycle = 0; cycle < 10; ++cycle) {
            for (const auto &oc : low.opClasses()) {
                // A burst of pure queries across trees and cycles,
                // including ones about to be reserved.
                auto before = snapshot(ru_probed, low);
                for (const auto &other : low.opClasses()) {
                    probed.wouldFit(other.tree, cycle, ru_probed);
                    probed.wouldFit(other.tree, cycle + 1, ru_probed);
                }
                EXPECT_EQ(before, snapshot(ru_probed, low))
                    << "wouldFit mutated the map";

                bool ok_control = control.tryReserve(
                    oc.tree, cycle, ru_control, control_stats,
                    &chosen_control);
                bool ok_probed = probed.tryReserve(
                    oc.tree, cycle, ru_probed, probed_stats,
                    &chosen_probed);
                ASSERT_EQ(ok_control, ok_probed)
                    << "wouldFit changed a later tryReserve decision";
                ASSERT_EQ(chosen_control, chosen_probed);
            }
        }
        EXPECT_EQ(snapshot(ru_control, low), snapshot(ru_probed, low));
        // The interleaved queries recorded no attempts (no stats passed)
        // and must not have perturbed the reserving statistics.
        EXPECT_EQ(control_stats.attempts, probed_stats.attempts);
        EXPECT_EQ(control_stats.successes, probed_stats.successes);
        EXPECT_EQ(control_stats.resource_checks,
                  probed_stats.resource_checks);
        EXPECT_EQ(control_stats.prefilter_hits,
                  probed_stats.prefilter_hits);
    }
}

// --------------------------------------------------- RuMap vs a model

/** Naive RU-map model: a std::map from normalized slot to word. */
struct NaiveMap
{
    explicit NaiveMap(int32_t ii = 0) : ii(ii) {}

    int32_t
    norm(int32_t slot) const
    {
        if (ii == 0)
            return slot;
        int32_t m = slot % ii;
        return m < 0 ? m + ii : m;
    }
    bool
    available(int32_t slot, uint64_t mask) const
    {
        auto it = words.find(norm(slot));
        return it == words.end() || (it->second & mask) == 0;
    }
    void reserve(int32_t slot, uint64_t mask) { words[norm(slot)] |= mask; }
    void
    release(int32_t slot, uint64_t mask)
    {
        auto it = words.find(norm(slot));
        if (it != words.end())
            it->second &= ~mask;
    }
    uint64_t
    word(int32_t slot) const
    {
        auto it = words.find(norm(slot));
        return it == words.end() ? 0 : it->second;
    }

    int32_t ii;
    std::map<int32_t, uint64_t> words;
};

TEST(RuMapProperty, LinearMatchesNaiveModelWithNegativeCycles)
{
    Rng rng(555);
    RuMap ru;
    NaiveMap model;
    for (int step = 0; step < 4000; ++step) {
        int32_t cycle = int32_t(rng.range(-60, 90));
        uint64_t mask = rng.next() | 1;
        switch (rng.below(3)) {
        case 0:
            ru.reserve(cycle, mask);
            model.reserve(cycle, mask);
            break;
        case 1:
            ru.release(cycle, mask);
            model.release(cycle, mask);
            break;
        default:
            ASSERT_EQ(ru.available(cycle, mask),
                      model.available(cycle, mask))
                << "cycle " << cycle;
            break;
        }
        ASSERT_EQ(ru.word(cycle), model.word(cycle)) << "cycle " << cycle;
    }
    for (int32_t cycle = -70; cycle <= 100; ++cycle)
        ASSERT_EQ(ru.word(cycle), model.word(cycle)) << "cycle " << cycle;
}

TEST(RuMapProperty, ModuloWrapMatchesNaiveModelForMultiWordMachines)
{
    // Multi-word machines wrap whole cycles together: the map's wrap
    // length is ii x slotWords, and slot = cycle x slotWords + word.
    Rng rng(777);
    for (int32_t slot_words = 1; slot_words <= 3; ++slot_words) {
        for (int32_t ii = 1; ii <= 7; ++ii) {
            int32_t wrap = ii * slot_words;
            RuMap ru(wrap);
            NaiveMap model(wrap);
            ASSERT_EQ(ru.initiationInterval(), wrap);
            for (int step = 0; step < 1200; ++step) {
                int32_t cycle = int32_t(rng.range(-40, 40));
                int32_t word = int32_t(rng.below(uint64_t(slot_words)));
                int32_t slot = cycle * slot_words + word;
                uint64_t mask = rng.next() | 1;
                switch (rng.below(3)) {
                case 0:
                    ru.reserve(slot, mask);
                    model.reserve(slot, mask);
                    break;
                case 1:
                    ru.release(slot, mask);
                    model.release(slot, mask);
                    break;
                default:
                    ASSERT_EQ(ru.available(slot, mask),
                              model.available(slot, mask))
                        << "slot " << slot << " wrap " << wrap;
                    break;
                }
            }
            for (int32_t s = 0; s < wrap; ++s)
                ASSERT_EQ(ru.wordSlot(s), model.word(s))
                    << "slot " << s << " wrap " << wrap;
            // Wrap identity: any cycle far outside the interval lands
            // on the same word as its Euclidean remainder.
            for (int32_t s = -3 * wrap; s < 3 * wrap; ++s)
                ASSERT_EQ(ru.word(s), model.word(s))
                    << "slot " << s << " wrap " << wrap;
        }
    }
}

} // namespace
} // namespace mdes
