/**
 * @file
 * mdes::trace tests: the disabled path records nothing, enabled spans
 * carry ids/counters/labels, the collector survives concurrent
 * recording and snapshotting, the Chrome export is well-formed JSON,
 * and the scheduler probe hooks populate attempts-per-op and the
 * conflict heat table only while tracing is on.
 */

#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exp/runner.h"
#include "machines/machines.h"
#include "service/service.h"
#include "support/json.h"
#include "support/trace.h"

namespace mdes {
namespace {

const machines::MachineInfo &
machineNamed(const std::string &name)
{
    for (const auto *m : machines::all()) {
        if (m->name == name)
            return *m;
    }
    ADD_FAILURE() << "no machine named " << name;
    return *machines::all().front();
}

/**
 * The collector is process-global and other tests in this binary use
 * it too: every test starts from a clean, disabled state and restores
 * it on the way out.
 */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        trace::setEnabled(false);
        trace::Collector::instance().clear();
    }

    void
    TearDown() override
    {
        trace::setEnabled(false);
        trace::Collector::instance().clear();
        trace::Collector::instance().setThreadCapacity(size_t(1) << 20);
    }
};

TEST_F(TraceTest, DisabledSpansRecordNothing)
{
    ASSERT_FALSE(trace::enabled());
    {
        TRACE_SPAN("test/anonymous");
        TRACE_SPAN_F(span, "test/named");
        EXPECT_FALSE(span.active());
        // Attachments on an inactive span must be dropped, not buffered.
        span.counter("ignored", 1);
        span.label("ignored", "x");
    }
    EXPECT_EQ(trace::Collector::instance().spanCount(), 0u);
}

TEST_F(TraceTest, SpanCarriesIdCountersAndLabels)
{
    trace::setEnabled(true);
    {
        trace::IdScope id(42);
        TRACE_SPAN_F(span, "test/work");
        ASSERT_TRUE(span.active());
        span.counter("widgets", 7);
        span.label("machine", "TestMachine");
    }
    trace::setEnabled(false);

    std::vector<trace::Span> spans =
        trace::Collector::instance().snapshot();
    ASSERT_EQ(spans.size(), 1u);
    const trace::Span &s = spans[0];
    EXPECT_STREQ(s.name, "test/work");
    EXPECT_EQ(s.trace_id, 42u);
    EXPECT_EQ(s.tid, trace::threadId());
    ASSERT_EQ(s.counters.size(), 1u);
    EXPECT_STREQ(s.counters[0].first, "widgets");
    EXPECT_EQ(s.counters[0].second, 7u);
    ASSERT_EQ(s.labels.size(), 1u);
    EXPECT_STREQ(s.labels[0].first, "machine");
    EXPECT_EQ(s.labels[0].second, "TestMachine");
    EXPECT_LE(s.ts_us + s.dur_us, trace::nowUs());
}

TEST_F(TraceTest, NestedSpansTimestampsAreConsistent)
{
    trace::setEnabled(true);
    {
        TRACE_SPAN("test/outer");
        TRACE_SPAN("test/inner");
    }
    trace::setEnabled(false);

    std::vector<trace::Span> spans =
        trace::Collector::instance().snapshot();
    ASSERT_EQ(spans.size(), 2u);
    // Spans record at destruction: the inner one lands first.
    const trace::Span &inner = spans[0];
    const trace::Span &outer = spans[1];
    EXPECT_STREQ(inner.name, "test/inner");
    EXPECT_STREQ(outer.name, "test/outer");
    EXPECT_GE(inner.ts_us, outer.ts_us);
    EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);
}

TEST_F(TraceTest, IdScopeRestoresPreviousId)
{
    EXPECT_EQ(trace::currentTraceId(), 0u);
    {
        trace::IdScope outer(5);
        EXPECT_EQ(trace::currentTraceId(), 5u);
        {
            trace::IdScope inner(9);
            EXPECT_EQ(trace::currentTraceId(), 9u);
        }
        EXPECT_EQ(trace::currentTraceId(), 5u);
    }
    EXPECT_EQ(trace::currentTraceId(), 0u);
}

TEST_F(TraceTest, ConcurrentRecordingAndSnapshots)
{
    constexpr int kThreads = 8;
    constexpr int kSpansPerThread = 250;

    trace::setEnabled(true);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            trace::IdScope id(uint64_t(t) + 1);
            for (int i = 0; i < kSpansPerThread; ++i) {
                TRACE_SPAN("test/mt");
            }
        });
    }
    // Snapshots race the recorders by design; they must stay safe.
    for (int i = 0; i < 10; ++i)
        (void)trace::Collector::instance().snapshot();
    for (auto &th : threads)
        th.join();
    trace::setEnabled(false);

    std::vector<trace::Span> spans =
        trace::Collector::instance().snapshot();
    ASSERT_EQ(spans.size(), size_t(kThreads) * kSpansPerThread);
    std::set<uint64_t> ids;
    std::set<uint32_t> tids;
    for (const trace::Span &s : spans) {
        EXPECT_STREQ(s.name, "test/mt");
        ids.insert(s.trace_id);
        tids.insert(s.tid);
    }
    // Each recording thread kept its own id and buffer.
    EXPECT_EQ(ids.size(), size_t(kThreads));
    EXPECT_EQ(tids.size(), size_t(kThreads));
}

TEST_F(TraceTest, ThreadCapacityDropsOverflow)
{
    trace::Collector &collector = trace::Collector::instance();
    const uint64_t dropped_before = collector.droppedCount();
    collector.setThreadCapacity(4);
    trace::setEnabled(true);
    for (int i = 0; i < 10; ++i) {
        TRACE_SPAN("test/cap");
    }
    trace::setEnabled(false);
    EXPECT_EQ(collector.spanCount(), 4u);
    EXPECT_EQ(collector.droppedCount() - dropped_before, 6u);
}

TEST_F(TraceTest, ChromeExportIsWellFormedJson)
{
    trace::setEnabled(true);
    {
        trace::IdScope id(7);
        TRACE_SPAN_F(span, "test/json \"quoted\"");
        span.counter("n", 3);
        span.label("kind", "unit\ttest");
    }
    trace::setEnabled(false);

    JsonValue doc =
        parseJson(trace::Collector::instance().toChromeJson());
    ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, JsonValue::Kind::Array);
    ASSERT_EQ(events->array.size(), 1u);

    const JsonValue &e = events->array[0];
    EXPECT_EQ(e.find("name")->string, "test/json \"quoted\"");
    EXPECT_EQ(e.find("ph")->string, "X");
    EXPECT_EQ(e.find("pid")->number, 1.0);
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("dur"), nullptr);
    const JsonValue *args = e.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->find("trace_id")->number, 7.0);
    EXPECT_EQ(args->find("n")->number, 3.0);
    EXPECT_EQ(args->find("kind")->string, "unit\ttest");
}

TEST_F(TraceTest, SchedulerProbesPopulateOnlyWhileEnabled)
{
    const machines::MachineInfo &m = machineNamed("SuperSPARC");
    exp::RunConfig config =
        exp::optimizedConfig(m, exp::Rep::AndOrTree);
    config.num_ops_override = 400;

    // Tracing off: the probe hooks must stay dormant.
    exp::RunResult off = exp::run(config);
    EXPECT_EQ(off.stats.attempts_per_op.total(), 0u);
    EXPECT_TRUE(off.stats.checks.conflicts_per_resource.empty());

    trace::setEnabled(true);
    exp::RunResult on = exp::run(config);
    trace::setEnabled(false);

    // One attempts-per-op sample per scheduled operation.
    EXPECT_EQ(on.stats.attempts_per_op.total(), on.stats.ops_scheduled);
    EXPECT_GE(on.stats.attempts_per_op.maxValue(), 1u);

    // Every failed probe charged some resource; the charge count can
    // exceed failures (an option can conflict on several resources) but
    // a contended workload must register at least one.
    uint64_t conflicts = 0;
    for (uint64_t n : on.stats.checks.conflicts_per_resource)
        conflicts += n;
    EXPECT_GT(conflicts, 0u);

    // The probe hooks observe scheduling without perturbing it.
    EXPECT_EQ(on.stats.ops_scheduled, off.stats.ops_scheduled);
    EXPECT_EQ(on.stats.total_schedule_length,
              off.stats.total_schedule_length);
    EXPECT_EQ(on.schedules, off.schedules);
}

TEST_F(TraceTest, ServiceRequestProducesEndToEndSpans)
{
    trace::setEnabled(true);
    {
        service::ServiceConfig config;
        config.num_workers = 2;
        service::MdesService svc(config);
        service::ScheduleRequest req;
        req.machine = "SuperSPARC";
        req.synth_ops = 300;
        std::vector<service::ScheduleResponse> responses =
            svc.runBatch({req});
        ASSERT_EQ(responses.size(), 1u);
        ASSERT_TRUE(responses[0].ok()) << responses[0].error.message;

        service::ServiceMetrics metrics = svc.metricsSnapshot();
        EXPECT_EQ(metrics.attempts_per_op.total(),
                  metrics.ops_scheduled);
        EXPECT_FALSE(metrics.resource_conflicts.empty());
        for (const auto &[name, n] : metrics.resource_conflicts) {
            EXPECT_NE(name.find("SuperSPARC."), std::string::npos)
                << name;
            EXPECT_GT(n, 0u);
        }
        EXPECT_GT(metrics.transform_effects.total(), 0u);
    }
    trace::setEnabled(false);

    std::vector<trace::Span> spans =
        trace::Collector::instance().snapshot();
    std::set<std::string> names;
    uint64_t request_id = 0;
    for (const trace::Span &s : spans) {
        names.insert(s.name);
        if (std::string(s.name) == "request")
            request_id = s.trace_id;
    }
    for (const char *expected :
         {"request", "cache/lookup", "compile/hmdes", "compile/lower",
          "workload/build", "sched/block", "pass/cse"}) {
        EXPECT_TRUE(names.count(expected))
            << "missing span " << expected;
    }
    // The request span carries the job's trace id, and every span the
    // worker recorded while processing it is stamped with the same id.
    EXPECT_NE(request_id, 0u);
    for (const trace::Span &s : spans) {
        if (std::string(s.name) == "compile/hmdes" ||
            std::string(s.name) == "sched/block") {
            EXPECT_EQ(s.trace_id, request_id) << s.name;
        }
    }
}

} // namespace
} // namespace mdes
