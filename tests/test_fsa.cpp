/**
 * @file
 * Finite-state-automaton baseline tests: lazy construction, transition
 * semantics, the negative-time precondition, the state budget, and -
 * most importantly - bit-identical schedules between the FSA-driven and
 * the reservation-table-driven list schedulers on every machine.
 */

#include <gtest/gtest.h>

#include "core/transforms.h"
#include "exp/runner.h"
#include "fsa/automaton.h"
#include "hmdes/compile.h"
#include "machines/machines.h"
#include "sched/list_scheduler.h"
#include "workload/workload.h"

namespace mdes {
namespace {

using fsa::FsaListScheduler;
using fsa::SchedulerAutomaton;
using lmdes::LowMdes;

LowMdes
shiftedLow(const char *source)
{
    Mdes m = hmdes::compileOrThrow(source);
    shiftUsageTimes(m);
    lmdes::LowerOptions lopts;
    lopts.pack_bit_vector = true;
    return LowMdes::lower(m, lopts);
}

const char *const kTiny = R"(
machine "tiny" {
    resource S[2];
    resource M;
    ortree AnyS { for i in 0 .. 1 { option { use S[i] at 0; } } }
    ortree MemU { option { use M at 0; use M at 1; } }
    table Alu = AnyS;
    table Mem = and(MemU, AnyS);
    operation ADD { table Alu; latency 1; }
    operation LOAD { table Mem; latency 2; }
}
)";

TEST(Fsa, RequiresNonNegativeTimes)
{
    Mdes m = hmdes::compileOrThrow(machines::superSparc().source);
    // Unshifted: decode usages at -1.
    LowMdes low = LowMdes::lower(m, {});
    EXPECT_THROW(SchedulerAutomaton fsa(low), MdesError);
}

TEST(Fsa, IssueAndAdvanceSemantics)
{
    LowMdes low = shiftedLow(kTiny);
    SchedulerAutomaton fsa(low);
    uint32_t ADD = low.opClasses()[low.findOpClass("ADD")].tree;
    uint32_t LOAD = low.opClasses()[low.findOpClass("LOAD")].tree;

    uint32_t s0 = fsa.initialState();
    // Two adds fit in one cycle, the third does not.
    uint32_t s1 = fsa.issue(s0, ADD);
    ASSERT_NE(s1, SchedulerAutomaton::kFail);
    uint32_t s2 = fsa.issue(s1, ADD);
    ASSERT_NE(s2, SchedulerAutomaton::kFail);
    EXPECT_EQ(fsa.issue(s2, ADD), SchedulerAutomaton::kFail);
    // After a cycle advance the slots free up again.
    uint32_t s3 = fsa.advanceCycle(s2);
    EXPECT_NE(fsa.issue(s3, ADD), SchedulerAutomaton::kFail);

    // The memory unit is busy for two cycles: a load issued now blocks
    // another load in the *next* cycle too.
    uint32_t m1 = fsa.issue(s0, LOAD);
    ASSERT_NE(m1, SchedulerAutomaton::kFail);
    EXPECT_EQ(fsa.issue(m1, LOAD), SchedulerAutomaton::kFail);
    uint32_t m2 = fsa.advanceCycle(m1);
    EXPECT_EQ(fsa.issue(m2, LOAD), SchedulerAutomaton::kFail);
    uint32_t m3 = fsa.advanceCycle(m2);
    EXPECT_NE(fsa.issue(m3, LOAD), SchedulerAutomaton::kFail);
}

TEST(Fsa, TransitionsAreMemoized)
{
    LowMdes low = shiftedLow(kTiny);
    SchedulerAutomaton fsa(low);
    uint32_t ADD = low.opClasses()[low.findOpClass("ADD")].tree;
    uint32_t a = fsa.issue(fsa.initialState(), ADD);
    uint32_t b = fsa.issue(fsa.initialState(), ADD);
    EXPECT_EQ(a, b);
    auto stats = fsa.stats();
    EXPECT_EQ(stats.issue_lookups, 2u);
    EXPECT_EQ(stats.transitions_built, 1u);
}

TEST(Fsa, StateBudgetEnforced)
{
    LowMdes low = shiftedLow(kTiny);
    SchedulerAutomaton fsa(low, 2); // absurdly small budget
    uint32_t ADD = low.opClasses()[low.findOpClass("ADD")].tree;
    uint32_t s = fsa.issue(fsa.initialState(), ADD);
    ASSERT_NE(s, SchedulerAutomaton::kFail);
    EXPECT_THROW(fsa.issue(s, ADD), MdesError);
}

TEST(Fsa, IdenticalSchedulesOnAllMachines)
{
    for (const auto *info : machines::all()) {
        SCOPED_TRACE(info->name);
        exp::RunConfig config =
            exp::optimizedConfig(*info, exp::Rep::AndOrTree);
        config.schedule = false;
        exp::RunResult built = exp::run(config);

        workload::WorkloadSpec spec = info->workload;
        spec.num_ops = 6000;
        sched::Program program = workload::generate(spec, built.low);

        sched::ListScheduler table_sched(built.low);
        sched::SchedStats table_stats;
        auto table_result =
            table_sched.scheduleProgram(program, table_stats);

        SchedulerAutomaton fsa(built.low);
        FsaListScheduler fsa_sched(built.low, fsa);
        sched::SchedStats fsa_stats;
        auto fsa_result = fsa_sched.scheduleProgram(program, fsa_stats);

        ASSERT_EQ(fsa_result.size(), table_result.size());
        for (size_t b = 0; b < table_result.size(); ++b) {
            ASSERT_EQ(fsa_result[b].cycles, table_result[b].cycles)
                << "block " << b;
            ASSERT_EQ(fsa_result[b].used_cascade,
                      table_result[b].used_cascade)
                << "block " << b;
        }
        // Same attempts; exactly one "check" (lookup) per attempt.
        EXPECT_EQ(fsa_stats.checks.attempts, table_stats.checks.attempts);
        EXPECT_EQ(fsa_stats.checks.resource_checks,
                  fsa_stats.checks.attempts);
        // The automaton materialized a nontrivial state table.
        EXPECT_GT(fsa.stats().states, 2u);
    }
}

TEST(Fsa, WarmAutomatonStopsBuildingTransitions)
{
    const auto &info = machines::superSparc();
    exp::RunConfig config =
        exp::optimizedConfig(info, exp::Rep::AndOrTree);
    config.schedule = false;
    exp::RunResult built = exp::run(config);

    workload::WorkloadSpec spec = info.workload;
    spec.num_ops = 3000;
    sched::Program program = workload::generate(spec, built.low);

    SchedulerAutomaton fsa(built.low);
    FsaListScheduler scheduler(built.low, fsa);
    sched::SchedStats s1;
    scheduler.scheduleProgram(program, s1);
    uint64_t built_cold = fsa.stats().transitions_built;
    sched::SchedStats s2;
    scheduler.scheduleProgram(program, s2);
    // Second pass over the same program: everything cached.
    EXPECT_EQ(fsa.stats().transitions_built, built_cold);
}

} // namespace
} // namespace mdes
