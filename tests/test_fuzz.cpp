/**
 * @file
 * Randomized property tests over generated machine descriptions: the
 * paper's invariants must hold not just for the four shipped machines
 * but for *any* well-formed description.
 *
 *  - Disjoint-subtree machines: identical schedules across both
 *    representations, every transformation level, and both check
 *    encodings; all schedules legal under replay.
 *  - Overlapping-subtree machines: the greedy AND/OR evaluation stays
 *    safe (never produces an illegal schedule) and the semantics-
 *    preserving subset of transformations keeps schedules identical.
 *  - The lexer/parser never crash on mutated description text.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <sstream>

#include "core/collision.h"
#include "core/expand.h"
#include "core/transforms.h"
#include "hmdes/compile.h"
#include "lmdes/image.h"
#include "lmdes/low_mdes.h"
#include "machines/machines.h"
#include "random_mdes.h"
#include "rumap/checker.h"
#include "sched/list_scheduler.h"
#include "sched/verify.h"

namespace mdes {
namespace {

using testing_ns = ::mdes::testing::RandomMdesOptions;

std::vector<sched::BlockSchedule>
scheduleAll(const Mdes &model, const sched::Program &program,
            bool bit_vector, sched::SchedStats *stats_out = nullptr)
{
    lmdes::LowerOptions lopts;
    lopts.pack_bit_vector = bit_vector;
    lmdes::LowMdes low = lmdes::LowMdes::lower(model, lopts);
    sched::ListScheduler scheduler(low);
    sched::SchedStats stats;
    auto schedules = scheduler.scheduleProgram(program, stats);
    if (stats_out)
        *stats_out = stats;
    return schedules;
}

TEST(Fuzz, DisjointMachinesFullInvariance)
{
    Rng rng(0xF0221);
    for (int trial = 0; trial < 30; ++trial) {
        SCOPED_TRACE("trial " + std::to_string(trial));
        Mdes base = mdes::testing::randomMdes(rng);
        ASSERT_EQ(base.validate(), "");

        // One workload for everything (generated off the AND/OR form).
        lmdes::LowMdes low0 = lmdes::LowMdes::lower(base, {});
        auto spec = mdes::testing::randomWorkloadSpec(
            base, 0x1234 + uint64_t(trial), 600);
        sched::Program program = workload::generate(spec, low0);

        std::vector<sched::BlockSchedule> baseline;
        bool first = true;

        for (bool expand : {false, true}) {
            for (bool transform : {false, true}) {
                for (bool bv : {false, true}) {
                    Mdes model = base;
                    if (expand)
                        model = expandToOrForm(model);
                    if (transform)
                        runPipeline(model, PipelineConfig::all());
                    ASSERT_EQ(model.validate(), "");
                    auto schedules =
                        scheduleAll(model, program, bv);
                    if (first) {
                        baseline = schedules;
                        first = false;
                    } else {
                        ASSERT_EQ(schedules.size(), baseline.size());
                        for (size_t b = 0; b < schedules.size(); ++b) {
                            ASSERT_EQ(schedules[b].cycles,
                                      baseline[b].cycles)
                                << "expand=" << expand
                                << " transform=" << transform
                                << " bv=" << bv << " block " << b;
                        }
                    }
                    // Legality replay on a sample of blocks.
                    lmdes::LowerOptions lopts;
                    lopts.pack_bit_vector = bv;
                    lmdes::LowMdes low =
                        lmdes::LowMdes::lower(model, lopts);
                    for (size_t b = 0; b < program.blocks.size();
                         b += 7) {
                        ASSERT_EQ(
                            sched::verifySchedule(program.blocks[b],
                                                  schedules[b], low),
                            "")
                            << "block " << b;
                    }
                }
            }
        }
    }
}

TEST(Fuzz, WideDisjointMachinesFullInvariance)
{
    // Machines wider than 64 resource instances (multi-word RU-map
    // slots) must satisfy the same invariants.
    Rng rng(0xF0227);
    for (int trial = 0; trial < 10; ++trial) {
        SCOPED_TRACE("trial " + std::to_string(trial));
        mdes::testing::RandomMdesOptions opts;
        opts.min_classes = 3;
        opts.max_classes = 4;
        opts.min_count = 20;
        opts.max_count = 30; // 60-120 instances
        Mdes base = mdes::testing::randomMdes(rng, opts);
        ASSERT_EQ(base.validate(), "");
        lmdes::LowMdes low0 = lmdes::LowMdes::lower(base, {});
        if (low0.slotWords() < 2)
            continue; // only exercise the wide path

        auto spec = mdes::testing::randomWorkloadSpec(
            base, 0x3111 + uint64_t(trial), 400);
        sched::Program program = workload::generate(spec, low0);

        std::vector<sched::BlockSchedule> baseline;
        bool first = true;
        for (bool expand : {false, true}) {
            for (bool transform : {false, true}) {
                for (bool bv : {false, true}) {
                    Mdes model = base;
                    if (expand)
                        model = expandToOrForm(model);
                    if (transform)
                        runPipeline(model, PipelineConfig::all());
                    auto schedules = scheduleAll(model, program, bv);
                    if (first) {
                        baseline = schedules;
                        first = false;
                    } else {
                        for (size_t b = 0; b < schedules.size(); ++b) {
                            ASSERT_EQ(schedules[b].cycles,
                                      baseline[b].cycles)
                                << "expand=" << expand
                                << " transform=" << transform
                                << " bv=" << bv << " block " << b;
                        }
                    }
                }
            }
        }
    }
}

TEST(Fuzz, OverlappingMachinesStaySafe)
{
    Rng rng(0xF0222);
    for (int trial = 0; trial < 30; ++trial) {
        SCOPED_TRACE("trial " + std::to_string(trial));
        mdes::testing::RandomMdesOptions opts;
        opts.disjoint_subtrees = false;
        opts.min_subtrees = 2;
        Mdes base = mdes::testing::randomMdes(rng, opts);
        ASSERT_EQ(base.validate(), "");

        lmdes::LowMdes low0 = lmdes::LowMdes::lower(base, {});

        // Overlapping subtrees can make a tree unsatisfiable even on an
        // empty machine (both subtrees demanding the same usage) - the
        // case the hmdes builder warns about. Keep only issueable
        // classes in the workload.
        auto spec = mdes::testing::randomWorkloadSpec(
            base, 0x777 + uint64_t(trial), 400);
        rumap::Checker probe(low0);
        std::erase_if(spec.classes, [&](const workload::ClassMix &mix) {
            uint32_t cls = low0.findOpClass(mix.op_class);
            rumap::RuMap empty;
            return !probe.wouldFit(low0.opClasses()[cls].tree, 0, empty);
        });
        if (spec.classes.empty())
            continue;
        sched::Program program = workload::generate(spec, low0);

        // The semantics-preserving subset for overlapping subtrees:
        // everything except the Section 8 reorderings.
        PipelineConfig safe;
        safe.cse = true;
        safe.redundant_options = true;
        safe.time_shift = true;
        safe.sort_usages = true;

        std::vector<sched::BlockSchedule> baseline;
        bool first = true;
        for (bool transform : {false, true}) {
            for (bool bv : {false, true}) {
                Mdes model = base;
                if (transform)
                    runPipeline(model, safe);
                auto schedules = scheduleAll(model, program, bv);
                if (first) {
                    baseline = schedules;
                    first = false;
                } else {
                    for (size_t b = 0; b < schedules.size(); ++b) {
                        ASSERT_EQ(schedules[b].cycles,
                                  baseline[b].cycles)
                            << "transform=" << transform << " bv=" << bv
                            << " block " << b;
                    }
                }
                lmdes::LowerOptions lopts;
                lopts.pack_bit_vector = bv;
                lmdes::LowMdes low = lmdes::LowMdes::lower(model, lopts);
                for (size_t b = 0; b < program.blocks.size(); b += 5) {
                    ASSERT_EQ(sched::verifySchedule(program.blocks[b],
                                                    schedules[b], low),
                              "")
                        << "block " << b;
                }
            }
        }
    }
}

TEST(Fuzz, CseIsAlwaysIdempotentAndShrinking)
{
    Rng rng(0xF0223);
    for (int trial = 0; trial < 60; ++trial) {
        Mdes m = mdes::testing::randomMdes(rng);
        size_t before = m.options().size() + m.orTrees().size();
        eliminateRedundantInfo(m);
        ASSERT_EQ(m.validate(), "");
        size_t mid = m.options().size() + m.orTrees().size();
        EXPECT_LE(mid, before);
        auto again = eliminateRedundantInfo(m);
        EXPECT_EQ(again.merged_options + again.merged_or_trees +
                      again.merged_trees + again.removed_dead,
                  0u)
            << "trial " << trial;
    }
}

TEST(Fuzz, TimeShiftPreservesCollisionVectorsOnRandomMachines)
{
    Rng rng(0xF0224);
    for (int trial = 0; trial < 40; ++trial) {
        Mdes before = mdes::testing::randomMdes(rng);
        Mdes after = before;
        shiftUsageTimes(after);
        int32_t bound =
            std::max(maxUsageSpan(before), maxUsageSpan(after));
        for (OptionId a = 0; a < before.options().size(); ++a) {
            for (OptionId b = 0; b < before.options().size(); ++b) {
                ASSERT_EQ(collisionVector(before, a, b, bound),
                          collisionVector(after, a, b, bound))
                    << "trial " << trial << " pair " << a << "," << b;
            }
        }
    }
}

TEST(Fuzz, LexerAndParserNeverCrashOnMutatedText)
{
    // Take a real description, splice random mutations into it, and
    // require graceful diagnostics (or success), never a crash.
    std::string base = machines::superSparc().source;
    Rng rng(0xF0225);
    for (int trial = 0; trial < 200; ++trial) {
        std::string text = base;
        int edits = int(rng.range(1, 8));
        for (int e = 0; e < edits; ++e) {
            size_t pos = rng.below(text.size());
            switch (rng.below(3)) {
              case 0:
                text[pos] = char(rng.below(256));
                break;
              case 1:
                text.erase(pos, rng.below(20) + 1);
                break;
              default:
                text.insert(pos, "{;]..//*");
                break;
            }
        }
        DiagnosticEngine diags;
        auto result = hmdes::compile(text, diags);
        if (result.has_value()) {
            EXPECT_EQ(result->validate(), "");
        }
    }
}

namespace {

/** FNV-1a64, matching the v7 image checksum in serialize.cpp. */
uint64_t
imageFnv1a64(const char *data, size_t n)
{
    uint64_t h = 1469598103934665603ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= uint8_t(data[i]);
        h *= 1099511628211ull;
    }
    return h;
}

/** Re-seal a mutated v7 image: recompute the header checksum so the
 * mutation reaches structural validation instead of dying at the
 * checksum gate. */
void
resealImage(std::string &data)
{
    uint64_t sum =
        imageFnv1a64(data.data() + sizeof(mdes::lmdes::v7::Header),
                     data.size() - sizeof(mdes::lmdes::v7::Header));
    std::memcpy(&data[offsetof(mdes::lmdes::v7::Header, checksum)], &sum,
                sizeof(sum));
}

/** Load @p data and require either an MdesError or a structurally valid
 * description - never a crash, never a dangling reference. */
void
expectThrowOrValid(const std::string &data)
{
    std::stringstream buf(data);
    try {
        lmdes::LowMdes loaded = lmdes::LowMdes::load(buf);
        for (const auto &oc : loaded.opClasses())
            ASSERT_LT(oc.tree, loaded.trees().size());
        for (const auto &o : loaded.options())
            ASSERT_LE(size_t(o.first_check) + o.num_checks,
                      loaded.checks().size());
    } catch (const MdesError &) {
        // Rejection is the expected outcome.
    }
}

} // namespace

TEST(Fuzz, SectionTableMutationsNeverEscapeValidation)
{
    // The v7 analogue of fuzzing v4's length prefixes: mutate the header
    // scalars and section table *behind a re-sealed checksum*, so every
    // mutation reaches the ByteReader-style table validation rather than
    // being deflected by the checksum gate.
    Rng rng(0xF0228);
    using mdes::lmdes::v7::Header;
    for (int trial = 0; trial < 12; ++trial) {
        Mdes m = mdes::testing::randomMdes(rng);
        lmdes::LowerOptions lopts;
        lopts.pack_bit_vector = rng.chance(0.5);
        lmdes::LowMdes low = lmdes::LowMdes::lower(m, lopts);
        std::stringstream buf;
        low.save(buf);
        const std::string data = buf.str();

        for (int mut = 0; mut < 40; ++mut) {
            std::string mutated = data;
            // Target the header past the checksum field: scalars,
            // string refs, section count, and the section table.
            size_t at = offsetof(Header, num_resources) +
                        rng.below(sizeof(Header) -
                                  offsetof(Header, num_resources));
            if (rng.chance(0.5)) {
                mutated[at] = char(uint8_t(mutated[at]) ^
                                   uint8_t(1u << rng.below(8)));
            } else {
                // Whole-field rewrites reach offsets single bit flips
                // rarely produce (huge, unaligned, overlapping).
                uint64_t v = rng.below(2) ? rng.below(data.size() * 2)
                                          : (uint64_t(1) << 40) + 1;
                size_t n = std::min(sizeof(v), mutated.size() - at);
                std::memcpy(&mutated[at], &v, n);
            }
            resealImage(mutated);
            expectThrowOrValid(mutated);
        }
    }
}

TEST(Fuzz, SectionTableTargetedCorruptionRejected)
{
    // Deterministic table attacks a random sweep might miss; each is
    // re-sealed, so only table validation stands between the crafted
    // entry and an out-of-image span.
    using mdes::lmdes::v7::Header;
    using mdes::lmdes::v7::kChecks;
    using mdes::lmdes::v7::kOptions;
    Mdes m = hmdes::compileOrThrow(machines::superSparc().source);
    lmdes::LowMdes low = lmdes::LowMdes::lower(m, {});
    std::stringstream buf;
    low.save(buf);
    const std::string data = buf.str();

    Header hdr;
    std::memcpy(&hdr, data.data(), sizeof(hdr));
    ASSERT_GT(hdr.sections[kChecks].bytes, 0u);

    auto patched = [&](auto mutate) {
        Header h = hdr;
        mutate(h);
        std::string out = data;
        std::memcpy(out.data(), &h, sizeof(h));
        resealImage(out);
        return out;
    };
    auto expectRejected = [&](const std::string &img, const char *needle) {
        std::stringstream in(img);
        try {
            lmdes::LowMdes::load(in);
            FAIL() << "accepted image crafted for '" << needle << "'";
        } catch (const MdesError &e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << e.what();
        }
    };

    // Misaligned section offset.
    expectRejected(patched([](Header &h) {
                       h.sections[kChecks].offset += 8;
                   }),
                   "misaligned");
    // Section escaping the end of the image.
    expectRejected(patched([&](Header &h) {
                       h.sections[kChecks].bytes =
                           hdr.image_bytes; // extends past the end
                   }),
                   "outside the image");
    // Section pointing into the header.
    expectRejected(patched([](Header &h) {
                       h.sections[kChecks].offset = 64;
                   }),
                   "outside the image");
    // Byte count that is not a whole number of elements.
    expectRejected(patched([](Header &h) {
                       h.sections[kChecks].bytes -= 1;
                   }),
                   "multiple");
    // Two sections aliasing the same bytes.
    expectRejected(patched([&](Header &h) {
                       h.sections[kOptions] = hdr.sections[kChecks];
                   }),
                   "overlap");
    // Section-count drift.
    expectRejected(patched([](Header &h) { h.section_count = 11; }),
                   "section count");
    // Image-size lie (stream delivers fewer bytes than the header
    // claims once re-parsed by fromImage).
    expectRejected(patched([&](Header &h) { h.image_bytes += 64; }),
                   "truncated");
}

TEST(Fuzz, RedundantOptionRemovalNeverChangesSchedules)
{
    Rng rng(0xF0226);
    for (int trial = 0; trial < 30; ++trial) {
        mdes::testing::RandomMdesOptions opts;
        opts.inject_duplicates = true;
        Mdes base = mdes::testing::randomMdes(rng, opts);

        lmdes::LowMdes low0 = lmdes::LowMdes::lower(base, {});
        auto spec = mdes::testing::randomWorkloadSpec(
            base, 0x999 + uint64_t(trial), 300);
        sched::Program program = workload::generate(spec, low0);

        auto before = scheduleAll(base, program, false);
        Mdes cleaned = base;
        removeRedundantOptions(cleaned);
        auto after = scheduleAll(cleaned, program, false);
        for (size_t b = 0; b < before.size(); ++b) {
            ASSERT_EQ(before[b].cycles, after[b].cycles)
                << "trial " << trial << " block " << b;
        }
    }
}

} // namespace
} // namespace mdes
