/**
 * @file
 * mdes::net tests.
 *
 * Framing: the fuzz/property suite the decoder's contract demands -
 * round-trip random frames through arbitrary fragmentation, truncate
 * the stream at every byte offset, flip length prefixes - asserting
 * the decoder never reads past its buffer, never crashes, and yields
 * a typed ProtoError for every malformed input.
 *
 * Grammar: renderRequestLine() round-trips through parseRequestLine()
 * field-for-field, and network-mode parsing rejects file references.
 *
 * Server: end-to-end over loopback in both wire modes, asserting
 * bit-identical schedule fingerprints against in-process runs, typed
 * Overloaded shedding under a tiny admission queue, deadline expiry
 * from the frame header, protocol-error close, and the net metrics
 * section. Everything binds port 0 (ephemeral) so tests never collide.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "service/request_parse.h"
#include "service/service.h"
#include "service/stats.h"
#include "support/diagnostics.h"
#include "support/rng.h"

namespace mdes {
namespace {

using net::Frame;
using net::FrameDecoder;
using net::FrameType;
using net::ProtoError;

Frame
randomFrame(Rng &rng)
{
    Frame f;
    constexpr FrameType kTypes[] = {FrameType::Request,
                                    FrameType::Response, FrameType::Error,
                                    FrameType::Ping, FrameType::Pong};
    f.type = kTypes[rng.below(5)];
    f.deadline_ms = uint32_t(rng.below(100000));
    f.id = rng.next();
    f.route = rng.next();
    size_t len = size_t(rng.below(300));
    f.payload.resize(len);
    for (char &c : f.payload)
        c = char(rng.below(256));
    return f;
}

void
expectFrameEq(const Frame &a, const Frame &b)
{
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.deadline_ms, b.deadline_ms);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.route, b.route);
    EXPECT_EQ(a.payload, b.payload);
}

TEST(Frame, RoundTripsThroughArbitraryFragmentation)
{
    Rng rng(42);
    for (int iter = 0; iter < 200; ++iter) {
        std::vector<Frame> frames;
        std::string wire;
        size_t n = 1 + rng.below(5);
        for (size_t i = 0; i < n; ++i) {
            frames.push_back(randomFrame(rng));
            wire += net::encodeFrame(frames.back());
        }

        // Feed the stream in random fragments (including empty ones).
        FrameDecoder dec;
        std::vector<Frame> out;
        size_t off = 0;
        while (off < wire.size()) {
            size_t chunk =
                std::min(wire.size() - off, rng.below(40 + 1));
            dec.feed(wire.data() + off, chunk);
            off += chunk;
            Frame f;
            FrameDecoder::Status st;
            while ((st = dec.next(&f)) == FrameDecoder::Status::Ready)
                out.push_back(f);
            ASSERT_EQ(st, FrameDecoder::Status::NeedMore);
        }
        ASSERT_EQ(out.size(), frames.size());
        for (size_t i = 0; i < frames.size(); ++i)
            expectFrameEq(out[i], frames[i]);
        EXPECT_EQ(dec.buffered(), 0u);
        EXPECT_EQ(dec.error(), ProtoError::None);
    }
}

TEST(Frame, TakeResidueRestoresPipelinedBytes)
{
    // A reader that decodes past the frame it wanted must be able to
    // hand the surplus bytes back (BlockingClient restores them to its
    // input buffer); a fresh decoder fed the residue yields exactly
    // the remaining frames.
    Rng rng(7);
    Frame first = randomFrame(rng);
    Frame second = randomFrame(rng);
    std::string wire = net::encodeFrame(first) + net::encodeFrame(second);
    // Plus a torn prefix of a third frame: residue is raw bytes, not
    // whole frames, and the partial tail must survive the handoff.
    std::string tail = net::encodeFrame(randomFrame(rng));
    wire += tail.substr(0, net::kHeaderSize / 2);

    FrameDecoder dec;
    dec.feed(wire.data(), wire.size());
    Frame out;
    ASSERT_EQ(dec.next(&out), FrameDecoder::Status::Ready);
    expectFrameEq(out, first);

    std::string residue = dec.takeResidue();
    EXPECT_EQ(dec.buffered(), 0u);
    EXPECT_EQ(residue.size(),
              net::kHeaderSize + second.payload.size() + net::kHeaderSize / 2);

    FrameDecoder dec2;
    dec2.feed(residue.data(), residue.size());
    ASSERT_EQ(dec2.next(&out), FrameDecoder::Status::Ready);
    expectFrameEq(out, second);
    ASSERT_EQ(dec2.next(&out), FrameDecoder::Status::NeedMore);
    EXPECT_EQ(dec2.buffered(), net::kHeaderSize / 2);
}

TEST(Frame, TruncationAtEveryOffsetNeverCompletesOrCrashes)
{
    Rng rng(7);
    Frame f = randomFrame(rng);
    f.payload = "machine=K5 sched=list ops=10";
    const std::string wire = net::encodeFrame(f);

    for (size_t cut = 0; cut < wire.size(); ++cut) {
        FrameDecoder dec;
        dec.feed(wire.data(), cut);
        Frame out;
        // A strict prefix of a valid frame decodes to nothing - only
        // NeedMore, never Ready, never Error, never an over-read.
        EXPECT_EQ(dec.next(&out), FrameDecoder::Status::NeedMore)
            << "cut at " << cut;
        EXPECT_EQ(dec.error(), ProtoError::None);
        EXPECT_EQ(dec.buffered(), cut);
        // Completing the stream still yields the frame intact.
        dec.feed(wire.data() + cut, wire.size() - cut);
        ASSERT_EQ(dec.next(&out), FrameDecoder::Status::Ready);
        expectFrameEq(out, f);
    }
}

TEST(Frame, FlippedLengthPrefixesErrorOrDemandExactlyThatMuch)
{
    Rng rng(13);
    Frame f = randomFrame(rng);
    f.type = FrameType::Request;
    f.payload = "machine=Pentium";
    const std::string wire = net::encodeFrame(f);

    // Flip every bit of the payload_len field (header offset 8..11).
    for (int bit = 0; bit < 32; ++bit) {
        std::string mutated = wire;
        mutated[8 + bit / 8] ^= char(1u << (bit % 8));
        uint32_t len = 0;
        std::memcpy(&len, mutated.data() + 8, 4); // LE host assumed in CI
        FrameDecoder dec;
        dec.feed(mutated.data(), mutated.size());
        Frame out;
        FrameDecoder::Status st = dec.next(&out);
        if (len > net::kMaxPayload) {
            EXPECT_EQ(st, FrameDecoder::Status::Error) << "bit " << bit;
            EXPECT_EQ(dec.error(), ProtoError::OversizedPayload);
            // Poisoned: more bytes never resurrect the stream.
            dec.feed(wire.data(), wire.size());
            EXPECT_EQ(dec.next(&out), FrameDecoder::Status::Error);
        } else if (len > f.payload.size()) {
            // Claims more payload than present: must wait, not over-read.
            EXPECT_EQ(st, FrameDecoder::Status::NeedMore) << "bit " << bit;
        } else {
            // Claims less: decodes a short frame, surplus stays buffered.
            ASSERT_EQ(st, FrameDecoder::Status::Ready) << "bit " << bit;
            EXPECT_EQ(out.payload.size(), len);
            EXPECT_EQ(dec.buffered(), f.payload.size() - len);
        }
    }
}

TEST(Frame, EveryHeaderViolationYieldsItsTypedError)
{
    const std::string good = net::encodeFrame(Frame{});
    struct Case
    {
        size_t offset;
        char value;
        ProtoError want;
    };
    const Case cases[] = {
        {0, 'X', ProtoError::BadMagic},    // magic
        {4, 2, ProtoError::BadVersion},    // version
        {5, 0, ProtoError::BadType},       // type 0 is invalid
        {5, 9, ProtoError::BadType},       // type out of range
        {6, 1, ProtoError::BadFlags},      // reserved flags nonzero
    };
    for (const Case &c : cases) {
        std::string mutated = good;
        mutated[c.offset] = c.value;
        FrameDecoder dec;
        dec.feed(mutated.data(), mutated.size());
        Frame out;
        EXPECT_EQ(dec.next(&out), FrameDecoder::Status::Error)
            << "offset " << c.offset;
        EXPECT_EQ(dec.error(), c.want) << "offset " << c.offset;
        EXPECT_STRNE(net::protoErrorName(dec.error()), "?");
    }
}

TEST(Frame, EncodeRejectsOversizedPayloadAsCallerBug)
{
    Frame f;
    f.payload.assign(net::kMaxPayload + 1, 'x');
    EXPECT_THROW(net::encodeFrame(f), MdesError);
}

TEST(Frame, GarbageBytesNeverCrashTheDecoder)
{
    Rng rng(99);
    for (int iter = 0; iter < 500; ++iter) {
        std::string junk(1 + rng.below(200), '\0');
        for (char &c : junk)
            c = char(rng.below(256));
        FrameDecoder dec;
        dec.feed(junk.data(), junk.size());
        Frame out;
        // Drain until the decoder rests; any outcome is fine except a
        // crash or an over-read (ASan holds the latter).
        while (dec.next(&out) == FrameDecoder::Status::Ready) {
        }
    }
}

TEST(RequestGrammar, RenderedLinesParseBackToEqualRequests)
{
    using service::ScheduleRequest;
    std::vector<ScheduleRequest> reqs;
    {
        ScheduleRequest r;
        r.machine = "K5";
        r.scheduler = service::SchedulerKind::Modulo;
        r.synth_ops = 123;
        r.seed = 7;
        r.deadline_ms = 250;
        reqs.push_back(r);
    }
    {
        ScheduleRequest r;
        r.machine = "Pentium";
        r.transforms = PipelineConfig::none();
        r.bit_vector = false;
        r.verify = true;
        reqs.push_back(r);
    }
    {
        ScheduleRequest r;
        r.machine = "PA8000";
        r.transforms = PipelineConfig::none();
        r.transforms.cse = true;
        r.transforms.hoist = true;
        reqs.push_back(r);
    }
    for (const ScheduleRequest &r : reqs) {
        std::string line = service::renderRequestLine(r);
        service::ScheduleRequest back =
            service::parseRequestLine(line, 1);
        EXPECT_EQ(back.machine, r.machine) << line;
        EXPECT_EQ(back.scheduler, r.scheduler) << line;
        EXPECT_EQ(back.synth_ops, r.synth_ops) << line;
        EXPECT_EQ(back.seed, r.seed) << line;
        EXPECT_EQ(back.deadline_ms, r.deadline_ms) << line;
        EXPECT_EQ(back.bit_vector, r.bit_vector) << line;
        EXPECT_EQ(back.verify, r.verify) << line;
        EXPECT_EQ(back.transforms.cse, r.transforms.cse) << line;
        EXPECT_EQ(back.transforms.minimize, r.transforms.minimize)
            << line;
        EXPECT_EQ(back.transforms.hoist, r.transforms.hoist) << line;
        EXPECT_EQ(back.transforms.sort_or_trees,
                  r.transforms.sort_or_trees)
            << line;
    }
}

TEST(RequestGrammar, NetworkModeRejectsFileReferences)
{
    service::RequestParseOptions opts;
    opts.allow_files = false;
    EXPECT_THROW(
        service::parseRequestLine("source=/etc/passwd", 1, opts),
        MdesError);
    EXPECT_THROW(service::parseRequestLine(
                     "machine=K5 sasm=secret.sasm", 1, opts),
                 MdesError);
    // The same lines are fine when files are allowed (they fail later
    // on open, which is not the parser's concern here).
    EXPECT_NO_THROW(service::parseRequestLine("machine=K5", 1, opts));
}

/** Requests whose responses the socket tests compare in-process. */
std::vector<service::ScheduleRequest>
testMix()
{
    std::vector<service::ScheduleRequest> mix;
    const char *names[] = {"K5", "Pentium", "PA7100"};
    for (const char *name : names) {
        service::ScheduleRequest r;
        r.machine = name;
        r.synth_ops = 60;
        r.seed = 11;
        mix.push_back(r);
    }
    return mix;
}

TEST(NetServer, BinaryModeMatchesInProcessFingerprints)
{
    std::vector<service::ScheduleRequest> mix = testMix();

    service::ServiceConfig cfg;
    cfg.num_workers = 2;
    service::MdesService local(cfg);
    std::vector<service::ScheduleResponse> want = local.runBatch(mix);

    net::ServerConfig sc;
    sc.service.num_workers = 2;
    net::Server server(sc);
    server.start();

    net::BlockingClient client("127.0.0.1", server.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.ping());
    for (size_t i = 0; i < mix.size(); ++i) {
        net::NetResponse r = client.request(
            service::renderRequestLine(mix[i]), 0, net::routeKey(mix[i]));
        ASSERT_TRUE(r.ok()) << r.error << ": " << r.message;
        ASSERT_TRUE(want[i].ok());
        EXPECT_EQ(r.fingerprint, service::scheduleFingerprint(want[i]))
            << mix[i].machine;
        EXPECT_EQ(r.machine, want[i].machine);
    }
    server.stop();

    service::ServiceMetrics m = server.metrics();
    EXPECT_TRUE(m.net.enabled);
    EXPECT_EQ(m.net.accepted, 1u);
    EXPECT_EQ(m.net.closed, 1u);
    EXPECT_EQ(m.net.active, 0u);
    // Ping + 3 requests in; pong + 3 responses out.
    EXPECT_EQ(m.net.frames_in, 4u);
    EXPECT_EQ(m.net.frames_out, 4u);
    EXPECT_GT(m.net.bytes_in, 0u);
    EXPECT_GT(m.net.bytes_out, 0u);
    EXPECT_EQ(m.net.protocol_errors, 0u);
    EXPECT_TRUE(m.shedConsistent());
}

TEST(NetServer, JsonModeMatchesBinaryFingerprints)
{
    std::vector<service::ScheduleRequest> mix = testMix();

    net::ServerConfig sc;
    sc.service.num_workers = 2;
    net::Server server(sc);
    server.start();

    net::BlockingClient bin("127.0.0.1", server.port(), false);
    net::BlockingClient json("127.0.0.1", server.port(), true);
    ASSERT_TRUE(bin.connected());
    ASSERT_TRUE(json.connected());
    for (const service::ScheduleRequest &req : mix) {
        std::string line = service::renderRequestLine(req);
        net::NetResponse a = bin.request(line);
        net::NetResponse b = json.request(line);
        ASSERT_TRUE(a.ok()) << a.error;
        ASSERT_TRUE(b.ok()) << b.error;
        EXPECT_EQ(a.fingerprint, b.fingerprint) << line;
    }
    server.stop();
}

TEST(NetServer, OverloadShedsWithTypedErrorNeverSilently)
{
    net::ServerConfig sc;
    sc.service.num_workers = 1;
    sc.service.max_queue = 1; // shed almost everything concurrent
    net::Server server(sc);
    server.start();

    // Hammer from several connections at once so submissions overlap.
    constexpr int kClients = 4, kPerClient = 8;
    std::atomic<uint64_t> ok{0}, shed{0}, other{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            net::BlockingClient client("127.0.0.1", server.port());
            ASSERT_TRUE(client.connected());
            for (int i = 0; i < kPerClient; ++i) {
                service::ScheduleRequest r;
                r.machine = "K5";
                r.synth_ops = 150;
                r.seed = uint64_t(c * kPerClient + i + 1);
                net::NetResponse resp =
                    client.request(service::renderRequestLine(r));
                ASSERT_TRUE(resp.transport_ok);
                if (resp.code == service::ErrorCode::Ok)
                    ++ok;
                else if (resp.code == service::ErrorCode::Overloaded)
                    ++shed;
                else
                    ++other;
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    server.stop();

    // Every request got a typed outcome; only Ok or Overloaded occur.
    EXPECT_EQ(ok + shed + other, uint64_t(kClients * kPerClient));
    EXPECT_EQ(other, 0u);
    EXPECT_GT(ok, 0u);

    service::ServiceMetrics m = server.metrics();
    EXPECT_TRUE(m.shedConsistent());
    EXPECT_EQ(m.requests_shed, shed.load());
    EXPECT_EQ(m.net.shed, shed.load());
}

TEST(NetServer, FrameDeadlineExpiresAsTypedError)
{
    net::ServerConfig sc;
    sc.service.num_workers = 1;
    net::Server server(sc);
    server.start();

    net::BlockingClient client("127.0.0.1", server.port());
    ASSERT_TRUE(client.connected());

    // A deadline that has effectively already passed: the service's
    // deadline check fires before (or during) scheduling.
    service::ScheduleRequest r;
    r.machine = "SuperSPARC";
    r.synth_ops = 400;
    net::NetResponse first =
        client.request(service::renderRequestLine(r), 1);
    ASSERT_TRUE(first.transport_ok);
    // Either the request beat the 1ms deadline (tiny machine, warm CPU)
    // or it expired with the typed code - never a hang, never a reset.
    EXPECT_TRUE(first.code == service::ErrorCode::Ok ||
                first.code == service::ErrorCode::DeadlineExceeded)
        << first.error;

    // No deadline: the identical request must succeed.
    net::NetResponse second =
        client.request(service::renderRequestLine(r), 0);
    ASSERT_TRUE(second.transport_ok);
    EXPECT_EQ(second.code, service::ErrorCode::Ok) << second.error;
    server.stop();

    service::ServiceMetrics m = server.metrics();
    if (first.code == service::ErrorCode::DeadlineExceeded)
        EXPECT_GE(m.net.deadline_expired, 1u);
}

/** Plain blocking loopback connection to @p port (-1 on failure). */
int
rawConnect(uint16_t port)
{
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
        0) {
        close(fd);
        return -1;
    }
    return fd;
}

TEST(NetServer, HugeBadRequestEchoIsTruncatedNotFatal)
{
    net::ServerConfig sc;
    sc.service.num_workers = 1;
    net::Server server(sc);
    server.start();

    net::BlockingClient client("127.0.0.1", server.port());
    ASSERT_TRUE(client.connected());

    // A near-kMaxPayload unknown token of quote characters: the parse
    // error echoes the token and JSON escaping doubles every quote, so
    // an untruncated message could never fit back into a response
    // frame - encoding it would throw on the event-loop thread and
    // std::terminate the server. It must instead answer a bounded,
    // typed BadRequest.
    std::string huge(net::kMaxPayload - 64, '"');
    net::NetResponse bad = client.request(huge);
    ASSERT_TRUE(bad.transport_ok);
    EXPECT_EQ(bad.code, service::ErrorCode::BadRequest);
    EXPECT_LE(bad.message.size(), 600u) << "error echo not truncated";

    // Same connection and server both survived and still serve.
    service::ScheduleRequest r;
    r.machine = "K5";
    r.synth_ops = 40;
    r.seed = 5;
    net::NetResponse good =
        client.request(service::renderRequestLine(r));
    ASSERT_TRUE(good.transport_ok);
    EXPECT_EQ(good.code, service::ErrorCode::Ok) << good.error;
    server.stop();
}

TEST(NetServer, PongFloodPausesReadsInsteadOfBufferingUnbounded)
{
    net::ServerConfig sc;
    sc.service.num_workers = 1;
    sc.write_high_water = 1024; // tiny: a ping burst must trip it
    net::Server server(sc);
    server.start();

    int fd = rawConnect(server.port());
    ASSERT_GE(fd, 0);
    constexpr int kPings = 1000;
    std::string burst;
    for (int i = 0; i < kPings; ++i) {
        Frame f;
        f.type = FrameType::Ping;
        f.id = uint64_t(i + 1);
        burst += net::encodeFrame(f);
    }
    // Write the whole burst before reading anything: pongs pile up in
    // the server's outbound buffer, which must cross the high-water
    // mark and pause reads (pings produce no service completion, so
    // only the enqueue/flush paths can pause and resume).
    size_t off = 0;
    while (off < burst.size()) {
        ssize_t n = send(fd, burst.data() + off, burst.size() - off, 0);
        ASSERT_GT(n, 0);
        off += size_t(n);
    }
    // Drain: every ping still gets its pong; a connection wedged in
    // the paused state would starve this loop at EOF/timeout.
    FrameDecoder dec;
    char buf[4096];
    int pongs = 0;
    while (pongs < kPings) {
        Frame fr;
        FrameDecoder::Status st;
        while ((st = dec.next(&fr)) == FrameDecoder::Status::Ready) {
            EXPECT_EQ(fr.type, FrameType::Pong);
            ++pongs;
        }
        ASSERT_EQ(st, FrameDecoder::Status::NeedMore);
        if (pongs >= kPings)
            break;
        ssize_t n = recv(fd, buf, sizeof(buf), 0);
        ASSERT_GT(n, 0) << "connection wedged after backpressure pause";
        dec.feed(buf, size_t(n));
    }
    EXPECT_EQ(pongs, kPings);
    close(fd);
    server.stop();

    service::ServiceMetrics m = server.metrics();
    EXPECT_EQ(m.net.frames_in, uint64_t(kPings));
    EXPECT_EQ(m.net.frames_out, uint64_t(kPings));
    EXPECT_GE(m.net.backpressure_stalls, 1u);
}

TEST(NetServer, JsonWireIdsSurviveAbove53Bits)
{
    net::ServerConfig sc;
    sc.service.num_workers = 1;
    net::Server server(sc);
    server.start();

    int fd = rawConnect(server.port());
    ASSERT_GE(fd, 0);
    // 2^64-1 is not representable in a double; the id must still echo
    // bit-exactly (both ends parse the literal token, not the double).
    const std::string line =
        "{\"id\":18446744073709551615,"
        "\"req\":\"machine=K5 ops=30\"}\n";
    ASSERT_EQ(send(fd, line.data(), line.size(), 0),
              ssize_t(line.size()));
    std::string got;
    char buf[4096];
    while (got.find('\n') == std::string::npos) {
        ssize_t n = recv(fd, buf, sizeof(buf), 0);
        ASSERT_GT(n, 0);
        got.append(buf, size_t(n));
    }
    close(fd);
    net::NetResponse r =
        net::parseResponseJson(got.substr(0, got.find('\n')));
    EXPECT_EQ(r.code, service::ErrorCode::Ok) << r.message;
    EXPECT_EQ(r.id, uint64_t(18446744073709551615ull));
    server.stop();
}

TEST(NetServer, ProtocolViolationGetsErrorFrameThenClose)
{
    net::ServerConfig sc;
    sc.service.num_workers = 1;
    net::Server server(sc);
    server.start();

    net::BlockingClient probe("127.0.0.1", server.port());
    ASSERT_TRUE(probe.connected());
    ASSERT_TRUE(probe.ping());

    // Hand-roll a corrupted frame: good magic, bad version.
    std::string wire = net::encodeFrame(Frame{});
    wire[4] = 3;
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)),
              0);
    ASSERT_EQ(send(fd, wire.data(), wire.size(), 0), ssize_t(wire.size()));
    // The server answers with an Error frame naming the violation and
    // closes; read until EOF and decode what came back.
    std::string got;
    char buf[4096];
    ssize_t n;
    while ((n = recv(fd, buf, sizeof(buf), 0)) > 0)
        got.append(buf, size_t(n));
    close(fd);

    FrameDecoder dec;
    dec.feed(got.data(), got.size());
    Frame resp;
    ASSERT_EQ(dec.next(&resp), FrameDecoder::Status::Ready);
    EXPECT_EQ(resp.type, FrameType::Error);
    EXPECT_NE(resp.payload.find("bad-version"), std::string::npos)
        << resp.payload;

    // The violation never took the server down.
    EXPECT_TRUE(probe.ping());
    server.stop();
    EXPECT_GE(server.metrics().net.protocol_errors, 1u);
}

TEST(NetServer, StatFrameReturnsTheLiveStatsDocument)
{
    net::ServerConfig sc;
    sc.service.num_workers = 2;
    net::Server server(sc);
    server.start();

    net::BlockingClient client("127.0.0.1", server.port());
    ASSERT_TRUE(client.connected());
    for (const service::ScheduleRequest &req : testMix())
        ASSERT_TRUE(client.request(service::renderRequestLine(req)).ok());

    const std::string doc = client.stats();
    ASSERT_FALSE(doc.empty());
    service::StatSnapshot snap = service::parseStats(doc);
    EXPECT_EQ(snap.shards, 1u);
    EXPECT_EQ(snap.requests, 3u);
    EXPECT_EQ(snap.ok, 3u);
    EXPECT_EQ(snap.lifetime_total.count, 3u);
    EXPECT_TRUE(snap.net.enabled);
    EXPECT_GE(snap.net.stats_requests, 1u);
    // The requests just made are inside the 60s window.
    EXPECT_EQ(snap.windows.over(snap.now_s, 60).requests, 3u);

    // The JSON-lines wire serves the identical schema via {"op":"stats"}.
    net::BlockingClient json("127.0.0.1", server.port(), true);
    ASSERT_TRUE(json.connected());
    const std::string jdoc = json.stats();
    ASSERT_FALSE(jdoc.empty());
    service::StatSnapshot jsnap = service::parseStats(jdoc);
    EXPECT_EQ(jsnap.requests, 3u);
    EXPECT_GE(jsnap.net.stats_requests, 2u);
    server.stop();
}

TEST(NetServer, StatFloodCoalescesInsteadOfBufferingUnbounded)
{
    net::ServerConfig sc;
    sc.service.num_workers = 1;
    net::Server server(sc);
    server.start();

    int fd = rawConnect(server.port());
    ASSERT_GE(fd, 0);
    // Write a burst of Stat frames without reading anything. The
    // server keeps at most one stats response buffered per connection
    // and coalesces the rest, so its outbound buffer stays bounded no
    // matter how fast a dashboard polls.
    constexpr int kPolls = 400;
    std::string burst;
    for (int i = 0; i < kPolls; ++i) {
        Frame f;
        f.type = FrameType::Stat;
        f.id = uint64_t(i + 1);
        burst += net::encodeFrame(f);
    }
    size_t off = 0;
    while (off < burst.size()) {
        ssize_t n = send(fd, burst.data() + off, burst.size() - off, 0);
        ASSERT_GT(n, 0);
        off += size_t(n);
    }
    // Drain: the final answer carries the *latest* poll's id (the
    // coalesced waiters were dropped, not queued). Every received
    // payload is a well-formed stats document.
    FrameDecoder dec;
    char buf[8192];
    int responses = 0;
    for (;;) {
        Frame fr;
        FrameDecoder::Status st;
        bool saw_last = false;
        while ((st = dec.next(&fr)) == FrameDecoder::Status::Ready) {
            ASSERT_EQ(fr.type, FrameType::Response);
            ++responses;
            EXPECT_NO_THROW(service::parseStats(fr.payload));
            if (fr.id == uint64_t(kPolls))
                saw_last = true;
        }
        ASSERT_EQ(st, FrameDecoder::Status::NeedMore);
        if (saw_last)
            break;
        ssize_t n = recv(fd, buf, sizeof(buf), 0);
        ASSERT_GT(n, 0) << "connection wedged during stat flood";
        dec.feed(buf, size_t(n));
    }
    close(fd);
    server.stop();

    // Far fewer responses than polls: the flood was coalesced.
    EXPECT_LT(responses, kPolls / 2) << "stat flood was not coalesced";
    service::ServiceMetrics m = server.metrics();
    EXPECT_EQ(m.net.stats_requests, uint64_t(kPolls));
    EXPECT_GE(m.net.stats_coalesced, 1u);
    EXPECT_EQ(m.net.stats_coalesced + uint64_t(responses),
              uint64_t(kPolls));
}

TEST(NetServer, PeerClosingMidResponseNeverKillsTheServer)
{
    // SIGPIPE regression (DESIGN.md §15): a peer that writes a request
    // and slams the connection shut forces the server to write into a
    // dead socket. Without MSG_NOSIGNAL on every send that raises
    // SIGPIPE and kills the process; with it the write fails with
    // EPIPE and only that connection dies.
    net::ServerConfig sc;
    sc.service.num_workers = 1;
    net::Server server(sc);
    server.start();

    service::ScheduleRequest r;
    r.machine = "K5";
    r.synth_ops = 80;
    r.seed = 3;
    Frame f;
    f.type = FrameType::Request;
    f.payload = service::renderRequestLine(r);
    for (int i = 0; i < 8; ++i) {
        int fd = rawConnect(server.port());
        ASSERT_GE(fd, 0);
        f.id = uint64_t(i + 1);
        std::string wire = net::encodeFrame(f);
        ASSERT_EQ(send(fd, wire.data(), wire.size(), 0),
                  ssize_t(wire.size()));
        // Close without reading: the response lands on a dead socket.
        close(fd);
    }

    // The server (this process) is alive and still answers.
    net::BlockingClient probe("127.0.0.1", server.port());
    ASSERT_TRUE(probe.connected());
    EXPECT_TRUE(probe.ping());
    net::NetResponse resp =
        probe.request(service::renderRequestLine(r));
    ASSERT_TRUE(resp.transport_ok);
    EXPECT_EQ(resp.code, service::ErrorCode::Ok) << resp.error;
    server.stop();
}

TEST(NetServer, HealthOpReportsReadyInBothWireModes)
{
    net::ServerConfig sc;
    sc.service.num_workers = 1;
    net::Server server(sc);
    server.start();

    net::BlockingClient bin("127.0.0.1", server.port(), false);
    net::BlockingClient json("127.0.0.1", server.port(), true);
    ASSERT_TRUE(bin.connected());
    ASSERT_TRUE(json.connected());
    EXPECT_NE(bin.health().find("\"health\":\"ready\""),
              std::string::npos);
    EXPECT_NE(json.health().find("\"health\":\"ready\""),
              std::string::npos);
    EXPECT_FALSE(server.draining());
    server.stop();
}

TEST(NetServer, DrainFinishesInFlightShedsNewAndFlipsHealth)
{
    net::ServerConfig sc;
    sc.service.num_workers = 1;
    net::Server server(sc);
    server.start();

    // Conn A: a request in flight when the drain begins (written raw
    // so this thread does not block on the response).
    int a = rawConnect(server.port());
    ASSERT_GE(a, 0);
    service::ScheduleRequest slow;
    slow.machine = "K5";
    slow.synth_ops = 2000;
    slow.seed = 9;
    Frame f;
    f.type = FrameType::Request;
    f.id = 77;
    f.payload = service::renderRequestLine(slow);
    std::string wire = net::encodeFrame(f);
    ASSERT_EQ(send(a, wire.data(), wire.size(), 0), ssize_t(wire.size()));

    // Conn B: opened before the drain (the listen socket closes with
    // it), polling health across the flip.
    net::BlockingClient b("127.0.0.1", server.port());
    ASSERT_TRUE(b.connected());
    EXPECT_NE(b.health().find("\"ready\""), std::string::npos);

    server.beginDrain(10000);
    EXPECT_TRUE(server.draining());
    // Health answers on the live connection and reports the flip.
    EXPECT_NE(b.health().find("\"draining\""), std::string::npos);

    // A new request after the flip is shed with the typed code.
    service::ScheduleRequest fast;
    fast.machine = "K5";
    fast.synth_ops = 40;
    net::NetResponse shed =
        b.request(service::renderRequestLine(fast));
    ASSERT_TRUE(shed.transport_ok);
    EXPECT_EQ(shed.code, service::ErrorCode::Draining) << shed.error;

    // The in-flight request still completes Ok.
    FrameDecoder dec;
    char buf[16384];
    net::NetResponse inflight;
    bool got = false;
    while (!got) {
        Frame fr;
        FrameDecoder::Status st;
        while ((st = dec.next(&fr)) == FrameDecoder::Status::Ready) {
            if (fr.type == FrameType::Response && fr.id == 77) {
                inflight = net::parseResponseJson(fr.payload);
                got = true;
            }
        }
        if (got)
            break;
        ssize_t n = recv(a, buf, sizeof(buf), 0);
        ASSERT_GT(n, 0) << "in-flight response lost in drain";
        dec.feed(buf, size_t(n));
    }
    EXPECT_EQ(inflight.code, service::ErrorCode::Ok) << inflight.error;
    close(a);

    server.stop();
    service::ServiceMetrics m = server.metrics();
    EXPECT_GE(m.net.draining_shed, 1u);
}

TEST(NetServer, DrainDeadlineEvictsStuckClients)
{
    net::ServerConfig sc;
    sc.service.num_workers = 1;
    net::Server server(sc);
    server.start();

    // A client that connects and then does nothing: it will neither
    // finish work nor close, so only the deadline can end the drain.
    int stuck = rawConnect(server.port());
    ASSERT_GE(stuck, 0);
    // Give the loop a moment to accept before the listen socket goes.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    auto t0 = std::chrono::steady_clock::now();
    server.beginDrain(300);
    server.waitUntilStopped();
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    // Bounded: well past the deadline is a hang, well under it means
    // the deadline was ignored and the loop exited for another reason.
    EXPECT_LT(elapsed, 5000) << "drain did not respect its deadline";
    close(stuck);
    server.stop();
}

} // namespace
} // namespace mdes
