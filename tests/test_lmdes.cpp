/**
 * @file
 * Low-level representation tests: lowering (scalar and bit-vector check
 * encodings), sharing, the memory-accounting model, and binary
 * serialization round-trips with corruption rejection.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "hmdes/compile.h"
#include "lmdes/low_mdes.h"
#include "machines/machines.h"
#include "random_mdes.h"
#include "support/rng.h"

namespace mdes {
namespace {

using lmdes::LowerOptions;
using lmdes::LowMdes;

Mdes
twoCycleMachine()
{
    // One option with usages at times 0, 0, 1 - the bit-vector encoding
    // must merge the two time-0 usages into one check word.
    Mdes m("two");
    ResourceId r = m.addResourceClass("R", 3);
    OptionId o = m.addOption({{{0, r}, {0, r + 1}, {1, r + 2}}});
    OrTreeId t = m.addOrTree({"T", {o}});
    TreeId tree = m.addTree({"Tbl", {t}});
    m.addOpClass({"OP", tree, 2, kInvalidId, "test"});
    return m;
}

TEST(Lower, ScalarOneCheckPerUsage)
{
    Mdes m = twoCycleMachine();
    LowMdes low = LowMdes::lower(m, {});
    ASSERT_EQ(low.options().size(), 1u);
    EXPECT_EQ(low.options()[0].num_checks, 3u);
    EXPECT_FALSE(low.packed());
    EXPECT_EQ(low.checks()[0].mask, uint64_t(1) << 0);
    EXPECT_EQ(low.checks()[1].mask, uint64_t(1) << 1);
}

TEST(Lower, BitVectorMergesSameCycle)
{
    Mdes m = twoCycleMachine();
    LowerOptions opts;
    opts.pack_bit_vector = true;
    LowMdes low = LowMdes::lower(m, opts);
    ASSERT_EQ(low.options().size(), 1u);
    EXPECT_EQ(low.options()[0].num_checks, 2u);
    EXPECT_TRUE(low.packed());
    EXPECT_EQ(low.checks()[0].slot, 0);
    EXPECT_EQ(low.checks()[0].mask, (uint64_t(1) << 0) | (uint64_t(1) << 1));
    EXPECT_EQ(low.checks()[1].slot, 1);
}

TEST(Lower, BitVectorPreservesFirstAppearanceOrder)
{
    // Usage order (post-sorting transform) must survive packing: the
    // first time seen keeps its position.
    Mdes m("o");
    ResourceId r = m.addResourceClass("R", 3);
    OptionId o = m.addOption({{{1, r}, {0, r + 1}, {1, r + 2}}});
    OrTreeId t = m.addOrTree({"T", {o}});
    TreeId tree = m.addTree({"Tbl", {t}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    LowerOptions opts;
    opts.pack_bit_vector = true;
    LowMdes low = LowMdes::lower(m, opts);
    ASSERT_EQ(low.options()[0].num_checks, 2u);
    EXPECT_EQ(low.checks()[low.options()[0].first_check].slot, 1);
    EXPECT_EQ(low.checks()[low.options()[0].first_check + 1].slot, 0);
}

TEST(Lower, SharedEntitiesStoredOnce)
{
    // Two tables referencing the same OR-tree share its lowered record
    // and its option-reference list.
    Mdes m("share");
    ResourceId r = m.addResourceClass("R", 2);
    std::vector<OptionId> opts = {m.addOption({{{0, r}}}),
                                  m.addOption({{{0, r + 1}}})};
    OrTreeId shared = m.addOrTree({"S", opts});
    TreeId t1 = m.addTree({"T1", {shared}});
    TreeId t2 = m.addTree({"T2", {shared}});
    m.addOpClass({"A", t1, 1, kInvalidId, ""});
    m.addOpClass({"B", t2, 1, kInvalidId, ""});

    LowMdes low = LowMdes::lower(m, {});
    EXPECT_EQ(low.orTrees().size(), 1u);
    EXPECT_EQ(low.optionRefs().size(), 2u);
    EXPECT_EQ(low.trees().size(), 2u);
    EXPECT_EQ(low.orRefs().size(), 2u);
}

TEST(Lower, MemoryAccountingModel)
{
    Mdes m = twoCycleMachine();
    LowMdes low = LowMdes::lower(m, {});
    auto mem = low.memory();
    EXPECT_EQ(mem.check_bytes, 3u * 8);
    EXPECT_EQ(mem.option_bytes, 1u * 8);
    EXPECT_EQ(mem.option_ref_bytes, 1u * 4);
    EXPECT_EQ(mem.or_tree_bytes, 1u * 8);
    EXPECT_EQ(mem.or_ref_bytes, 1u * 4);
    EXPECT_EQ(mem.tree_bytes, 1u * 8);
    EXPECT_EQ(mem.total(), 24u + 8 + 4 + 8 + 4 + 8);
}

TEST(Lower, WideMachinesUseMultipleSlotWords)
{
    // 100 resource instances: two RU-map words per cycle; usages in
    // different words probe different slots even at the same time.
    Mdes m("wide");
    ResourceId r = m.addResourceClass("R", 100);
    OptionId o = m.addOption({{{0, r + 3}, {0, r + 70}, {1, r + 70}}});
    OrTreeId t = m.addOrTree({"T", {o}});
    TreeId tree = m.addTree({"Tbl", {t}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    lmdes::LowerOptions opts;
    opts.pack_bit_vector = true;
    LowMdes low = LowMdes::lower(m, opts);
    EXPECT_EQ(low.slotWords(), 2u);
    // Same time but different words: no merging across words.
    ASSERT_EQ(low.options()[0].num_checks, 3u);
    EXPECT_EQ(low.checks()[0].slot, 0); // time 0, word 0
    EXPECT_EQ(low.checks()[0].mask, uint64_t(1) << 3);
    EXPECT_EQ(low.checks()[1].slot, 1); // time 0, word 1
    EXPECT_EQ(low.checks()[1].mask, uint64_t(1) << (70 - 64));
    EXPECT_EQ(low.checks()[2].slot, 3); // time 1, word 1
}

TEST(Lower, CountsMatchStructuredModel)
{
    for (const auto *info : machines::all()) {
        SCOPED_TRACE(info->name);
        Mdes m = hmdes::compileOrThrow(info->source);
        LowMdes low = LowMdes::lower(m, {});
        ASSERT_EQ(low.trees().size(), m.trees().size());
        for (TreeId t = 0; t < m.trees().size(); ++t) {
            EXPECT_EQ(low.expandedOptionCount(t),
                      m.expandedOptionCount(t));
            EXPECT_EQ(low.leafOptionCount(t), m.leafOptionCount(t));
        }
        EXPECT_EQ(low.opClasses().size(), m.opClasses().size());
        EXPECT_EQ(low.findOpClass(m.opClasses()[0].name), 0u);
        EXPECT_EQ(low.findOpClass("NO_SUCH_OP"), kInvalidId);
    }
}

// ------------------------------------------------------------ Serialization

TEST(Serialize, RoundTripsEveryMachine)
{
    for (const auto *info : machines::all()) {
        for (bool packed : {false, true}) {
            SCOPED_TRACE(info->name + (packed ? "/bv" : "/scalar"));
            Mdes m = hmdes::compileOrThrow(info->source);
            LowerOptions opts;
            opts.pack_bit_vector = packed;
            LowMdes low = LowMdes::lower(m, opts);

            std::stringstream buf;
            low.save(buf);
            LowMdes loaded = LowMdes::load(buf);
            EXPECT_EQ(loaded, low);
        }
    }
}

TEST(Serialize, RejectsBadMagic)
{
    std::stringstream buf;
    buf << "NOPE additional data";
    EXPECT_THROW(LowMdes::load(buf), MdesError);
}

TEST(Serialize, RejectsTruncation)
{
    Mdes m = twoCycleMachine();
    LowMdes low = LowMdes::lower(m, {});
    std::stringstream buf;
    low.save(buf);
    std::string data = buf.str();
    for (size_t cut : {size_t(3), data.size() / 2, data.size() - 2}) {
        std::stringstream cut_buf(data.substr(0, cut));
        EXPECT_THROW(LowMdes::load(cut_buf), MdesError) << "cut " << cut;
    }
}

TEST(Serialize, RejectsCorruptReferences)
{
    Mdes m = twoCycleMachine();
    LowMdes low = LowMdes::lower(m, {});
    std::stringstream buf;
    low.save(buf);
    std::string data = buf.str();
    // Flip bytes throughout the stream; every mutation must either load
    // to a *valid* structure or throw - never crash.
    for (size_t i = 8; i < data.size(); i += 7) {
        std::string mutated = data;
        mutated[i] = char(mutated[i] ^ 0x5A);
        std::stringstream mbuf(mutated);
        try {
            LowMdes loaded = LowMdes::load(mbuf);
            // Loaded fine: all references must be in range.
            for (const auto &oc : loaded.opClasses())
                ASSERT_LT(oc.tree, loaded.trees().size());
        } catch (const MdesError &) {
            // Rejection is the expected outcome.
        }
    }
}

TEST(Serialize, BadMagicReportsFoundAndExpected)
{
    std::stringstream buf;
    buf << "NOPE additional data";
    try {
        LowMdes::load(buf);
        FAIL() << "bad magic accepted";
    } catch (const MdesError &e) {
        EXPECT_NE(std::string(e.what()).find("NOPE"), std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("LMDS"), std::string::npos)
            << e.what();
    }
}

TEST(Serialize, VersionMismatchReportsFoundAndExpected)
{
    Mdes m = twoCycleMachine();
    std::stringstream buf;
    LowMdes::lower(m, {}).save(buf);
    std::string data = buf.str();
    uint32_t bogus = 99;
    std::memcpy(&data[4], &bogus, sizeof(bogus));
    std::stringstream patched(data);
    try {
        LowMdes::load(patched);
        FAIL() << "version 99 accepted";
    } catch (const MdesError &e) {
        EXPECT_NE(std::string(e.what()).find("99"), std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("6"), std::string::npos)
            << e.what();
    }
}

TEST(Serialize, ChecksumMismatchReportsStoredAndComputed)
{
    Mdes m = twoCycleMachine();
    std::stringstream buf;
    LowMdes::lower(m, {}).save(buf);
    std::string data = buf.str();
    // Flip one payload byte (past the 16-byte header, before the
    // 8-byte checksum trailer): the checksum check must fire before
    // any structural parsing can get confused.
    data[20] = char(data[20] ^ 0xFF);
    std::stringstream patched(data);
    try {
        LowMdes::load(patched);
        FAIL() << "corrupt payload accepted";
    } catch (const MdesError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("checksum"), std::string::npos) << what;
        EXPECT_NE(what.find("stored"), std::string::npos) << what;
        EXPECT_NE(what.find("computed"), std::string::npos) << what;
    }
}

TEST(Serialize, FuzzRoundTripNeverCrashes)
{
    // Random machines, random corruption: every truncation and every
    // bit flip must either throw MdesError or load to a structurally
    // valid description - never crash, never allocate absurdly.
    Rng rng(0xF00DF00Dull);
    for (int iter = 0; iter < 20; ++iter) {
        Mdes m = testing::randomMdes(rng);
        LowerOptions opts;
        opts.pack_bit_vector = rng.chance(0.5);
        LowMdes low = LowMdes::lower(m, opts);
        std::stringstream buf;
        low.save(buf);
        std::string data = buf.str();

        {
            std::stringstream clean(data);
            EXPECT_EQ(LowMdes::load(clean), low);
        }

        for (int mut = 0; mut < 24; ++mut) {
            std::string mutated = data;
            if (rng.chance(0.5)) {
                mutated.resize(rng.below(data.size()));
            } else {
                size_t at = rng.below(mutated.size());
                mutated[at] = char(uint8_t(mutated[at]) ^
                                   uint8_t(1u << rng.below(8)));
            }
            std::stringstream mbuf(mutated);
            try {
                LowMdes loaded = LowMdes::load(mbuf);
                for (const auto &oc : loaded.opClasses())
                    ASSERT_LT(oc.tree, loaded.trees().size());
            } catch (const MdesError &) {
                // Rejection is the expected outcome.
            }
        }
    }
}

} // namespace
} // namespace mdes
