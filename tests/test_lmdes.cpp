/**
 * @file
 * Low-level representation tests: lowering (scalar and bit-vector check
 * encodings), sharing, the memory-accounting model, and binary
 * serialization round-trips with corruption rejection.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <sstream>

#include "hmdes/compile.h"
#include "lmdes/image.h"
#include "lmdes/low_mdes.h"
#include "machines/machines.h"
#include "random_mdes.h"
#include "support/rng.h"

namespace mdes {
namespace {

using lmdes::LowerOptions;
using lmdes::LowMdes;

Mdes
twoCycleMachine()
{
    // One option with usages at times 0, 0, 1 - the bit-vector encoding
    // must merge the two time-0 usages into one check word.
    Mdes m("two");
    ResourceId r = m.addResourceClass("R", 3);
    OptionId o = m.addOption({{{0, r}, {0, r + 1}, {1, r + 2}}});
    OrTreeId t = m.addOrTree({"T", {o}});
    TreeId tree = m.addTree({"Tbl", {t}});
    m.addOpClass({"OP", tree, 2, kInvalidId, "test"});
    return m;
}

TEST(Lower, ScalarOneCheckPerUsage)
{
    Mdes m = twoCycleMachine();
    LowMdes low = LowMdes::lower(m, {});
    ASSERT_EQ(low.options().size(), 1u);
    EXPECT_EQ(low.options()[0].num_checks, 3u);
    EXPECT_FALSE(low.packed());
    EXPECT_EQ(low.checks()[0].mask, uint64_t(1) << 0);
    EXPECT_EQ(low.checks()[1].mask, uint64_t(1) << 1);
}

TEST(Lower, BitVectorMergesSameCycle)
{
    Mdes m = twoCycleMachine();
    LowerOptions opts;
    opts.pack_bit_vector = true;
    LowMdes low = LowMdes::lower(m, opts);
    ASSERT_EQ(low.options().size(), 1u);
    EXPECT_EQ(low.options()[0].num_checks, 2u);
    EXPECT_TRUE(low.packed());
    EXPECT_EQ(low.checks()[0].slot, 0);
    EXPECT_EQ(low.checks()[0].mask, (uint64_t(1) << 0) | (uint64_t(1) << 1));
    EXPECT_EQ(low.checks()[1].slot, 1);
}

TEST(Lower, BitVectorPreservesFirstAppearanceOrder)
{
    // Usage order (post-sorting transform) must survive packing: the
    // first time seen keeps its position.
    Mdes m("o");
    ResourceId r = m.addResourceClass("R", 3);
    OptionId o = m.addOption({{{1, r}, {0, r + 1}, {1, r + 2}}});
    OrTreeId t = m.addOrTree({"T", {o}});
    TreeId tree = m.addTree({"Tbl", {t}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    LowerOptions opts;
    opts.pack_bit_vector = true;
    LowMdes low = LowMdes::lower(m, opts);
    ASSERT_EQ(low.options()[0].num_checks, 2u);
    EXPECT_EQ(low.checks()[low.options()[0].first_check].slot, 1);
    EXPECT_EQ(low.checks()[low.options()[0].first_check + 1].slot, 0);
}

TEST(Lower, SharedEntitiesStoredOnce)
{
    // Two tables referencing the same OR-tree share its lowered record
    // and its option-reference list.
    Mdes m("share");
    ResourceId r = m.addResourceClass("R", 2);
    std::vector<OptionId> opts = {m.addOption({{{0, r}}}),
                                  m.addOption({{{0, r + 1}}})};
    OrTreeId shared = m.addOrTree({"S", opts});
    TreeId t1 = m.addTree({"T1", {shared}});
    TreeId t2 = m.addTree({"T2", {shared}});
    m.addOpClass({"A", t1, 1, kInvalidId, ""});
    m.addOpClass({"B", t2, 1, kInvalidId, ""});

    LowMdes low = LowMdes::lower(m, {});
    EXPECT_EQ(low.orTrees().size(), 1u);
    EXPECT_EQ(low.optionRefs().size(), 2u);
    EXPECT_EQ(low.trees().size(), 2u);
    EXPECT_EQ(low.orRefs().size(), 2u);
}

TEST(Lower, MemoryAccountingModel)
{
    Mdes m = twoCycleMachine();
    LowMdes low = LowMdes::lower(m, {});
    auto mem = low.memory();
    EXPECT_EQ(mem.check_bytes, 3u * 8);
    EXPECT_EQ(mem.option_bytes, 1u * 8);
    EXPECT_EQ(mem.option_ref_bytes, 1u * 4);
    EXPECT_EQ(mem.or_tree_bytes, 1u * 8);
    EXPECT_EQ(mem.or_ref_bytes, 1u * 4);
    EXPECT_EQ(mem.tree_bytes, 1u * 8);
    EXPECT_EQ(mem.total(), 24u + 8 + 4 + 8 + 4 + 8);
}

TEST(Lower, WideMachinesUseMultipleSlotWords)
{
    // 100 resource instances: two RU-map words per cycle; usages in
    // different words probe different slots even at the same time.
    Mdes m("wide");
    ResourceId r = m.addResourceClass("R", 100);
    OptionId o = m.addOption({{{0, r + 3}, {0, r + 70}, {1, r + 70}}});
    OrTreeId t = m.addOrTree({"T", {o}});
    TreeId tree = m.addTree({"Tbl", {t}});
    m.addOpClass({"OP", tree, 1, kInvalidId, ""});

    lmdes::LowerOptions opts;
    opts.pack_bit_vector = true;
    LowMdes low = LowMdes::lower(m, opts);
    EXPECT_EQ(low.slotWords(), 2u);
    // Same time but different words: no merging across words.
    ASSERT_EQ(low.options()[0].num_checks, 3u);
    EXPECT_EQ(low.checks()[0].slot, 0); // time 0, word 0
    EXPECT_EQ(low.checks()[0].mask, uint64_t(1) << 3);
    EXPECT_EQ(low.checks()[1].slot, 1); // time 0, word 1
    EXPECT_EQ(low.checks()[1].mask, uint64_t(1) << (70 - 64));
    EXPECT_EQ(low.checks()[2].slot, 3); // time 1, word 1
}

TEST(Lower, CountsMatchStructuredModel)
{
    for (const auto *info : machines::all()) {
        SCOPED_TRACE(info->name);
        Mdes m = hmdes::compileOrThrow(info->source);
        LowMdes low = LowMdes::lower(m, {});
        ASSERT_EQ(low.trees().size(), m.trees().size());
        for (TreeId t = 0; t < m.trees().size(); ++t) {
            EXPECT_EQ(low.expandedOptionCount(t),
                      m.expandedOptionCount(t));
            EXPECT_EQ(low.leafOptionCount(t), m.leafOptionCount(t));
        }
        EXPECT_EQ(low.opClasses().size(), m.opClasses().size());
        EXPECT_EQ(low.findOpClass(m.opClasses()[0].name), 0u);
        EXPECT_EQ(low.findOpClass("NO_SUCH_OP"), kInvalidId);
    }
}

// ------------------------------------------------------------ Serialization

TEST(Serialize, RoundTripsEveryMachine)
{
    for (const auto *info : machines::all()) {
        for (bool packed : {false, true}) {
            SCOPED_TRACE(info->name + (packed ? "/bv" : "/scalar"));
            Mdes m = hmdes::compileOrThrow(info->source);
            LowerOptions opts;
            opts.pack_bit_vector = packed;
            LowMdes low = LowMdes::lower(m, opts);

            std::stringstream buf;
            low.save(buf);
            LowMdes loaded = LowMdes::load(buf);
            EXPECT_EQ(loaded, low);
        }
    }
}

TEST(Serialize, RejectsBadMagic)
{
    std::stringstream buf;
    buf << "NOPE additional data";
    EXPECT_THROW(LowMdes::load(buf), MdesError);
}

TEST(Serialize, RejectsTruncation)
{
    Mdes m = twoCycleMachine();
    LowMdes low = LowMdes::lower(m, {});
    std::stringstream buf;
    low.save(buf);
    std::string data = buf.str();
    for (size_t cut : {size_t(3), data.size() / 2, data.size() - 2}) {
        std::stringstream cut_buf(data.substr(0, cut));
        EXPECT_THROW(LowMdes::load(cut_buf), MdesError) << "cut " << cut;
    }
}

TEST(Serialize, RejectsCorruptReferences)
{
    Mdes m = twoCycleMachine();
    LowMdes low = LowMdes::lower(m, {});
    std::stringstream buf;
    low.save(buf);
    std::string data = buf.str();
    // Flip bytes throughout the stream; every mutation must either load
    // to a *valid* structure or throw - never crash.
    for (size_t i = 8; i < data.size(); i += 7) {
        std::string mutated = data;
        mutated[i] = char(mutated[i] ^ 0x5A);
        std::stringstream mbuf(mutated);
        try {
            LowMdes loaded = LowMdes::load(mbuf);
            // Loaded fine: all references must be in range.
            for (const auto &oc : loaded.opClasses())
                ASSERT_LT(oc.tree, loaded.trees().size());
        } catch (const MdesError &) {
            // Rejection is the expected outcome.
        }
    }
}

TEST(Serialize, BadMagicReportsFoundAndExpected)
{
    std::stringstream buf;
    buf << "NOPE additional data";
    try {
        LowMdes::load(buf);
        FAIL() << "bad magic accepted";
    } catch (const MdesError &e) {
        EXPECT_NE(std::string(e.what()).find("NOPE"), std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("LMDS"), std::string::npos)
            << e.what();
    }
}

TEST(Serialize, VersionMismatchReportsFoundAndExpected)
{
    Mdes m = twoCycleMachine();
    std::stringstream buf;
    LowMdes::lower(m, {}).save(buf);
    std::string data = buf.str();
    uint32_t bogus = 99;
    std::memcpy(&data[4], &bogus, sizeof(bogus));
    std::stringstream patched(data);
    try {
        LowMdes::load(patched);
        FAIL() << "version 99 accepted";
    } catch (const MdesError &e) {
        EXPECT_NE(std::string(e.what()).find("99"), std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("7"), std::string::npos)
            << e.what();
    }
}

TEST(Serialize, VersionMismatchIsDistinguishableFromCorruption)
{
    // The store decides stale-vs-quarantine on this distinction: an
    // otherwise intact image from another release must throw the
    // *version* error type, not plain MdesError.
    Mdes m = twoCycleMachine();
    std::stringstream buf;
    LowMdes::lower(m, {}).save(buf);
    std::string data = buf.str();
    uint32_t old_version = 6;
    std::memcpy(&data[4], &old_version, sizeof(old_version));
    std::stringstream patched(data);
    EXPECT_THROW(LowMdes::load(patched), lmdes::MdesVersionError);
}

TEST(Serialize, ChecksumMismatchReportsStoredAndComputed)
{
    Mdes m = twoCycleMachine();
    std::stringstream buf;
    LowMdes::lower(m, {}).save(buf);
    std::string data = buf.str();
    // Flip one payload byte (past the 16-byte header, before the
    // 8-byte checksum trailer): the checksum check must fire before
    // any structural parsing can get confused.
    data[20] = char(data[20] ^ 0xFF);
    std::stringstream patched(data);
    try {
        LowMdes::load(patched);
        FAIL() << "corrupt payload accepted";
    } catch (const MdesError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("checksum"), std::string::npos) << what;
        EXPECT_NE(what.find("stored"), std::string::npos) << what;
        EXPECT_NE(what.find("computed"), std::string::npos) << what;
    }
}

/** FNV-1a64, matching the image checksum in serialize.cpp. */
uint64_t
fnv1a64(const char *data, size_t n)
{
    uint64_t h = 1469598103934665603ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= uint8_t(data[i]);
        h *= 1099511628211ull;
    }
    return h;
}

/** Recompute and patch the header checksum of a (possibly mutated) v7
 * image so validation runs against checksum-*valid* crafted payloads. */
void
resealImage(std::string &data)
{
    ASSERT_GE(data.size(), sizeof(lmdes::v7::Header));
    uint64_t sum = fnv1a64(data.data() + sizeof(lmdes::v7::Header),
                           data.size() - sizeof(lmdes::v7::Header));
    std::memcpy(&data[offsetof(lmdes::v7::Header, checksum)], &sum,
                sizeof(sum));
}

TEST(Serialize, CraftedMaskBeyondDeclaredResourcesRejected)
{
    // A checksum-valid image whose check selects resource bits past
    // num_resources would index out of the checker's RU map. The
    // crafted payload must be rejected by content validation, not by
    // luck of the checksum.
    Mdes m = twoCycleMachine(); // 3 resources, one RU-map word
    std::stringstream buf;
    LowMdes::lower(m, {}).save(buf);
    std::string data = buf.str();

    lmdes::v7::Header hdr;
    std::memcpy(&hdr, data.data(), sizeof(hdr));
    ASSERT_EQ(hdr.num_resources, 3u);
    const auto &sec = hdr.sections[lmdes::v7::kChecks];
    ASSERT_GE(sec.bytes, sizeof(lmdes::Check));
    lmdes::Check c;
    std::memcpy(&c, data.data() + sec.offset, sizeof(c));
    c.mask |= uint64_t(1) << 10; // resource 10 of 3
    std::memcpy(&data[sec.offset], &c, sizeof(c));
    resealImage(data);

    std::stringstream patched(data);
    try {
        LowMdes::load(patched);
        FAIL() << "mask with undeclared resource bits accepted";
    } catch (const MdesError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("beyond"), std::string::npos) << what;
        EXPECT_NE(what.find("3 declared"), std::string::npos) << what;
    }
}

TEST(Serialize, CraftedImplausibleSlotRejected)
{
    // A wild slot (beyond any sane pipeline depth) must be rejected
    // before it can size an RU-map overlay in the checker.
    Mdes m = twoCycleMachine();
    std::stringstream buf;
    LowMdes::lower(m, {}).save(buf);
    std::string data = buf.str();

    lmdes::v7::Header hdr;
    std::memcpy(&hdr, data.data(), sizeof(hdr));
    const auto &sec = hdr.sections[lmdes::v7::kChecks];
    ASSERT_GE(sec.bytes, sizeof(lmdes::Check));
    lmdes::Check c;
    std::memcpy(&c, data.data() + sec.offset, sizeof(c));
    c.slot = int32_t(lmdes::v7::kMaxSlotMagnitude) + 1;
    std::memcpy(&data[sec.offset], &c, sizeof(c));
    resealImage(data);

    std::stringstream patched(data);
    try {
        LowMdes::load(patched);
        FAIL() << "implausible slot accepted";
    } catch (const MdesError &e) {
        EXPECT_NE(std::string(e.what()).find("slot"), std::string::npos)
            << e.what();
    }
}

TEST(Serialize, CraftedSlotOutsideSummaryWindowRejected)
{
    // A plausible-magnitude slot that escapes the owning tree's summary
    // window would defeat the checker's direct-index fast path.
    Mdes m = twoCycleMachine();
    std::stringstream buf;
    LowMdes::lower(m, {}).save(buf);
    std::string data = buf.str();

    lmdes::v7::Header hdr;
    std::memcpy(&hdr, data.data(), sizeof(hdr));
    const auto &sec = hdr.sections[lmdes::v7::kChecks];
    ASSERT_GE(sec.bytes, sizeof(lmdes::Check));
    lmdes::Check c;
    std::memcpy(&c, data.data() + sec.offset, sizeof(c));
    c.slot = 1000; // far past the two-cycle window, well under the cap
    std::memcpy(&data[sec.offset], &c, sizeof(c));
    resealImage(data);

    std::stringstream patched(data);
    try {
        LowMdes::load(patched);
        FAIL() << "out-of-window slot accepted";
    } catch (const MdesError &e) {
        EXPECT_NE(std::string(e.what()).find("window"), std::string::npos)
            << e.what();
    }
}

TEST(Serialize, MappedImageMatchesOwnedAndSkipsDeserialization)
{
    // The zero-copy contract: attaching an image via fromImage with a
    // backing yields the same description as a full load, borrows the
    // caller's bytes (mapped() == true), and does not count as a full
    // deserialization.
    for (const auto *info : machines::all()) {
        SCOPED_TRACE(info->name);
        Mdes m = hmdes::compileOrThrow(info->source);
        LowerOptions opts;
        opts.pack_bit_vector = true;
        LowMdes low = LowMdes::lower(m, opts);
        std::stringstream buf;
        low.save(buf);
        const std::string data = buf.str();

        auto backing =
            std::make_shared<std::vector<uint64_t>>((data.size() + 7) / 8);
        std::memcpy(backing->data(), data.data(), data.size());

        uint64_t before = lmdes::fullDeserializations();
        lmdes::ImageSource src;
        src.backing =
            std::shared_ptr<const void>(backing, backing->data());
        LowMdes mapped =
            LowMdes::fromImage(backing->data(), data.size(), src);
        EXPECT_EQ(lmdes::fullDeserializations(), before);
        EXPECT_TRUE(mapped.mapped());
        EXPECT_EQ(mapped, low);
        // The spans really point into the caller's buffer.
        const char *base = reinterpret_cast<const char *>(backing->data());
        if (!mapped.checks().empty()) {
            const char *p =
                reinterpret_cast<const char *>(mapped.checks().data());
            EXPECT_GE(p, base);
            EXPECT_LT(p, base + data.size());
        }

        // A mapped object re-saves byte-identically.
        std::stringstream resaved;
        mapped.save(resaved);
        EXPECT_EQ(resaved.str(), data);

        // The stream path deep-copies and counts the deserialization.
        std::stringstream again(data);
        LowMdes owned = LowMdes::load(again);
        EXPECT_EQ(lmdes::fullDeserializations(), before + 1);
        EXPECT_FALSE(owned.mapped());
        EXPECT_EQ(owned, mapped);
    }
}

TEST(Serialize, FuzzRoundTripNeverCrashes)
{
    // Random machines, random corruption: every truncation and every
    // bit flip must either throw MdesError or load to a structurally
    // valid description - never crash, never allocate absurdly.
    Rng rng(0xF00DF00Dull);
    for (int iter = 0; iter < 20; ++iter) {
        Mdes m = testing::randomMdes(rng);
        LowerOptions opts;
        opts.pack_bit_vector = rng.chance(0.5);
        LowMdes low = LowMdes::lower(m, opts);
        std::stringstream buf;
        low.save(buf);
        std::string data = buf.str();

        {
            std::stringstream clean(data);
            EXPECT_EQ(LowMdes::load(clean), low);
        }

        for (int mut = 0; mut < 24; ++mut) {
            std::string mutated = data;
            if (rng.chance(0.5)) {
                mutated.resize(rng.below(data.size()));
            } else {
                size_t at = rng.below(mutated.size());
                mutated[at] = char(uint8_t(mutated[at]) ^
                                   uint8_t(1u << rng.below(8)));
            }
            std::stringstream mbuf(mutated);
            try {
                LowMdes loaded = LowMdes::load(mbuf);
                for (const auto &oc : loaded.opClasses())
                    ASSERT_LT(oc.tree, loaded.trees().size());
            } catch (const MdesError &) {
                // Rejection is the expected outcome.
            }
        }
    }
}

} // namespace
} // namespace mdes
