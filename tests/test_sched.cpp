/**
 * @file
 * Scheduler substrate tests: dependence-graph construction (RAW/WAR/WAW,
 * cascade relaxation, branch ordering, priorities), list scheduling
 * against the MDES, cascade selection, and schedule verification.
 */

#include <gtest/gtest.h>

#include "hmdes/compile.h"
#include "lmdes/low_mdes.h"
#include "machines/machines.h"
#include "sched/dep_graph.h"
#include "sched/list_scheduler.h"
#include "sched/verify.h"

namespace mdes {
namespace {

using lmdes::LowMdes;
using sched::Block;
using sched::BlockSchedule;
using sched::DepGraph;
using sched::Instr;
using sched::ListScheduler;
using sched::SchedStats;

/** A 2-wide machine: 2 slots, ops take one slot; ADD cascades on S[1]. */
LowMdes
twoWide()
{
    static const char *src = R"(
machine "two-wide" {
    resource S[2];
    ortree AnyS { for i in 0 .. 1 { option { use S[i] at 0; } } }
    ortree S1 { option { use S[1] at 0; } }
    table Any = AnyS;
    table Casc = S1;
    operation ADD { table Any; latency 1; cascade Casc; }
    operation LOAD { table Any; latency 3; }
    operation BR { table Any; latency 1; }
}
)";
    Mdes m = hmdes::compileOrThrow(src);
    return LowMdes::lower(m, {});
}

Instr
instr(uint32_t cls, std::vector<int32_t> srcs, std::vector<int32_t> dsts,
      bool cascadable = false, bool is_branch = false)
{
    Instr in;
    in.op_class = cls;
    in.srcs = std::move(srcs);
    in.dsts = std::move(dsts);
    in.cascadable = cascadable;
    in.is_branch = is_branch;
    return in;
}

// --------------------------------------------------------------- DepGraph

TEST(DepGraph, RawWarWawEdges)
{
    LowMdes low = twoWide();
    uint32_t ADD = low.findOpClass("ADD");
    uint32_t LOAD = low.findOpClass("LOAD");
    Block b;
    b.instrs = {
        instr(LOAD, {1}, {2}), // 0: r2 = load r1
        instr(ADD, {2}, {3}),  // 1: r3 = r2 + ...   RAW 0->1 dist 3
        instr(ADD, {9}, {2}),  // 2: r2 = ...        WAW 0->2, WAR 1->2
    };
    DepGraph g = DepGraph::build(b, low);

    bool raw = false, waw = false, war = false;
    for (const auto &e : g.edges()) {
        if (e.pred == 0 && e.succ == 1) {
            raw = true;
            EXPECT_EQ(e.min_dist, 3);
        }
        if (e.pred == 0 && e.succ == 2) {
            waw = true;
            EXPECT_EQ(e.min_dist, 1);
        }
        if (e.pred == 1 && e.succ == 2) {
            war = true;
            EXPECT_EQ(e.min_dist, 0);
        }
    }
    EXPECT_TRUE(raw && waw && war);
}

TEST(DepGraph, CascadeRelaxOnlyForSingleCycleProducers)
{
    LowMdes low = twoWide();
    uint32_t ADD = low.findOpClass("ADD");
    uint32_t LOAD = low.findOpClass("LOAD");
    Block b;
    b.instrs = {
        instr(ADD, {1}, {2}),              // 0
        instr(ADD, {2}, {3}, true),        // 1: cascadable consumer
        instr(LOAD, {9}, {4}),             // 2
        instr(ADD, {4}, {5}, true),        // 3: load-fed: no relax
    };
    DepGraph g = DepGraph::build(b, low);
    for (const auto &e : g.edges()) {
        if (e.pred == 0 && e.succ == 1)
            EXPECT_TRUE(e.cascade_relax);
        if (e.pred == 2 && e.succ == 3)
            EXPECT_FALSE(e.cascade_relax);
    }
}

TEST(DepGraph, NoSelfEdges)
{
    LowMdes low = twoWide();
    uint32_t ADD = low.findOpClass("ADD");
    Block b;
    // Reads and writes the same register, plus a double write.
    b.instrs = {instr(ADD, {1}, {1}), instr(ADD, {2}, {3, 3})};
    DepGraph g = DepGraph::build(b, low);
    for (const auto &e : g.edges())
        EXPECT_NE(e.pred, e.succ);
}

TEST(DepGraph, BranchOrderedLast)
{
    LowMdes low = twoWide();
    uint32_t ADD = low.findOpClass("ADD");
    uint32_t BR = low.findOpClass("BR");
    Block b;
    b.instrs = {instr(ADD, {1}, {2}), instr(ADD, {3}, {4}),
                instr(BR, {}, {}, false, true)};
    DepGraph g = DepGraph::build(b, low);
    int edges_to_branch = 0;
    for (const auto &e : g.edges())
        edges_to_branch += e.succ == 2;
    EXPECT_EQ(edges_to_branch, 2);
}

TEST(DepGraph, PrioritiesAreCriticalPath)
{
    LowMdes low = twoWide();
    uint32_t ADD = low.findOpClass("ADD");
    uint32_t LOAD = low.findOpClass("LOAD");
    Block b;
    b.instrs = {
        instr(LOAD, {1}, {2}), // 0: feeds the chain, lat 3
        instr(ADD, {2}, {3}),  // 1
        instr(ADD, {3}, {4}),  // 2
        instr(ADD, {9}, {8}),  // 3: independent
    };
    DepGraph g = DepGraph::build(b, low);
    // height(2) = 1, height(1) = 1 + 1, height(0) = 3 + 2.
    EXPECT_EQ(g.priorities()[0], 5);
    EXPECT_EQ(g.priorities()[1], 2);
    EXPECT_EQ(g.priorities()[2], 1);
    EXPECT_EQ(g.priorities()[3], 1);
}

// ---------------------------------------------------------- ListScheduler

TEST(Scheduler, PacksIndependentOpsByWidth)
{
    LowMdes low = twoWide();
    uint32_t ADD = low.findOpClass("ADD");
    Block b;
    for (int i = 0; i < 4; ++i)
        b.instrs.push_back(instr(ADD, {10 + i}, {20 + i}));
    ListScheduler s(low);
    SchedStats stats;
    BlockSchedule sched = s.scheduleBlock(b, stats);
    // 4 independent single-slot ops on a 2-wide machine: 2 cycles.
    EXPECT_EQ(sched.length, 2);
    EXPECT_EQ(stats.ops_scheduled, 4u);
    EXPECT_EQ(sched.cycles[0], 0);
    EXPECT_EQ(sched.cycles[1], 0);
    EXPECT_EQ(sched.cycles[2], 1);
    EXPECT_EQ(sched.cycles[3], 1);
}

TEST(Scheduler, HonorsLatency)
{
    LowMdes low = twoWide();
    uint32_t ADD = low.findOpClass("ADD");
    uint32_t LOAD = low.findOpClass("LOAD");
    Block b;
    b.instrs = {instr(LOAD, {1}, {2}), instr(ADD, {2}, {3})};
    ListScheduler s(low);
    SchedStats stats;
    BlockSchedule sched = s.scheduleBlock(b, stats);
    EXPECT_EQ(sched.cycles[0], 0);
    EXPECT_EQ(sched.cycles[1], 3);
}

TEST(Scheduler, CascadeExecutesSameCycle)
{
    LowMdes low = twoWide();
    uint32_t ADD = low.findOpClass("ADD");
    Block b;
    b.instrs = {instr(ADD, {1}, {2}), instr(ADD, {2}, {3}, true)};
    ListScheduler s(low);
    SchedStats stats;
    BlockSchedule sched = s.scheduleBlock(b, stats);
    // The flow-dependent consumer cascades into the same cycle using
    // the dedicated cascade slot.
    EXPECT_EQ(sched.cycles[0], 0);
    EXPECT_EQ(sched.cycles[1], 0);
    EXPECT_EQ(sched.used_cascade[1], 1);
    EXPECT_EQ(sched.length, 1);
}

TEST(Scheduler, NonCascadableWaitsFullLatency)
{
    LowMdes low = twoWide();
    uint32_t ADD = low.findOpClass("ADD");
    Block b;
    b.instrs = {instr(ADD, {1}, {2}), instr(ADD, {2}, {3}, false)};
    ListScheduler s(low);
    SchedStats stats;
    BlockSchedule sched = s.scheduleBlock(b, stats);
    EXPECT_EQ(sched.cycles[1], 1);
    EXPECT_EQ(sched.used_cascade[1], 0);
}

TEST(Scheduler, CountsAttemptsPerTree)
{
    LowMdes low = twoWide();
    uint32_t ADD = low.findOpClass("ADD");
    Block b;
    for (int i = 0; i < 3; ++i)
        b.instrs.push_back(instr(ADD, {10 + i}, {20 + i}));
    ListScheduler s(low);
    SchedStats stats;
    s.scheduleBlock(b, stats);
    // 2 fit in cycle 0, third fails once then lands in cycle 1: four
    // attempts total on the ADD tree.
    EXPECT_EQ(stats.checks.attempts, 4u);
    uint32_t add_tree = low.opClasses()[ADD].tree;
    EXPECT_EQ(stats.checks.attempts_per_tree[add_tree], 4u);
}

TEST(Scheduler, EmptyBlock)
{
    LowMdes low = twoWide();
    ListScheduler s(low);
    SchedStats stats;
    BlockSchedule sched = s.scheduleBlock({}, stats);
    EXPECT_EQ(sched.length, 0);
    EXPECT_EQ(stats.ops_scheduled, 0u);
}

// ----------------------------------------------------------------- Verify

TEST(Verify, AcceptsSchedulerOutput)
{
    LowMdes low = twoWide();
    uint32_t ADD = low.findOpClass("ADD");
    uint32_t LOAD = low.findOpClass("LOAD");
    Block b;
    b.instrs = {instr(LOAD, {1}, {2}), instr(ADD, {2}, {3}, true),
                instr(ADD, {3}, {4}, true), instr(ADD, {9}, {5})};
    ListScheduler s(low);
    SchedStats stats;
    BlockSchedule sched = s.scheduleBlock(b, stats);
    EXPECT_EQ(sched::verifySchedule(b, sched, low), "");
}

TEST(Verify, RejectsDependenceViolation)
{
    LowMdes low = twoWide();
    uint32_t ADD = low.findOpClass("ADD");
    uint32_t LOAD = low.findOpClass("LOAD");
    Block b;
    b.instrs = {instr(LOAD, {1}, {2}), instr(ADD, {2}, {3})};
    BlockSchedule bad;
    bad.cycles = {0, 1}; // needs distance 3
    bad.used_cascade = {0, 0};
    bad.length = 2;
    EXPECT_NE(sched::verifySchedule(b, bad, low).find("dependence"),
              std::string::npos);
}

TEST(Verify, RejectsResourceOversubscription)
{
    LowMdes low = twoWide();
    uint32_t ADD = low.findOpClass("ADD");
    Block b;
    b.instrs = {instr(ADD, {1}, {2}), instr(ADD, {3}, {4}),
                instr(ADD, {5}, {6})};
    BlockSchedule bad;
    bad.cycles = {0, 0, 0}; // 3 ops on a 2-wide machine
    bad.used_cascade = {0, 0, 0};
    bad.length = 1;
    EXPECT_NE(sched::verifySchedule(b, bad, low).find("resource"),
              std::string::npos);
}

TEST(Verify, RejectsUnscheduledAndSizeMismatch)
{
    LowMdes low = twoWide();
    uint32_t ADD = low.findOpClass("ADD");
    Block b;
    b.instrs = {instr(ADD, {1}, {2})};
    BlockSchedule bad;
    bad.cycles = {-1};
    bad.used_cascade = {0};
    EXPECT_NE(sched::verifySchedule(b, bad, low).find("never scheduled"),
              std::string::npos);
    BlockSchedule wrong;
    EXPECT_NE(sched::verifySchedule(b, wrong, low).find("size"),
              std::string::npos);
}

// -------------------------------------------------- SuperSPARC integration

TEST(Scheduler, SuperSparcCascadePairsIssueTogether)
{
    Mdes m = hmdes::compileOrThrow(machines::superSparc().source);
    LowMdes low = LowMdes::lower(m, {});
    uint32_t ADD_I = low.findOpClass("ADD_I");

    Block b;
    b.instrs = {instr(ADD_I, {1}, {2}, true),
                instr(ADD_I, {2}, {3}, true)};
    ListScheduler s(low);
    SchedStats stats;
    BlockSchedule sched = s.scheduleBlock(b, stats);
    EXPECT_EQ(sched.cycles[0], 0);
    EXPECT_EQ(sched.cycles[1], 0);
    EXPECT_EQ(sched.used_cascade[1], 1);
    EXPECT_EQ(sched::verifySchedule(b, sched, low), "");
}

TEST(Scheduler, SuperSparcIssueWidthIsThree)
{
    Mdes m = hmdes::compileOrThrow(machines::superSparc().source);
    LowMdes low = LowMdes::lower(m, {});
    uint32_t ADD_I = low.findOpClass("ADD_I");
    Block b;
    for (int i = 0; i < 6; ++i)
        b.instrs.push_back(instr(ADD_I, {10 + i}, {20 + i}));
    ListScheduler s(low);
    SchedStats stats;
    BlockSchedule sched = s.scheduleBlock(b, stats);
    // Six independent IALU ops: 3 decoders but only 2 IALUs and 2 write
    // ports per cycle, so 2 per cycle -> 3 cycles.
    EXPECT_EQ(sched.length, 3);
}

} // namespace
} // namespace mdes
