#ifndef MDES_TESTS_RANDOM_MDES_H
#define MDES_TESTS_RANDOM_MDES_H

/**
 * @file
 * Random machine-description generator for property/fuzz tests.
 *
 * Two flavors:
 *  - disjoint AND subtrees (each subtree draws from its own resource
 *    classes, like the four shipped machines): the AND/OR and expanded
 *    OR representations are exactly equivalent, so the full pipeline
 *    must preserve schedules across *everything*;
 *  - overlapping subtrees: greedy AND evaluation is conservative, so
 *    only within-representation invariants are asserted.
 *
 * Generated descriptions always satisfy Mdes::validate() and keep
 * resource counts within the packed RU map's 64-instance limit.
 */

#include <algorithm>
#include <string>
#include <vector>

#include "core/mdes.h"
#include "support/rng.h"
#include "workload/workload.h"

namespace mdes::testing {

struct RandomMdesOptions
{
    /** Number of resource classes to declare. */
    int min_classes = 2, max_classes = 5;
    /** Instances per class. */
    int min_count = 1, max_count = 4;
    /** OR subtrees per AND/OR tree. */
    int min_subtrees = 1, max_subtrees = 3;
    /** Options per OR subtree. */
    int min_options = 1, max_options = 4;
    /** Usages per option. */
    int min_usages = 1, max_usages = 3;
    /** Usage-time range. */
    int min_time = -2, max_time = 4;
    /** Operation classes (tables may be shared between them). */
    int min_ops = 2, max_ops = 6;
    /** When true, each AND subtree draws from its own resource classes. */
    bool disjoint_subtrees = true;
    /** Inject duplicated options/OR-trees (CSE fodder). */
    bool inject_duplicates = true;
};

/** Generate a random but valid machine description. */
inline Mdes
randomMdes(Rng &rng, const RandomMdesOptions &opts = {})
{
    Mdes m("fuzz-" + std::to_string(rng.next() % 100000));

    int num_classes =
        int(rng.range(opts.min_classes, opts.max_classes));
    std::vector<ResourceId> class_first;
    std::vector<uint32_t> class_count;
    for (int c = 0; c < num_classes; ++c) {
        uint32_t count =
            uint32_t(rng.range(opts.min_count, opts.max_count));
        class_first.push_back(
            m.addResourceClass("R" + std::to_string(c), count));
        class_count.push_back(count);
    }

    // Build an option over the given resource classes; usages unique.
    auto make_option = [&](const std::vector<int> &classes) {
        Option option;
        int usages = int(rng.range(opts.min_usages, opts.max_usages));
        int guard = 0;
        while (int(option.usages.size()) < usages && guard++ < 64) {
            int cls = classes[rng.below(classes.size())];
            ResourceUsage u;
            u.resource = class_first[cls] +
                         uint32_t(rng.below(class_count[cls]));
            u.time = int32_t(rng.range(opts.min_time, opts.max_time));
            if (std::find(option.usages.begin(), option.usages.end(),
                          u) == option.usages.end()) {
                option.usages.push_back(u);
            }
        }
        return option;
    };

    auto make_or_tree = [&](const std::vector<int> &classes,
                            const std::string &name) {
        OrTree tree;
        tree.name = name;
        int options = int(rng.range(opts.min_options, opts.max_options));
        for (int o = 0; o < options; ++o)
            tree.options.push_back(m.addOption(make_option(classes)));
        if (opts.inject_duplicates && rng.chance(0.3)) {
            // Copy-paste decay: duplicate an existing option verbatim.
            OptionId dup = tree.options[rng.below(tree.options.size())];
            Option copy = m.option(dup);
            tree.options.push_back(m.addOption(std::move(copy)));
        }
        return m.addOrTree(std::move(tree));
    };

    int num_ops = int(rng.range(opts.min_ops, opts.max_ops));
    std::vector<TreeId> tables;
    for (int t = 0; t < std::max(1, num_ops - 1); ++t) {
        int subtrees =
            int(rng.range(opts.min_subtrees, opts.max_subtrees));
        subtrees = std::min(subtrees, num_classes);
        AndOrTree tree;
        tree.name = "T" + std::to_string(t);

        if (opts.disjoint_subtrees) {
            // Partition a shuffled class list across the subtrees.
            std::vector<int> order(num_classes);
            for (int c = 0; c < num_classes; ++c)
                order[c] = c;
            for (int c = num_classes - 1; c > 0; --c)
                std::swap(order[c], order[rng.below(uint64_t(c) + 1)]);
            for (int s = 0; s < subtrees; ++s) {
                std::vector<int> mine;
                for (int c = s; c < num_classes; c += subtrees)
                    mine.push_back(order[c]);
                tree.or_trees.push_back(make_or_tree(
                    mine, "O" + std::to_string(t) + "_" +
                              std::to_string(s)));
            }
        } else {
            std::vector<int> all_classes(num_classes);
            for (int c = 0; c < num_classes; ++c)
                all_classes[c] = c;
            for (int s = 0; s < subtrees; ++s) {
                tree.or_trees.push_back(make_or_tree(
                    all_classes, "O" + std::to_string(t) + "_" +
                                     std::to_string(s)));
            }
        }
        tables.push_back(m.addTree(std::move(tree)));
    }

    for (int o = 0; o < num_ops; ++o) {
        OperationClass oc;
        oc.name = "OP" + std::to_string(o);
        oc.tree = tables[rng.below(tables.size())];
        oc.latency = int(rng.range(1, 4));
        m.addOpClass(std::move(oc));
    }
    return m;
}

/** A workload spec covering every operation class of @p m. */
inline workload::WorkloadSpec
randomWorkloadSpec(const Mdes &m, uint64_t seed, size_t num_ops)
{
    workload::WorkloadSpec spec;
    spec.seed = seed;
    spec.num_ops = num_ops;
    spec.num_regs = 16;
    spec.min_block_size = 3;
    spec.max_block_size = 9;
    spec.src_locality = 0.5;
    for (const auto &oc : m.opClasses())
        spec.classes.push_back({oc.name, 1.0, 1, 1, false, false});
    return spec;
}

} // namespace mdes::testing

#endif // MDES_TESTS_RANDOM_MDES_H
