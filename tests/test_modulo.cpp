/**
 * @file
 * Iterative-modulo-scheduling tests: modulo RU-map behavior, loop
 * dependence graphs, MII lower bounds, schedule validity, unscheduling,
 * and the paper's prediction that modulo scheduling raises attempts per
 * operation (amplifying the value of efficient constraint checking).
 */

#include <gtest/gtest.h>

#include "core/transforms.h"
#include "exp/runner.h"
#include "hmdes/compile.h"
#include "machines/machines.h"
#include "rumap/ru_map.h"
#include "sched/modulo_scheduler.h"
#include "workload/workload.h"

namespace mdes {
namespace {

using lmdes::LowMdes;
using rumap::RuMap;
using sched::Block;
using sched::Instr;
using sched::LoopDepGraph;
using sched::ModuloSchedule;
using sched::ModuloScheduler;
using sched::SchedStats;

// ----------------------------------------------------------- Modulo RuMap

TEST(ModuloRuMap, WrapsModuloII)
{
    RuMap ru(4);
    ru.reserve(1, 0b1);
    EXPECT_FALSE(ru.available(1, 0b1));
    EXPECT_FALSE(ru.available(5, 0b1));  // 5 mod 4 == 1
    EXPECT_FALSE(ru.available(-3, 0b1)); // -3 mod 4 == 1
    EXPECT_TRUE(ru.available(2, 0b1));
    EXPECT_EQ(ru.initiationInterval(), 4);
}

TEST(ModuloRuMap, ReleaseUndoesReserve)
{
    RuMap ru(3);
    ru.reserve(7, 0b110); // slot 1
    EXPECT_FALSE(ru.available(1, 0b010));
    ru.release(4, 0b010); // slot 1 again
    EXPECT_TRUE(ru.available(1, 0b010));
    EXPECT_FALSE(ru.available(1, 0b100)); // other bit still held
}

TEST(ModuloRuMap, LinearMapUnchangedByRelease)
{
    RuMap ru;
    ru.reserve(5, 0b1);
    ru.release(5, 0b1);
    EXPECT_TRUE(ru.available(5, 0b1));
    EXPECT_EQ(ru.normalize(12345), 12345);
}

// ----------------------------------------------------------- LoopDepGraph

LowMdes
pipeMachine()
{
    static const char *src = R"(
machine "pipe" {
    resource S[2];
    resource M;
    ortree AnyS { for i in 0 .. 1 { option { use S[i] at 0; } } }
    ortree MemU { option { use M at 0; } }
    table Alu = AnyS;
    table Mem = and(MemU, AnyS);
    operation ADD { table Alu; latency 1; }
    operation MULT { table Alu; latency 3; }
    operation LOAD { table Mem; latency 2; }
}
)";
    return LowMdes::lower(hmdes::compileOrThrow(src), {});
}

Instr
instr(uint32_t cls, std::vector<int32_t> srcs, std::vector<int32_t> dsts)
{
    Instr in;
    in.op_class = cls;
    in.srcs = std::move(srcs);
    in.dsts = std::move(dsts);
    return in;
}

TEST(LoopDepGraph, FindsLoopCarriedRaw)
{
    LowMdes low = pipeMachine();
    uint32_t ADD = low.findOpClass("ADD");
    Block body;
    // r1 = r1 + r2 : classic accumulator recurrence.
    body.instrs = {instr(ADD, {1, 2}, {1})};
    LoopDepGraph g = LoopDepGraph::build(body, low);
    bool carried_raw = false;
    for (const auto &e : g.edges())
        carried_raw |= e.omega == 1 && e.latency >= 1;
    EXPECT_TRUE(carried_raw);
}

TEST(LoopDepGraph, IndependentIterationsHaveNoCarriedRaw)
{
    LowMdes low = pipeMachine();
    uint32_t ADD = low.findOpClass("ADD");
    Block body;
    // Reads and writes touch disjoint registers per iteration.
    body.instrs = {instr(ADD, {1, 2}, {3}), instr(ADD, {3, 4}, {5})};
    LoopDepGraph g = LoopDepGraph::build(body, low);
    for (const auto &e : g.edges()) {
        if (e.omega == 1)
            EXPECT_LE(e.latency, 1); // WAR/WAW bookkeeping only
    }
}

// -------------------------------------------------------------------- MII

TEST(ModuloScheduler, ResMiiBoundsBottleneckResource)
{
    LowMdes low = pipeMachine();
    uint32_t LOAD = low.findOpClass("LOAD");
    ModuloScheduler ms(low);
    Block body;
    // Three loads per iteration through the single memory port.
    for (int i = 0; i < 3; ++i)
        body.instrs.push_back(instr(LOAD, {1}, {10 + i}));
    EXPECT_GE(ms.resMii(body), 3);
}

TEST(ModuloScheduler, RecMiiBoundsRecurrence)
{
    LowMdes low = pipeMachine();
    uint32_t MULT = low.findOpClass("MULT");
    ModuloScheduler ms(low);
    Block body;
    // r1 = r1 * r2 with 3-cycle latency: RecMII = 3/1 = 3.
    body.instrs = {instr(MULT, {1, 2}, {1})};
    LoopDepGraph g = LoopDepGraph::build(body, low);
    EXPECT_EQ(ms.recMii(body, g), 3);
}

TEST(ModuloScheduler, RecMiiOneForParallelLoops)
{
    LowMdes low = pipeMachine();
    uint32_t ADD = low.findOpClass("ADD");
    ModuloScheduler ms(low);
    Block body;
    body.instrs = {instr(ADD, {1, 2}, {3})};
    LoopDepGraph g = LoopDepGraph::build(body, low);
    EXPECT_EQ(ms.recMii(body, g), 1);
}

// --------------------------------------------------------------- Schedule

TEST(ModuloScheduler, AchievesMiiOnSimpleLoop)
{
    LowMdes low = pipeMachine();
    uint32_t ADD = low.findOpClass("ADD");
    uint32_t LOAD = low.findOpClass("LOAD");
    Block body;
    // load; add; add : 2-wide machine, one memory port -> MII 2
    // (3 ops / 2 slots).
    body.instrs = {instr(LOAD, {1}, {2}), instr(ADD, {2, 3}, {4}),
                   instr(ADD, {4, 5}, {6})};
    ModuloScheduler ms(low);
    SchedStats stats;
    ModuloSchedule sched = ms.schedule(body, stats);
    ASSERT_TRUE(sched.success);
    EXPECT_EQ(sched.ii, 2);
    LoopDepGraph g = LoopDepGraph::build(body, low);
    EXPECT_EQ(sched::verifyModuloSchedule(body, g, sched), "");
}

TEST(ModuloScheduler, RecurrenceLimitedLoop)
{
    LowMdes low = pipeMachine();
    uint32_t MULT = low.findOpClass("MULT");
    uint32_t ADD = low.findOpClass("ADD");
    Block body;
    // acc = acc * x (3-cycle recurrence) + independent adds.
    body.instrs = {instr(MULT, {1, 2}, {1}), instr(ADD, {3, 4}, {5}),
                   instr(ADD, {5, 6}, {7})};
    ModuloScheduler ms(low);
    SchedStats stats;
    ModuloSchedule sched = ms.schedule(body, stats);
    ASSERT_TRUE(sched.success);
    EXPECT_EQ(sched.ii, 3); // RecMII dominates
    LoopDepGraph g = LoopDepGraph::build(body, low);
    EXPECT_EQ(sched::verifyModuloSchedule(body, g, sched), "");
}

TEST(ModuloScheduler, EmptyBody)
{
    LowMdes low = pipeMachine();
    ModuloScheduler ms(low);
    SchedStats stats;
    ModuloSchedule sched = ms.schedule({}, stats);
    EXPECT_TRUE(sched.success);
}

TEST(ModuloScheduler, RealMachineLoopsScheduleAndValidate)
{
    for (const auto *info : machines::all()) {
        SCOPED_TRACE(info->name);
        Mdes m = hmdes::compileOrThrow(info->source);
        runPipeline(m, PipelineConfig::all());
        lmdes::LowerOptions lopts;
        lopts.pack_bit_vector = true;
        LowMdes low = LowMdes::lower(m, lopts);

        workload::WorkloadSpec spec = info->workload;
        spec.num_ops = 600;
        spec.min_block_size = 4;
        spec.max_block_size = 10;
        sched::Program loops = workload::generateLoops(spec, low);

        ModuloScheduler ms(low);
        SchedStats stats;
        size_t scheduled = 0;
        for (const auto &body : loops.blocks) {
            ModuloSchedule sched = ms.schedule(body, stats);
            ASSERT_TRUE(sched.success);
            LoopDepGraph g = LoopDepGraph::build(body, low);
            ASSERT_EQ(sched::verifyModuloSchedule(body, g, sched), "");
            ++scheduled;
        }
        EXPECT_GT(scheduled, 0u);
    }
}

TEST(ModuloScheduler, MoreAttemptsPerOpThanListScheduling)
{
    // The paper (Section 4): "the number of scheduling attempts required
    // per operation can increase significantly with the use of more
    // advanced scheduling techniques such as iterative modulo
    // scheduling" - which is exactly why the transformations matter.
    Mdes m = hmdes::compileOrThrow(machines::superSparc().source);
    runPipeline(m, PipelineConfig::all());
    lmdes::LowerOptions lopts;
    lopts.pack_bit_vector = true;
    LowMdes low = LowMdes::lower(m, lopts);

    workload::WorkloadSpec spec = machines::superSparc().workload;
    spec.num_ops = 3000;
    spec.min_block_size = 5;
    spec.max_block_size = 12;

    sched::Program loops = workload::generateLoops(spec, low);
    ModuloScheduler ms(low);
    SchedStats modulo_stats;
    for (const auto &body : loops.blocks)
        ms.schedule(body, modulo_stats);

    exp::RunConfig list_config =
        exp::optimizedConfig(machines::superSparc(), exp::Rep::AndOrTree);
    list_config.num_ops_override = 3000;
    exp::RunResult list_run = exp::run(list_config);

    EXPECT_GT(modulo_stats.avgAttemptsPerOp(),
              list_run.stats.avgAttemptsPerOp());
}

TEST(ModuloScheduler, IdenticalIIAcrossRepresentations)
{
    // Modulo scheduling is checker-driven; both representations must
    // yield the same IIs and schedules.
    const auto &info = machines::superSparc();
    std::vector<int32_t> iis[2];
    int idx = 0;
    for (auto rep : {exp::Rep::OrTree, exp::Rep::AndOrTree}) {
        exp::RunConfig config = exp::optimizedConfig(info, rep);
        config.schedule = false;
        exp::RunResult built = exp::run(config);

        workload::WorkloadSpec spec = info.workload;
        spec.num_ops = 800;
        sched::Program loops = workload::generateLoops(spec, built.low);
        ModuloScheduler ms(built.low);
        SchedStats stats;
        for (const auto &body : loops.blocks) {
            ModuloSchedule sched = ms.schedule(body, stats);
            iis[idx].push_back(sched.success ? sched.ii : -1);
        }
        ++idx;
    }
    EXPECT_EQ(iis[0], iis[1]);
}

} // namespace
} // namespace mdes
