/**
 * @file
 * Service-layer tests: worker-count determinism (the same batch must
 * produce byte-identical schedules at 1 and 8 workers), cache pointer
 * identity and LRU behavior, deadline/cancellation/error surfaces, and
 * metrics accounting.
 */

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "machines/machines.h"
#include "service/service.h"

#ifndef MDES_SOURCE_DIR
#define MDES_SOURCE_DIR "."
#endif

namespace mdes {
namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

service::ScheduleRequest
syntheticRequest(const std::string &machine, size_t ops,
                 uint64_t seed = 0)
{
    service::ScheduleRequest req;
    req.machine = machine;
    req.synth_ops = ops;
    req.seed = seed;
    return req;
}

/** A mixed batch covering machines and scheduler kinds. */
std::vector<service::ScheduleRequest>
mixedBatch()
{
    std::vector<service::ScheduleRequest> batch;
    batch.push_back(syntheticRequest("SuperSPARC", 1200));
    batch.push_back(syntheticRequest("SuperSPARC", 1200, 7));
    batch.push_back(syntheticRequest("K5", 800));
    batch.push_back(syntheticRequest("PA7100", 800));
    batch.push_back(syntheticRequest("Pentium", 800));
    batch.back().scheduler = service::SchedulerKind::Backward;
    batch.push_back(syntheticRequest("PA7100", 300));
    batch.back().scheduler = service::SchedulerKind::Modulo;
    return batch;
}

TEST(Service, DeterministicAcrossWorkerCounts)
{
    std::vector<service::ScheduleResponse> one, eight;
    {
        service::MdesService svc({.num_workers = 1});
        one = svc.runBatch(mixedBatch());
    }
    {
        service::MdesService svc({.num_workers = 8});
        eight = svc.runBatch(mixedBatch());
    }
    ASSERT_EQ(one.size(), eight.size());
    for (size_t i = 0; i < one.size(); ++i) {
        ASSERT_TRUE(one[i].ok()) << one[i].error.message;
        ASSERT_TRUE(eight[i].ok()) << eight[i].error.message;
        // Byte-identical schedules, not just equal lengths.
        EXPECT_EQ(one[i].schedules, eight[i].schedules) << "request " << i;
        EXPECT_EQ(one[i].total_cycles, eight[i].total_cycles);
        EXPECT_EQ(service::scheduleFingerprint(one[i]),
                  service::scheduleFingerprint(eight[i]));
        // Identical inputs also mean identical checker work.
        EXPECT_EQ(one[i].stats.checks.attempts,
                  eight[i].stats.checks.attempts);
    }
}

TEST(Service, CacheHitReturnsSamePointer)
{
    service::MdesService svc({.num_workers = 2});
    auto first = svc.wait(svc.submit(syntheticRequest("K5", 500)));
    auto second = svc.wait(svc.submit(syntheticRequest("K5", 500, 9)));
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    EXPECT_FALSE(first.cache_hit);
    EXPECT_TRUE(second.cache_hit);
    // One compiled artifact, shared.
    EXPECT_EQ(first.low.get(), second.low.get());

    // A different pipeline configuration is a different artifact.
    auto req = syntheticRequest("K5", 500);
    req.transforms = PipelineConfig::none();
    auto third = svc.wait(svc.submit(req));
    ASSERT_TRUE(third.ok());
    EXPECT_FALSE(third.cache_hit);
    EXPECT_NE(third.low.get(), first.low.get());
}

TEST(Service, WarmCacheRecompilesNothing)
{
    service::MdesService svc({.num_workers = 4});
    auto cold = svc.runBatch(mixedBatch());
    for (const auto &r : cold)
        ASSERT_TRUE(r.ok()) << r.error.message;
    uint64_t compiles_after_cold = svc.cache().stats().compiles;

    auto warm = svc.runBatch(mixedBatch());
    for (const auto &r : warm) {
        ASSERT_TRUE(r.ok()) << r.error.message;
        EXPECT_TRUE(r.cache_hit);
    }
    EXPECT_EQ(svc.cache().stats().compiles, compiles_after_cold);
}

TEST(Service, LruEvictsLeastRecentlyUsed)
{
    service::MdesService svc({.num_workers = 1, .cache_capacity = 2});
    ASSERT_TRUE(svc.wait(svc.submit(syntheticRequest("K5", 200))).ok());
    ASSERT_TRUE(
        svc.wait(svc.submit(syntheticRequest("PA7100", 200))).ok());
    // Touch K5 so PA7100 is the LRU entry, then insert a third machine.
    ASSERT_TRUE(svc.wait(svc.submit(syntheticRequest("K5", 200))).ok());
    ASSERT_TRUE(
        svc.wait(svc.submit(syntheticRequest("Pentium", 200))).ok());
    EXPECT_EQ(svc.cache().stats().evictions, 1u);
    // K5 survived the eviction; PA7100 did not.
    EXPECT_TRUE(
        svc.wait(svc.submit(syntheticRequest("K5", 200))).cache_hit);
    EXPECT_FALSE(
        svc.wait(svc.submit(syntheticRequest("PA7100", 200))).cache_hit);
}

TEST(Service, SasmWorkloadAndInlineSource)
{
    service::MdesService svc({.num_workers = 2});
    std::string sasm = readFile(std::string(MDES_SOURCE_DIR) +
                                "/descriptions/dotproduct.sasm");

    // .sasm against a built-in machine name.
    service::ScheduleRequest by_name;
    by_name.machine = "SuperSPARC";
    by_name.sasm = sasm;
    by_name.verify = true;
    auto r1 = svc.wait(svc.submit(by_name));
    ASSERT_TRUE(r1.ok()) << r1.error.message;
    EXPECT_GT(r1.total_cycles, 0u);

    // Same description delivered as inline source: same schedule.
    service::ScheduleRequest by_source;
    by_source.source = machines::superSparc().source;
    by_source.sasm = sasm;
    auto r2 = svc.wait(svc.submit(by_source));
    ASSERT_TRUE(r2.ok()) << r2.error.message;
    EXPECT_EQ(r1.schedules, r2.schedules);
    EXPECT_EQ(r2.machine, "SuperSPARC");
}

TEST(Service, TypedErrors)
{
    service::MdesService svc({.num_workers = 2});

    auto unknown =
        svc.wait(svc.submit(syntheticRequest("NotAMachine", 100)));
    EXPECT_EQ(unknown.error.code, service::ErrorCode::UnknownMachine);

    service::ScheduleRequest bad_source;
    bad_source.source = "this is not hmdes";
    bad_source.sasm = "block\nend\n";
    auto compile_failed = svc.wait(svc.submit(bad_source));
    EXPECT_EQ(compile_failed.error.code,
              service::ErrorCode::CompileFailed);
    EXPECT_FALSE(compile_failed.error.message.empty());

    service::ScheduleRequest no_workload;
    no_workload.source = machines::k5().source;
    auto bad_request = svc.wait(svc.submit(no_workload));
    EXPECT_EQ(bad_request.error.code, service::ErrorCode::BadRequest);

    service::ScheduleRequest bad_sasm;
    bad_sasm.machine = "K5";
    bad_sasm.sasm = "block\n  NOT_AN_OPCODE r1 <- r2\nend\n";
    auto bad_workload = svc.wait(svc.submit(bad_sasm));
    EXPECT_EQ(bad_workload.error.code, service::ErrorCode::BadWorkload);

    // A failed compile is not cached: the next identical request
    // re-attempts (and fails again) rather than hitting a poisoned
    // entry.
    auto again = svc.wait(svc.submit(bad_source));
    EXPECT_EQ(again.error.code, service::ErrorCode::CompileFailed);
    EXPECT_FALSE(again.cache_hit);
}

TEST(Service, DeadlineExceededWhileQueued)
{
    // One worker, blocked by a large request: the deadline of the
    // queued request lapses before a worker ever picks it up.
    service::MdesService svc({.num_workers = 1});
    auto blocker_id = svc.submit(syntheticRequest("SuperSPARC", 20000));
    auto doomed = syntheticRequest("K5", 100);
    doomed.deadline_ms = 1;
    auto doomed_id = svc.submit(doomed);
    EXPECT_EQ(svc.wait(doomed_id).error.code,
              service::ErrorCode::DeadlineExceeded);
    EXPECT_TRUE(svc.wait(blocker_id).ok());
}

TEST(Service, CancelQueuedRequest)
{
    service::MdesService svc({.num_workers = 1});
    auto blocker_id = svc.submit(syntheticRequest("SuperSPARC", 20000));
    auto victim_id = svc.submit(syntheticRequest("K5", 100));
    EXPECT_TRUE(svc.cancel(victim_id));
    EXPECT_EQ(svc.wait(victim_id).error.code,
              service::ErrorCode::Cancelled);
    EXPECT_TRUE(svc.wait(blocker_id).ok());
    // Unknown / already-waited ids are reported, not UB.
    EXPECT_FALSE(svc.cancel(victim_id));
    EXPECT_EQ(svc.wait(9999).error.code, service::ErrorCode::BadRequest);
}

TEST(Service, MetricsAccounting)
{
    service::MdesService svc({.num_workers = 4});
    auto responses = svc.runBatch(mixedBatch());
    ASSERT_EQ(responses.size(), 6u);
    svc.wait(svc.submit(syntheticRequest("NotAMachine", 1)));

    service::ServiceMetrics m = svc.metricsSnapshot();
    EXPECT_EQ(m.requests, 7u);
    EXPECT_EQ(m.ok, 6u);
    EXPECT_EQ(m.errors[size_t(service::ErrorCode::UnknownMachine)], 1u);
    EXPECT_EQ(m.total.count, 7u);
    EXPECT_EQ(m.schedule.count, 6u);
    EXPECT_GT(m.ops_scheduled, 0u);
    EXPECT_GT(m.attempts, 0u);
    // The unknown-machine request never reaches the cache; the six
    // batch requests cover four distinct keys (the two SuperSPARC
    // requests share one, and the two PA7100 requests share one: the
    // scheduler kind is not part of the compiled artifact).
    EXPECT_EQ(m.cache.hits + m.cache.misses, 6u);
    EXPECT_EQ(m.cache.misses, 4u);
    EXPECT_EQ(m.cache.hits, 2u);

    std::string table = m.toTable();
    EXPECT_NE(table.find("unknown-machine"), std::string::npos);
    std::string json = m.toJson();
    EXPECT_NE(json.find("\"requests\":7"), std::string::npos);
    EXPECT_NE(json.find("\"hit_rate\":"), std::string::npos);
    EXPECT_NE(json.find("\"unknown-machine\":1"), std::string::npos);
}

TEST(Service, FingerprintDistinguishesSchedules)
{
    service::MdesService svc({.num_workers = 2});
    auto a = svc.wait(svc.submit(syntheticRequest("K5", 500)));
    auto b = svc.wait(svc.submit(syntheticRequest("K5", 500, 42)));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_NE(service::scheduleFingerprint(a),
              service::scheduleFingerprint(b));
    // And is stable for identical requests.
    auto a2 = svc.wait(svc.submit(syntheticRequest("K5", 500)));
    EXPECT_EQ(service::scheduleFingerprint(a),
              service::scheduleFingerprint(a2));
}

} // namespace
} // namespace mdes
