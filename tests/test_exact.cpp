/**
 * @file
 * Branch-and-bound exact scheduler tests: lockstep against an
 * independent exhaustive enumerator on tiny blocks (handcrafted and
 * random), wouldFit() purity under millions of probes, budget
 * exhaustion falling back to the list incumbent, cooperative
 * cancellation, and the service-level portfolio guarantee that it never
 * returns a schedule longer than plain list scheduling.
 */

#include <climits>
#include <cstdint>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "exact/exact_scheduler.h"
#include "hmdes/compile.h"
#include "lmdes/low_mdes.h"
#include "machines/machines.h"
#include "rumap/checker.h"
#include "rumap/ru_map.h"
#include "sched/dep_graph.h"
#include "sched/list_scheduler.h"
#include "sched/verify.h"
#include "service/service.h"
#include "workload/workload.h"

namespace mdes {
namespace {

using lmdes::LowMdes;
using sched::Block;
using sched::BlockSchedule;
using sched::ListScheduler;
using sched::SchedStats;

/** A 2-wide machine: 2 slots, ops take one slot; ADD cascades on S[1]. */
LowMdes
twoWide()
{
    static const char *src = R"(
machine "two-wide" {
    resource S[2];
    ortree AnyS { for i in 0 .. 1 { option { use S[i] at 0; } } }
    ortree S1 { option { use S[1] at 0; } }
    table Any = AnyS;
    table Casc = S1;
    operation ADD { table Any; latency 1; cascade Casc; }
    operation LOAD { table Any; latency 3; }
    operation BR { table Any; latency 1; }
}
)";
    Mdes m = hmdes::compileOrThrow(src);
    return LowMdes::lower(m, {});
}

sched::Instr
instr(uint32_t cls, std::vector<int32_t> srcs, std::vector<int32_t> dsts,
      bool cascadable = false, bool is_branch = false)
{
    sched::Instr in;
    in.op_class = cls;
    in.srcs = std::move(srcs);
    in.dsts = std::move(dsts);
    in.cascadable = cascadable;
    in.is_branch = is_branch;
    return in;
}

LowMdes
machineByName(const char *name)
{
    const machines::MachineInfo *info = machines::byName(name);
    EXPECT_NE(info, nullptr) << name;
    Mdes m = hmdes::compileOrThrow(info->source);
    lmdes::LowerOptions lopts;
    lopts.pack_bit_vector = true;
    return LowMdes::lower(m, lopts);
}

/**
 * Independent exhaustive reference: plain recursive enumeration of
 * every canonical (cycle-ascending, index-ascending) placement
 * sequence, with a greedy tryReserve() replay for feasibility and no
 * bounding at all beyond the incumbent horizon. Shares only the
 * checker and the dependence graph with the scheduler under test.
 */
class BruteForce
{
  public:
    explicit BruteForce(const LowMdes &low) : low_(low), checker_(low) {}

    /** Shortest canonical schedule length; placements are restricted
     * to cycles < @p horizon (any optimum fits below the incumbent's
     * length, so pass the list schedule's length). */
    int32_t
    shortest(const Block &block, int32_t horizon)
    {
        n_ = uint32_t(block.instrs.size());
        horizon_ = horizon;
        graph_ = sched::DepGraph::build(block, low_);
        classes_.resize(n_);
        can_casc_.assign(n_, 0);
        for (uint32_t u = 0; u < n_; ++u) {
            classes_[u] = block.instrs[u].op_class;
            const auto &cls = low_.opClasses()[classes_[u]];
            can_casc_[u] = block.instrs[u].cascadable
                                   && cls.cascade_tree != kInvalidId
                               ? 1
                               : 0;
        }
        cycles_.assign(n_, -1);
        pending_.assign(n_, 0);
        for (uint32_t u = 0; u < n_; ++u)
            pending_[u] = uint32_t(graph_.predEdges()[u].size());
        ru_ = rumap::RuMap();
        placed_ = 0;
        len_ = 0;
        best_ = INT32_MAX;
        enumerate(0, 0);
        return best_;
    }

  private:
    int32_t
    ready(uint32_t u, int32_t &normal) const
    {
        normal = 0;
        int32_t relaxed = 0;
        const auto &edges = graph_.edges();
        for (uint32_t ei : graph_.predEdges()[u]) {
            const auto &e = edges[ei];
            int32_t at = cycles_[e.pred];
            normal = std::max(normal, at + e.min_dist);
            relaxed =
                std::max(relaxed, e.cascade_relax ? at : at + e.min_dist);
        }
        return can_casc_[u] ? relaxed : normal;
    }

    void
    enumerate(int32_t cycle, uint32_t floor)
    {
        if (placed_ == n_) {
            best_ = std::min(best_, len_);
            return;
        }
        int32_t next = INT32_MAX;
        for (uint32_t u = 0; u < n_; ++u) {
            if (cycles_[u] >= 0 || pending_[u] > 0)
                continue;
            int32_t normal = 0;
            int32_t at = ready(u, normal);
            next = std::min(next, std::max(at, cycle + 1));
            if (at > cycle || u < floor || cycle >= horizon_)
                continue;
            bool cascade = can_casc_[u] && cycle < normal;
            const auto &cls = low_.opClasses()[classes_[u]];
            uint32_t tree = cascade ? cls.cascade_tree : cls.tree;
            rumap::CheckStats ignore;
            std::vector<rumap::Reservation> reserved;
            if (!checker_.tryReserve(tree, cycle, ru_, ignore, nullptr,
                                     &reserved))
                continue;
            int32_t prev_len = len_;
            cycles_[u] = cycle;
            ++placed_;
            len_ = std::max(len_, cycle + 1);
            const auto &edges = graph_.edges();
            for (uint32_t ei : graph_.succEdges()[u])
                --pending_[edges[ei].succ];
            enumerate(cycle, u + 1);
            for (uint32_t ei : graph_.succEdges()[u])
                ++pending_[edges[ei].succ];
            len_ = prev_len;
            --placed_;
            cycles_[u] = -1;
            for (const auto &r : reserved)
                ru_.releaseSlot(r.cycle, r.mask);
        }
        if (placed_ == 0 || next == INT32_MAX || next >= horizon_)
            return;
        enumerate(next, 0);
    }

    const LowMdes &low_;
    rumap::Checker checker_;
    rumap::RuMap ru_;
    sched::DepGraph graph_;
    std::vector<uint32_t> classes_;
    std::vector<uint8_t> can_casc_;
    std::vector<int32_t> cycles_;
    std::vector<uint32_t> pending_;
    uint32_t n_ = 0;
    uint32_t placed_ = 0;
    int32_t len_ = 0;
    int32_t best_ = 0;
    int32_t horizon_ = 0;
};

/** Exact search with no time cap (deterministic) and a generous node
 * budget; uses @p list as the incumbent. */
exact::ExactResult
exactOn(exact::ExactScheduler &search, const Block &block,
        const BlockSchedule &list)
{
    SchedStats stats;
    exact::ExactOptions opts;
    opts.time_budget_us = 0;
    opts.max_nodes = 1u << 22;
    opts.incumbent = &list;
    return search.scheduleBlock(block, stats, opts);
}

void
expectMatchesBruteForce(const LowMdes &low, const Block &block,
                        const char *what)
{
    ListScheduler list(low);
    exact::ExactScheduler search(low);
    SchedStats stats;
    BlockSchedule seed = list.scheduleBlock(block, stats);
    exact::ExactResult er = exactOn(search, block, seed);

    int32_t truth = BruteForce(low).shortest(block, seed.length);
    truth = std::min(truth, seed.length);

    EXPECT_TRUE(er.proven_optimal) << what;
    EXPECT_EQ(er.schedule.length, truth) << what;
    EXPECT_LE(er.schedule.length, seed.length) << what;
    EXPECT_GE(er.schedule.length, er.lower_bound) << what;
    sched::VerifyResult v =
        sched::verifyScheduleEx(block, er.schedule, low);
    EXPECT_TRUE(v.ok()) << what << ": "
                        << sched::verifyFaultName(v.fault) << ": "
                        << v.message;
}

// ------------------------------------------------- brute-force lockstep

TEST(ExactScheduler, MatchesBruteForceHandcrafted)
{
    LowMdes low = twoWide();
    uint32_t ADD = low.findOpClass("ADD");
    uint32_t LOAD = low.findOpClass("LOAD");
    uint32_t BR = low.findOpClass("BR");

    {
        // Six independent ADDs on a 2-wide machine: optimum 3.
        Block b;
        for (int i = 0; i < 6; ++i)
            b.instrs.push_back(instr(ADD, {1}, {10 + i}));
        expectMatchesBruteForce(low, b, "six independent adds");
    }
    {
        // A cascade chain: r2=r1+1; r3=r2+1 with the consumer
        // cascadable - both can issue in cycle 0.
        Block b;
        b.instrs = {
            instr(ADD, {1}, {2}),
            instr(ADD, {2}, {3}, /*cascadable=*/true),
            instr(ADD, {3}, {4}, /*cascadable=*/true),
        };
        expectMatchesBruteForce(low, b, "cascade chain");
    }
    {
        // Loads feeding adds plus independent filler, branch last.
        Block b;
        b.instrs = {
            instr(LOAD, {1}, {2}),
            instr(LOAD, {1}, {3}),
            instr(ADD, {2}, {4}),
            instr(ADD, {3}, {5}),
            instr(ADD, {9}, {6}),
            instr(ADD, {9}, {7}),
            instr(BR, {4}, {}, false, /*is_branch=*/true),
        };
        expectMatchesBruteForce(low, b, "loads, adds, branch");
    }
    {
        // WAW/WAR pressure: repeated writes to one register.
        Block b;
        b.instrs = {
            instr(ADD, {1}, {2}),
            instr(ADD, {2}, {3}),
            instr(ADD, {9}, {2}),
            instr(ADD, {2}, {5}),
            instr(LOAD, {5}, {2}),
        };
        expectMatchesBruteForce(low, b, "waw/war pressure");
    }
}

TEST(ExactScheduler, MatchesBruteForceRandomTinyBlocks)
{
    LowMdes low = machineByName("SuperSPARC");
    workload::WorkloadSpec spec = machines::superSparc().workload;
    spec.num_ops = 64;
    spec.min_block_size = 3;
    spec.max_block_size = 6;
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        spec.seed = seed;
        sched::Program program = workload::generate(spec, low);
        ASSERT_FALSE(program.blocks.empty());
        for (size_t b = 0; b < program.blocks.size(); ++b) {
            std::string what = "seed " + std::to_string(seed)
                               + " block " + std::to_string(b);
            expectMatchesBruteForce(low, program.blocks[b],
                                    what.c_str());
        }
    }
}

// --------------------------------------------------- wouldFit() purity

TEST(ExactScheduler, WouldFitLeavesNoTrace)
{
    LowMdes low = machineByName("K5");
    rumap::Checker probed(low);
    rumap::Checker control(low);
    rumap::RuMap map_a;
    rumap::RuMap map_b;

    std::vector<uint32_t> trees;
    for (const auto &cls : low.opClasses()) {
        trees.push_back(cls.tree);
        if (cls.cascade_tree != kInvalidId)
            trees.push_back(cls.cascade_tree);
    }
    ASSERT_FALSE(trees.empty());

    // Interleave millions of wouldFit() probes on map A with identical
    // tryReserve() sequences on both maps; the two must stay
    // bit-identical and behave identically throughout.
    uint64_t probes = 0;
    uint64_t rng = 0x9e3779b97f4a7c15ull;
    auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    for (int round = 0; round < 40; ++round) {
        for (int32_t cycle = 0; cycle < 64; ++cycle) {
            for (uint32_t t : trees) {
                for (int rep = 0; rep < 45; ++rep) {
                    probed.wouldFit(t, cycle, map_a);
                    ++probes;
                }
            }
        }
        // A burst of identical reservations against both maps.
        for (int i = 0; i < 32; ++i) {
            uint32_t t = trees[next() % trees.size()];
            int32_t cycle = int32_t(next() % 64);
            bool fit_a = probed.wouldFit(t, cycle, map_a);
            bool fit_b = control.wouldFit(t, cycle, map_b);
            ASSERT_EQ(fit_a, fit_b);
            rumap::CheckStats sa, sb;
            std::vector<rumap::Reservation> ra, rb;
            bool got_a = probed.tryReserve(t, cycle, map_a, sa, nullptr,
                                           &ra);
            bool got_b = control.tryReserve(t, cycle, map_b, sb,
                                            nullptr, &rb);
            ASSERT_EQ(got_a, got_b);
            ASSERT_EQ(ra.size(), rb.size());
            for (size_t k = 0; k < ra.size(); ++k) {
                ASSERT_EQ(ra[k].cycle, rb[k].cycle);
                ASSERT_EQ(ra[k].mask, rb[k].mask);
            }
        }
        ASSERT_EQ(map_a.windowBase(), map_b.windowBase());
        ASSERT_EQ(map_a.windowSize(), map_b.windowSize());
        for (size_t w = 0; w < map_a.windowSize(); ++w)
            ASSERT_EQ(map_a.windowData()[w], map_b.windowData()[w]);
    }
    EXPECT_GT(probes, 2'000'000u);
}

// ------------------------------------- budget exhaustion, cancellation

/** The block in a generated workload whose exact search visits the
 * most nodes (with the incumbent list schedule attached), or nullptr
 * when every block is proven at the root. */
struct HardBlock
{
    const Block *block = nullptr;
    BlockSchedule list;
    uint64_t nodes = 0;
};

HardBlock
findHardBlock(const LowMdes &low, sched::Program &program)
{
    ListScheduler list(low);
    exact::ExactScheduler search(low);
    HardBlock hard;
    for (const auto &block : program.blocks) {
        SchedStats stats;
        BlockSchedule seed = list.scheduleBlock(block, stats);
        exact::ExactOptions opts;
        opts.time_budget_us = 0;
        opts.max_nodes = 1u << 18;
        opts.incumbent = &seed;
        exact::ExactResult er = search.scheduleBlock(block, stats, opts);
        if (er.nodes > hard.nodes) {
            hard.nodes = er.nodes;
            hard.block = &block;
            hard.list = seed;
        }
    }
    return hard;
}

TEST(ExactScheduler, BudgetExhaustionReturnsListIncumbent)
{
    LowMdes low = machineByName("SuperSPARC");
    workload::WorkloadSpec spec = machines::superSparc().workload;
    spec.num_ops = 3000;
    spec.seed = 11;
    sched::Program program = workload::generate(spec, low);
    HardBlock hard = findHardBlock(low, program);
    ASSERT_NE(hard.block, nullptr);
    ASSERT_GT(hard.nodes, 2048u)
        << "workload has no block with a non-trivial search";

    exact::ExactScheduler search(low);
    SchedStats stats;
    exact::ExactOptions opts;
    opts.time_budget_us = 0;
    opts.max_nodes = 1;
    opts.incumbent = &hard.list;
    exact::ExactResult er =
        search.scheduleBlock(*hard.block, stats, opts);

    EXPECT_TRUE(er.budget_exhausted);
    EXPECT_FALSE(er.proven_optimal);
    EXPECT_FALSE(er.improved);
    EXPECT_EQ(er.schedule.length, hard.list.length);
    EXPECT_EQ(er.schedule.cycles, hard.list.cycles);
    EXPECT_LT(er.lower_bound, er.schedule.length);
    EXPECT_GT(er.gap(), 0);
}

TEST(ExactScheduler, CancellationStopsSearchCleanly)
{
    LowMdes low = machineByName("SuperSPARC");
    workload::WorkloadSpec spec = machines::superSparc().workload;
    spec.num_ops = 3000;
    spec.seed = 11;
    sched::Program program = workload::generate(spec, low);
    HardBlock hard = findHardBlock(low, program);
    ASSERT_NE(hard.block, nullptr);
    // Cancellation is polled every 1024 nodes; make sure the search is
    // long enough that the second poll happens mid-search.
    ASSERT_GT(hard.nodes, 4096u);

    exact::ExactScheduler search(low);
    SchedStats stats;
    int polls = 0;
    exact::ExactOptions opts;
    opts.time_budget_us = 0;
    opts.max_nodes = 1u << 22;
    opts.cancel = exact::CancelToken([&polls] { return ++polls >= 2; });
    opts.incumbent = &hard.list;
    exact::ExactResult er =
        search.scheduleBlock(*hard.block, stats, opts);

    EXPECT_TRUE(er.cancelled);
    EXPECT_FALSE(er.proven_optimal);
    EXPECT_GE(polls, 2);
    EXPECT_LT(er.nodes, hard.nodes);
    EXPECT_LE(er.schedule.length, hard.list.length);
    sched::VerifyResult v =
        sched::verifyScheduleEx(*hard.block, er.schedule, low);
    EXPECT_TRUE(v.ok()) << sched::verifyFaultName(v.fault) << ": "
                        << v.message;
}

// --------------------------------------------------- service portfolio

service::ScheduleRequest
syntheticRequest(const std::string &machine, size_t ops, uint64_t seed,
                 service::SchedulerKind kind)
{
    service::ScheduleRequest req;
    req.machine = machine;
    req.synth_ops = ops;
    req.seed = seed;
    req.scheduler = kind;
    req.exact_ms = 0; // node budget only: deterministic
    req.exact_nodes = 1u << 16;
    return req;
}

TEST(ExactService, PortfolioNeverLongerThanList)
{
    std::vector<service::ScheduleRequest> batch;
    batch.push_back(syntheticRequest("K5", 600, 3,
                                     service::SchedulerKind::List));
    batch.push_back(syntheticRequest("K5", 600, 3,
                                     service::SchedulerKind::Portfolio));
    batch.push_back(syntheticRequest("PA7100", 600, 5,
                                     service::SchedulerKind::List));
    batch.push_back(syntheticRequest("PA7100", 600, 5,
                                     service::SchedulerKind::Portfolio));
    service::MdesService svc({.num_workers = 2});
    auto resp = svc.runBatch(std::move(batch));
    ASSERT_EQ(resp.size(), 4u);
    for (const auto &r : resp)
        ASSERT_TRUE(r.ok()) << r.error.message;
    for (size_t pair = 0; pair < 2; ++pair) {
        const auto &lst = resp[pair * 2];
        const auto &pf = resp[pair * 2 + 1];
        ASSERT_EQ(lst.schedules.size(), pf.schedules.size());
        ASSERT_EQ(pf.outcomes.size(), pf.schedules.size());
        EXPECT_EQ(pf.exact.blocks, pf.schedules.size());
        uint64_t wins = pf.exact.wins_list + pf.exact.wins_backward
                        + pf.exact.wins_modulo + pf.exact.wins_exact;
        EXPECT_EQ(wins, pf.schedules.size());
        for (size_t b = 0; b < pf.schedules.size(); ++b) {
            EXPECT_LE(pf.schedules[b].length, lst.schedules[b].length)
                << "pair " << pair << " block " << b;
            const auto &o = pf.outcomes[b];
            EXPECT_EQ(o.length, pf.schedules[b].length);
            EXPECT_LE(o.lower_bound, o.length);
            if (o.proven_optimal) {
                EXPECT_EQ(o.lower_bound, o.length);
            }
        }
        EXPECT_GE(pf.exact.proven_optimal, pf.exact.blocks / 2)
            << "suspiciously low proven-optimal rate";
    }
}

TEST(ExactService, PortfolioDeterministicAcrossWorkerCounts)
{
    auto run = [](unsigned workers) {
        std::vector<service::ScheduleRequest> batch;
        batch.push_back(syntheticRequest(
            "SuperSPARC", 800, 9, service::SchedulerKind::Portfolio));
        batch.push_back(syntheticRequest(
            "K5", 500, 2, service::SchedulerKind::Exact));
        service::MdesService svc({.num_workers = workers});
        return svc.runBatch(std::move(batch));
    };
    auto one = run(1);
    auto four = run(4);
    ASSERT_EQ(one.size(), four.size());
    for (size_t i = 0; i < one.size(); ++i) {
        ASSERT_TRUE(one[i].ok());
        ASSERT_TRUE(four[i].ok());
        ASSERT_EQ(one[i].schedules.size(), four[i].schedules.size());
        for (size_t b = 0; b < one[i].schedules.size(); ++b) {
            EXPECT_EQ(one[i].schedules[b].cycles,
                      four[i].schedules[b].cycles);
            EXPECT_EQ(one[i].schedules[b].length,
                      four[i].schedules[b].length);
        }
        EXPECT_EQ(one[i].exact.proven_optimal,
                  four[i].exact.proven_optimal);
        EXPECT_EQ(one[i].exact.nodes, four[i].exact.nodes);
    }
}

} // namespace
} // namespace mdes
