/**
 * @file
 * Exact-scheduler quality bench: proven-optimal rate and schedule
 * length vs. plain list scheduling.
 *
 * For each machine, schedules the standard synthetic workload with the
 * list scheduler, then hands every block (with its list schedule as the
 * incumbent) to the branch-and-bound exact scheduler at the service's
 * default per-block budget (50 ms, 2^20 nodes). Reports how many blocks
 * the search proves optimal, the average optimality gap of the rest,
 * and the total-cycle improvement the exact schedules buy.
 *
 * `--json PATH` records, per machine, a `proven_rate` entry over the
 * blocks of <= 12 operations (gated by a sanity band in the committed
 * baseline: the search must keep proving >= 80% of them; the K5's
 * standard workload also has 13-22-op blocks, reported separately) and
 * a `len_ratio` entry (exact total cycles / list total cycles; <= 1 by
 * construction since the incumbent is never discarded). Both carry the
 * *list* scheduler's fingerprint, so the perf gate also pins the
 * baseline workload and list behavior bit-for-bit.
 */

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/transforms.h"
#include "exact/exact_scheduler.h"
#include "hmdes/compile.h"
#include "perf_json.h"
#include "workload/workload.h"

int
main(int argc, char **argv)
{
    using namespace mdes;
    using namespace mdes::bench;

    std::string json_path = perfjson::stripJsonFlag(argc, argv);

    printHeader("exact scheduler (branch and bound)",
                "proven-optimal rate and schedule-length improvement "
                "vs. list scheduling at 50 ms/block");

    TextTable table;
    table.setHeader({"MDES", "Blocks", "Proven", "Rate", "Rate<=12op",
                     "Avg Gap", "List Cycles", "Exact Cycles",
                     "Improved", "Nodes/Block"});

    static const char *kMachines[] = {"SuperSPARC", "K5", "PA7100"};
    for (const char *name : kMachines) {
        const machines::MachineInfo *info = machines::byName(name);
        Mdes m = hmdes::compileOrThrow(info->source);
        runPipeline(m, PipelineConfig::all());
        lmdes::LowerOptions lopts;
        lopts.pack_bit_vector = true;
        lmdes::LowMdes low = lmdes::LowMdes::lower(m, lopts);

        workload::WorkloadSpec spec = info->workload;
        spec.num_ops = 1500;
        sched::Program program = workload::generate(spec, low);

        sched::ListScheduler list(low);
        sched::SchedStats list_stats;
        std::vector<sched::BlockSchedule> list_scheds =
            list.scheduleProgram(program, list_stats);
        uint64_t list_fp = scheduleFingerprint(list_scheds);

        exact::ExactScheduler search(low);
        uint64_t proven = 0, improved = 0, nodes = 0, gap_cycles = 0;
        uint64_t list_total = 0, exact_total = 0;
        uint64_t small = 0, small_proven = 0;
        perfjson::Stopwatch watch;
        watch.start();
        for (size_t b = 0; b < program.blocks.size(); ++b) {
            sched::SchedStats stats;
            exact::ExactOptions opts;
            opts.time_budget_us = 50000;
            opts.incumbent = &list_scheds[b];
            exact::ExactResult er =
                search.scheduleBlock(program.blocks[b], stats, opts);
            proven += er.proven_optimal ? 1 : 0;
            improved += er.improved ? 1 : 0;
            nodes += er.nodes;
            gap_cycles += uint64_t(er.gap());
            list_total += uint64_t(list_scheds[b].length);
            exact_total += uint64_t(er.schedule.length);
            if (program.blocks[b].instrs.size() <= 12) {
                ++small;
                small_proven += er.proven_optimal ? 1 : 0;
            }
        }
        watch.stop();

        size_t blocks = program.blocks.size();
        double rate = blocks ? double(proven) / double(blocks) : 1.0;
        double small_rate =
            small ? double(small_proven) / double(small) : 1.0;
        double len_ratio =
            list_total ? double(exact_total) / double(list_total) : 1.0;
        uint64_t unproven = uint64_t(blocks) - proven;
        table.addRow({
            name,
            std::to_string(blocks),
            std::to_string(proven),
            TextTable::num(100.0 * rate, 1) + "%",
            TextTable::num(100.0 * small_rate, 1) + "%",
            unproven ? TextTable::num(double(gap_cycles)
                                          / double(unproven),
                                      2)
                     : "-",
            std::to_string(list_total),
            std::to_string(exact_total),
            std::to_string(improved),
            std::to_string(blocks ? nodes / blocks : 0),
        });

        double secs = watch.totalSec();
        perfjson::record({std::string("exact/") + name + "/proven_rate",
                          watch.avgMs(),
                          secs > 0 ? double(blocks) / secs : 0,
                          small_rate, list_fp});
        perfjson::record({std::string("exact/") + name + "/len_ratio",
                          watch.avgMs(),
                          secs > 0 ? double(blocks) / secs : 0,
                          len_ratio, list_fp});
    }
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nMeasured characterization: within the service's default\n"
        "50 ms/block budget the branch-and-bound search proves the list\n"
        "schedule optimal (or finds and proves a shorter one) for the\n"
        "overwhelming majority of basic blocks; the canonical issue-order\n"
        "enumeration plus the critical-path/resource-height bounds do\n"
        "the pruning, and wouldFit() probing sharpens earliest starts\n"
        "without touching the RU map.\n");
    printFootnote();

    if (!json_path.empty()
        && !perfjson::write(json_path, "exact_scheduler", "exact_rate")) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    return 0;
}
