/**
 * @file
 * google-benchmark microbenchmarks of the MDES toolchain itself: parsing
 * the high-level language, the transformation pipeline, the AND/OR -> OR
 * preprocessor expansion, and lowering to the packed low-level form.
 * The two-tier model only works if translation stays cheap enough to run
 * at compiler-build (or even compiler-start) time.
 */

#include <benchmark/benchmark.h>

#include <sstream>

#include "bench_util.h"
#include "core/expand.h"
#include "hmdes/compile.h"

namespace {

using namespace mdes;
using namespace mdes::bench;

void
compileOnly(benchmark::State &state, const machines::MachineInfo &m)
{
    for (auto _ : state) {
        Mdes model = hmdes::compileOrThrow(m.source);
        benchmark::DoNotOptimize(model.options().size());
    }
}

void
fullPipeline(benchmark::State &state, const machines::MachineInfo &m,
             exp::Rep rep)
{
    for (auto _ : state) {
        exp::RunConfig config = stageConfig(m, rep, Stage::Full);
        config.schedule = false;
        exp::RunResult result = exp::run(config);
        benchmark::DoNotOptimize(result.memory.total());
    }
}

void
saveLoadRoundTrip(benchmark::State &state, const machines::MachineInfo &m)
{
    exp::RunConfig config =
        stageConfig(m, exp::Rep::AndOrTree, Stage::Full);
    config.schedule = false;
    exp::RunResult built = exp::run(config);
    for (auto _ : state) {
        std::stringstream buf;
        built.low.save(buf);
        auto loaded = lmdes::LowMdes::load(buf);
        benchmark::DoNotOptimize(loaded.checks().size());
    }
}

void
registerAll()
{
    for (const auto *m : machines::all()) {
        benchmark::RegisterBenchmark(
            ("hmdes_compile/" + m->name).c_str(),
            [m](benchmark::State &state) { compileOnly(state, *m); });
        benchmark::RegisterBenchmark(
            ("translate_full_or/" + m->name).c_str(),
            [m](benchmark::State &state) {
                fullPipeline(state, *m, exp::Rep::OrTree);
            });
        benchmark::RegisterBenchmark(
            ("translate_full_andor/" + m->name).c_str(),
            [m](benchmark::State &state) {
                fullPipeline(state, *m, exp::Rep::AndOrTree);
            });
        benchmark::RegisterBenchmark(
            ("lmdes_save_load/" + m->name).c_str(),
            [m](benchmark::State &state) {
                saveLoadRoundTrip(state, *m);
            });
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
