/**
 * @file
 * Reproduces Figure 1: the six reservation tables (options) that model
 * the resources used by the SuperSPARC's one-cycle integer load - one
 * memory unit, one of two register write ports, one of three decoders,
 * in priority order (lowest-numbered decoder and write port first).
 */

#include <cstdio>

#include "bench_util.h"
#include "core/expand.h"
#include "core/print.h"
#include "hmdes/compile.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("Figure 1",
                "the six reservation tables that represent the resources "
                "used by the SuperSPARC's integer load operation");

    Mdes m = hmdes::compileOrThrow(machines::superSparc().source);
    Mdes flat = expandToOrForm(m);
    OpClassId ld = flat.findOpClass("LD");
    const AndOrTree &tree = flat.tree(flat.opClass(ld).tree);
    std::printf("%s", printOrTree(flat, tree.or_trees[0]).c_str());

    std::printf(
        "\nAll option lists are prioritized (option 1 highest), so the\n"
        "first available (lowest numbered) decoder and register write\n"
        "port will be used. \"Cycle\" is the usage time relative to time\n"
        "zero = the first stage of the execution pipeline: decoder usage\n"
        "is at -1, the write port at +1 (around the operation latency).\n");
    return 0;
}
