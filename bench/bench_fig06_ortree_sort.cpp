/**
 * @file
 * Reproduces Figure 6: optimizing the order of the OR-trees in an
 * AND/OR-tree for resource conflict detection - before and after
 * applying the heuristic sort (earliest usage time, then fewest options,
 * then most shared, then original order).
 */

#include <cstdio>

#include "bench_util.h"
#include "core/transforms.h"
#include "hmdes/compile.h"

namespace {

void
showTree(const mdes::Mdes &m, const char *op)
{
    using namespace mdes;
    OpClassId cls = m.findOpClass(op);
    const AndOrTree &tree = m.tree(m.opClass(cls).tree);
    std::printf("  %-6s AND(", op);
    for (size_t i = 0; i < tree.or_trees.size(); ++i) {
        const OrTree &ot = m.orTree(tree.or_trees[i]);
        std::printf("%s%s[%zu opt, t%+d]", i ? ", " : "",
                    ot.name.c_str(), ot.options.size(),
                    m.earliestTimeOr(tree.or_trees[i]));
    }
    std::printf(")\n");
}

} // namespace

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("Figure 6",
                "optimizing the order of the OR-trees in an AND/OR-tree "
                "for resource conflict detection");

    Mdes m = hmdes::compileOrThrow(machines::superSparc().source);
    eliminateRedundantInfo(m);
    shiftUsageTimes(m);
    sortUsageChecks(m);

    const char *ops[] = {"LD", "ST", "ADD_I", "ADD_R", "SLL_R"};

    std::printf("(a) Original order specified in the description\n");
    std::printf("    [options, earliest usage time per subtree]:\n\n");
    for (const char *op : ops)
        showTree(m, op);

    size_t reordered = sortOrSubtrees(m);

    std::printf("\n(b) After sorting with the Section 8 heuristics\n");
    std::printf("    (earliest time, fewest options, most shared):\n\n");
    for (const char *op : ops)
        showTree(m, op);

    std::printf("\n%zu AND/OR-trees were reordered.\n", reordered);
    std::printf(
        "\nAs in the paper's example, the single-option memory-unit\n"
        "subtree moves ahead of the multi-option write-port and decoder\n"
        "subtrees, so the most conflict-prone resource is probed first\n"
        "and a busy memory unit rejects the attempt after one check.\n");
    return 0;
}
