/**
 * @file
 * Reproduces Figure 3: the two ways of modeling the resource constraints
 * of a SuperSPARC integer load - (a) the traditional flat OR-tree of six
 * fully-enumerated options, and (b) the proposed AND/OR-tree (an AND of
 * the memory unit, a write-port OR-tree, and a decoder OR-tree).
 */

#include <cstdio>

#include "bench_util.h"
#include "core/expand.h"
#include "core/print.h"
#include "hmdes/compile.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("Figure 3",
                "two methods of modeling the resource constraints of a "
                "SuperSPARC integer load operation");

    Mdes m = hmdes::compileOrThrow(machines::superSparc().source);

    std::printf("(a) Traditional OR-tree representation:\n\n");
    Mdes flat = expandToOrForm(m);
    std::printf(
        "%s",
        printTree(flat, flat.opClass(flat.findOpClass("LD")).tree)
            .c_str());

    std::printf("\n(b) Proposed AND/OR-tree representation:\n\n");
    std::printf(
        "%s",
        printTree(m, m.opClass(m.findOpClass("LD")).tree).c_str());

    std::printf(
        "\nBy exploiting the short-circuit properties of AND and OR, the\n"
        "constraint checker determines which required resources are\n"
        "available without unnecessary checks: if no write port is free,\n"
        "form (b) discovers it in at most 3 probes, while form (a) must\n"
        "scan all six enumerated options.\n");
    return 0;
}
