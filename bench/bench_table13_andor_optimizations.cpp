/**
 * @file
 * Reproduces Table 13: AND/OR-tree scheduling characteristics before and
 * after the Section 8 conflict-detection optimizations (OR-subtree
 * sorting + common-usage hoisting).
 */

#include "bench_util.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("Table 13",
                "scheduling characteristics before and after optimizing "
                "AND/OR-trees for resource conflict detection");

    struct PaperRow
    {
        const char *name;
        double opt_before, opt_after, chk_before, chk_after;
    };
    const PaperRow paper[] = {
        {"PA7100", 1.38, 1.38, 1.55, 1.55},
        {"Pentium", 1.49, 1.49, 1.57, 1.57},
        {"SuperSPARC", 4.38, 2.97, 4.49, 3.08},
        {"K5", 5.20, 4.32, 5.25, 4.38},
    };

    TextTable table;
    table.setHeader({"MDES", "Options/Attempt Before",
                     "Options/Attempt After", "Diff",
                     "Checks/Attempt Before", "Checks/Attempt After",
                     "Diff", "paper: options", "paper: checks"});
    for (size_t i = 0; i < machines::all().size(); ++i) {
        const auto *m = machines::all()[i];
        exp::RunResult before_run =
            runStage(*m, exp::Rep::AndOrTree, Stage::TimeShifted);
        exp::RunResult after_run =
            runStage(*m, exp::Rep::AndOrTree, Stage::Full);
        double ob = before_run.stats.checks.avgOptionsPerAttempt();
        double oa = after_run.stats.checks.avgOptionsPerAttempt();
        double cb = before_run.stats.checks.avgChecksPerAttempt();
        double ca = after_run.stats.checks.avgChecksPerAttempt();
        table.addRow({
            m->name,
            TextTable::num(ob, 2),
            TextTable::num(oa, 2),
            reduction(ob, oa),
            TextTable::num(cb, 2),
            TextTable::num(ca, 2),
            reduction(cb, ca),
            TextTable::num(paper[i].opt_before, 2) + " -> " +
                TextTable::num(paper[i].opt_after, 2),
            TextTable::num(paper[i].chk_before, 2) + " -> " +
                TextTable::num(paper[i].chk_after, 2),
        });
        std::printf("%s: %zu AND/OR-trees reordered, %zu usages hoisted\n",
                    m->name.c_str(), after_run.pipeline.trees_reordered,
                    after_run.pipeline.usages_hoisted);
    }
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nAs in the paper: most AND/OR-trees of the SuperSPARC and K5\n"
        "descriptions are reordered (conflict-prone subtrees first),\n"
        "cutting options checked before a conflict is found; PA7100 and\n"
        "Pentium trees have little or nothing to reorder. MDES sizes do\n"
        "not change.\n");
    printFootnote();
    return 0;
}
