/**
 * @file
 * Enforces mdes::trace's overhead budget on the scheduler hot loop:
 * with tracing compiled in but *disabled*, a full list-scheduling run
 * of bench_perf_scheduler's workload (SuperSPARC, fully optimized
 * AND/OR description, 20k ops) must cost within 1% of the same run
 * before tracing was ever enabled - the probe hooks reduce to one
 * relaxed atomic load per block and per-span scope.
 *
 * Method: median of repeated runs in one binary, comparing the
 * never-enabled state against the disabled-after-use state (buffers
 * registered, ids assigned - the steady state of a long-lived service
 * that traced one request). A failed comparison re-samples both sides
 * a few times before declaring failure, since a 1% budget sits near
 * machine noise. The enabled-tracing cost is reported informationally,
 * not asserted: it pays for per-op attempt counts and the conflict
 * heat table by design.
 *
 * `--json <path>` writes the measurements for CI artifact upload.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sched/list_scheduler.h"
#include "support/flightrec.h"
#include "support/json.h"
#include "support/trace.h"
#include "workload/workload.h"

namespace {

using namespace mdes;
using namespace mdes::bench;

double
scheduleOnce(const lmdes::LowMdes &low, const sched::Program &program,
             uint64_t *ops_out = nullptr)
{
    auto t0 = std::chrono::steady_clock::now();
    sched::ListScheduler scheduler(low);
    sched::SchedStats stats;
    scheduler.scheduleProgram(program, stats);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    if (ops_out)
        *ops_out = stats.ops_scheduled;
    return ms;
}

double
medianRunMs(const lmdes::LowMdes &low, const sched::Program &program,
            int samples)
{
    std::vector<double> ms;
    for (int i = 0; i < samples; ++i)
        ms.push_back(scheduleOnce(low, program));
    std::sort(ms.begin(), ms.end());
    return ms[ms.size() / 2];
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: bench_trace_overhead [--json <path>]\n");
            return 2;
        }
    }

    printHeader("trace overhead",
                "scheduler hot-loop cost with tracing compiled in: "
                "never-enabled vs disabled-after-use vs enabled");

    const machines::MachineInfo *machine = nullptr;
    for (const auto *m : machines::all()) {
        if (m->name == "SuperSPARC")
            machine = m;
    }
    if (!machine) {
        std::fprintf(stderr, "SuperSPARC not built in\n");
        return 1;
    }

    exp::RunConfig config = stageConfig(*machine, exp::Rep::AndOrTree,
                                        Stage::Full);
    config.schedule = false;
    exp::RunResult built = exp::run(config);

    workload::WorkloadSpec spec = machine->workload;
    spec.num_ops = 20000;
    sched::Program program = workload::generate(spec, built.low);

    constexpr int kSamples = 9;
    constexpr double kBudget = 0.01;

    // Warm the caches, then measure the pristine state: tracing has
    // never been enabled in this process.
    scheduleOnce(built.low, program);
    scheduleOnce(built.low, program);
    double baseline_ms = medianRunMs(built.low, program, kSamples);

    // One traced run: registers this thread's buffer and exercises the
    // probe hooks (informational cost; also sanity-checks that the
    // enabled path actually records).
    trace::setEnabled(true);
    uint64_t traced_ops = 0;
    double enabled_ms = scheduleOnce(built.low, program, &traced_ops);
    size_t spans = trace::Collector::instance().spanCount();
    trace::setEnabled(false);
    trace::Collector::instance().clear();
    bool ok = true;
    if (spans == 0 || traced_ops == 0) {
        std::fprintf(stderr,
                     "FAIL: enabled run recorded %zu spans for %llu "
                     "ops (tracing inert?)\n",
                     spans, (unsigned long long)traced_ops);
        ok = false;
    }

    // The asserted state: disabled again, buffers now registered. A 1%
    // budget is close to timer noise, so a miss re-samples both sides
    // before counting as a regression.
    double disabled_ms = medianRunMs(built.low, program, kSamples);
    double overhead = disabled_ms / baseline_ms - 1.0;
    int rounds = 1;
    while (overhead > kBudget && rounds < 5) {
        baseline_ms = medianRunMs(built.low, program, kSamples);
        disabled_ms = medianRunMs(built.low, program, kSamples);
        overhead = disabled_ms / baseline_ms - 1.0;
        ++rounds;
    }
    if (overhead > kBudget) {
        std::fprintf(stderr,
                     "FAIL: disabled tracing costs %.2f%% (budget "
                     "%.0f%%) after %d measurement rounds\n",
                     overhead * 100.0, kBudget * 100.0, rounds);
        ok = false;
    }

    double enabled_overhead = enabled_ms / baseline_ms - 1.0;

    // The flight recorder is on by default, so every measurement above
    // already paid its ring stores. Its own budget is asserted the
    // other way around: turning the recorder *off* must not make the
    // run more than 1% faster, i.e. the always-on ring costs <1%.
    uint64_t flight_before = flightrec::recordedCount();
    scheduleOnce(built.low, program);
    if (flightrec::recordedCount() == flight_before) {
        std::fprintf(stderr,
                     "FAIL: flight recorder captured nothing "
                     "(recorder inert?)\n");
        ok = false;
    }
    flightrec::setEnabled(false);
    double recorder_off_ms = medianRunMs(built.low, program, kSamples);
    flightrec::setEnabled(true);
    double recorder_on_ms = medianRunMs(built.low, program, kSamples);
    double flight_overhead = recorder_on_ms / recorder_off_ms - 1.0;
    int flight_rounds = 1;
    while (flight_overhead > kBudget && flight_rounds < 5) {
        flightrec::setEnabled(false);
        recorder_off_ms = medianRunMs(built.low, program, kSamples);
        flightrec::setEnabled(true);
        recorder_on_ms = medianRunMs(built.low, program, kSamples);
        flight_overhead = recorder_on_ms / recorder_off_ms - 1.0;
        ++flight_rounds;
    }
    if (flight_overhead > kBudget) {
        std::fprintf(stderr,
                     "FAIL: flight recorder costs %.2f%% (budget "
                     "%.0f%%) after %d measurement rounds\n",
                     flight_overhead * 100.0, kBudget * 100.0,
                     flight_rounds);
        ok = false;
    }

    TextTable table;
    table.setHeader({"State", "Median ms", "vs never-enabled"});
    table.addRow({"never-enabled", TextTable::num(baseline_ms, 2), "-"});
    table.addRow({"disabled-after-use", TextTable::num(disabled_ms, 2),
                  TextTable::percent(overhead)});
    table.addRow({"enabled (1 run)", TextTable::num(enabled_ms, 2),
                  TextTable::percent(enabled_overhead)});
    table.addRow({"flight recorder off",
                  TextTable::num(recorder_off_ms, 2), "-"});
    table.addRow({"flight recorder on",
                  TextTable::num(recorder_on_ms, 2),
                  TextTable::percent(flight_overhead) + " vs off"});
    std::printf("%s", table.toString().c_str());
    std::printf("\n%d-sample medians, %llu ops/run, %zu spans recorded "
                "while enabled; budget: disabled <= %.0f%% over "
                "never-enabled, recorder-on <= %.0f%% over "
                "recorder-off (%s).\n",
                kSamples, (unsigned long long)traced_ops, spans,
                kBudget * 100.0, kBudget * 100.0,
                ok ? "met" : "MISSED");

    if (!json_path.empty()) {
        JsonWriter w;
        w.beginObject();
        w.key("bench").value("trace_overhead");
        w.key("ok").value(ok);
        w.key("ops_per_run").value(traced_ops);
        w.key("samples").value(uint64_t(kSamples));
        w.key("rounds").value(uint64_t(rounds));
        w.key("never_enabled_ms").value(baseline_ms);
        w.key("disabled_after_use_ms").value(disabled_ms);
        w.key("disabled_overhead").value(overhead);
        w.key("enabled_ms").value(enabled_ms);
        w.key("enabled_overhead").value(enabled_overhead);
        w.key("spans_recorded").value(uint64_t(spans));
        w.key("flightrec_off_ms").value(recorder_off_ms);
        w.key("flightrec_on_ms").value(recorder_on_ms);
        w.key("flightrec_overhead").value(flight_overhead);
        w.key("flightrec_rounds").value(uint64_t(flight_rounds));
        w.endObject();
        std::ofstream out(json_path, std::ios::trunc);
        out << w.str() << "\n";
        if (!out) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         json_path.c_str());
            ok = false;
        } else {
            std::printf("wrote %s\n", json_path.c_str());
        }
    }

    printFootnote();
    return ok ? 0 : 1;
}
