/**
 * @file
 * Reproduces Table 10: resource checks per scheduling attempt before and
 * after the bit-vector check encoding (one cycle/word), on top of the
 * Section 5 cleanups.
 */

#include "bench_util.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("Table 10",
                "scheduling characteristics before and after a "
                "bit-vector representation is used (one cycle/word)");

    struct PaperRow
    {
        const char *name;
        double or_before, or_after, andor_before, andor_after;
    };
    const PaperRow paper[] = {
        {"PA7100", 2.32, 2.18, 1.89, 1.6},
        {"Pentium", 3.99, 2.31, 3.99, 2.31},
        {"SuperSPARC", 31.09, 26.69, 4.83, 4.62},
        {"K5", 35.49, 34.35, 5.73, 5.30},
    };

    TextTable table;
    table.setHeader({"MDES", "Rep", "Checks/Attempt Before",
                     "Checks/Attempt After", "Diff", "paper: before",
                     "paper: after"});
    for (size_t i = 0; i < machines::all().size(); ++i) {
        const auto *m = machines::all()[i];
        for (auto rep : {exp::Rep::OrTree, exp::Rep::AndOrTree}) {
            double before = runStage(*m, rep, Stage::Cleaned)
                                .stats.checks.avgChecksPerAttempt();
            double after = runStage(*m, rep, Stage::BitVector)
                               .stats.checks.avgChecksPerAttempt();
            bool is_or = rep == exp::Rep::OrTree;
            table.addRow({
                m->name,
                exp::repName(rep),
                TextTable::num(before, 2),
                TextTable::num(after, 2),
                reduction(before, after),
                TextTable::num(is_or ? paper[i].or_before
                                     : paper[i].andor_before,
                               2),
                TextTable::num(is_or ? paper[i].or_after
                                     : paper[i].andor_after,
                               2),
            });
        }
        table.addSeparator();
    }
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nAs in the paper: packing merges same-cycle probes, so the\n"
        "Pentium (several usages per cycle) improves ~40%% while the\n"
        "other machines improve modestly until usage times are shifted\n"
        "into the same cycle (Table 12).\n");
    printFootnote();
    return 0;
}
