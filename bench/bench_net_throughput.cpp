/**
 * @file
 * Socket serving tier throughput: sustained requests/sec through
 * `mdes::net` over loopback, and the shed-rate curve under deliberate
 * overload.
 *
 * Sustained: concurrent clients replay a warm-cache request mix over
 * persistent connections against a two-worker server. Every response's
 * schedule fingerprint must equal the in-process run of the same
 * request - the socket tier is a transport, never a second scheduler -
 * and nothing may shed. The JSON entry's fingerprint hashes the
 * in-process fingerprints of the mix, so the perf gate
 * (scripts/compare_perf.py) catches any behavior change riding in on a
 * throughput win.
 *
 * Overload: a burst of distinct-artifact requests against one worker
 * with a tiny admission queue and faultsim-stalled compiles. Every
 * burst request must come back typed - Ok or Overloaded, nothing else,
 * no hangs, no silent drops - and the shed rate must land in the
 * committed sanity band (the gate's "band" check): too low means the
 * queue bound is not biting, too high means the server starved
 * accepted work.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/client.h"
#include "net/server.h"
#include "perf_json.h"
#include "service/request_parse.h"
#include "service/service.h"
#include "support/faultsim.h"

namespace {

using namespace mdes;

/** The sustained mix: distinct machines, warm after one pass. */
std::vector<service::ScheduleRequest>
sustainedMix()
{
    std::vector<service::ScheduleRequest> mix;
    const char *names[] = {"K5", "Pentium", "PA7100", "SuperSPARC"};
    for (const char *name : names) {
        service::ScheduleRequest r;
        r.machine = name;
        r.synth_ops = 200;
        r.seed = 5;
        mix.push_back(r);
    }
    return mix;
}

/** Distinct-artifact burst (every compile is independent work). */
std::vector<service::ScheduleRequest>
overloadBurst(unsigned n)
{
    std::vector<service::ScheduleRequest> burst;
    for (unsigned i = 0; i < n; ++i) {
        service::ScheduleRequest req;
        req.machine = "K5";
        req.synth_ops = 100;
        req.transforms.cse = i & 1;
        req.transforms.redundant_options = i & 2;
        req.transforms.time_shift = i & 4;
        req.transforms.sort_usages = i & 8;
        req.transforms.hoist = i & 16;
        req.transforms.sort_or_trees = i & 32;
        burst.push_back(std::move(req));
    }
    return burst;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mdes;
    using namespace mdes::bench;

    std::string json_path = perfjson::stripJsonFlag(argc, argv);

    printHeader("net throughput",
                "loopback socket serving: sustained requests/sec and "
                "the shed-rate curve under overload");

    // --- Sustained: warm-cache serving over persistent connections ---

    std::vector<service::ScheduleRequest> mix = sustainedMix();
    std::vector<std::string> lines;
    std::vector<uint64_t> routes;
    for (const service::ScheduleRequest &r : mix) {
        lines.push_back(service::renderRequestLine(r));
        routes.push_back(net::routeKey(r));
    }

    // In-process ground truth (and the gate's behavior fingerprint).
    std::vector<uint64_t> want;
    {
        service::ServiceConfig cfg;
        cfg.num_workers = 2;
        service::MdesService local(cfg);
        for (const auto &resp : local.runBatch(mix)) {
            if (!resp.ok()) {
                std::fprintf(stderr, "in-process request failed: %s\n",
                             resp.error.message.c_str());
                return 1;
            }
            want.push_back(service::scheduleFingerprint(resp));
        }
    }
    uint64_t mix_fingerprint = perfjson::fnvInit();
    for (uint64_t f : want)
        perfjson::fnvMix(mix_fingerprint, f);

    constexpr unsigned kClients = 3;
    constexpr unsigned kRoundsPerClient = 24;

    net::ServerConfig sc;
    sc.service.num_workers = 2;
    sc.service.cache_capacity = 8;
    net::Server server(sc);
    server.start();

    // One untimed warm-up pass so the timed region measures serving.
    {
        net::BlockingClient warm("127.0.0.1", server.port());
        for (size_t i = 0; i < lines.size(); ++i)
            warm.request(lines[i], 0, routes[i]);
    }

    std::atomic<uint64_t> mismatches{0}, failures{0};
    auto t0 = std::chrono::steady_clock::now();
    {
        std::vector<std::thread> threads;
        for (unsigned c = 0; c < kClients; ++c) {
            threads.emplace_back([&] {
                net::BlockingClient client("127.0.0.1", server.port());
                if (!client.connected()) {
                    ++failures;
                    return;
                }
                for (unsigned round = 0; round < kRoundsPerClient;
                     ++round) {
                    for (size_t i = 0; i < lines.size(); ++i) {
                        net::NetResponse r =
                            client.request(lines[i], 0, routes[i]);
                        if (!r.ok())
                            ++failures;
                        else if (r.fingerprint != want[i])
                            ++mismatches;
                    }
                }
            });
        }
        for (std::thread &t : threads)
            t.join();
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    server.stop();

    const uint64_t total = uint64_t(kClients) * kRoundsPerClient *
                           uint64_t(mix.size());
    service::ServiceMetrics sm = server.metrics();

    TextTable sustained;
    sustained.setHeader({"Clients", "Requests", "Wall ms", "Requests/s",
                         "Shed", "Frames in"});
    sustained.addRow({std::to_string(kClients), std::to_string(total),
                      TextTable::num(secs * 1e3, 1),
                      TextTable::num(double(total) / secs, 1),
                      std::to_string(sm.requests_shed),
                      std::to_string(sm.net.frames_in)});
    std::printf("%s", sustained.toString().c_str());

    if (failures || mismatches) {
        std::fprintf(stderr,
                     "FAIL: %llu failed request(s), %llu fingerprint "
                     "mismatch(es) vs in-process\n",
                     (unsigned long long)failures.load(),
                     (unsigned long long)mismatches.load());
        return 1;
    }
    if (sm.requests_shed != 0 || !sm.shedConsistent()) {
        std::fprintf(stderr, "FAIL: sustained run shed %llu request(s)\n",
                     (unsigned long long)sm.requests_shed);
        return 1;
    }
    std::printf("\nall %llu socket responses bit-identical to the "
                "in-process run; zero shed.\n",
                (unsigned long long)total);

    perfjson::record({"net/loopback/sustained", secs * 1e3 / total,
                      double(total) / secs, /*shed_rate=*/0.0,
                      mix_fingerprint});

    // --- Overload: the shed-rate curve under a stalled backend ---

    constexpr unsigned kBurst = 48;
    constexpr unsigned kBurstClients = 4;
    std::vector<service::ScheduleRequest> burst = overloadBurst(kBurst);

    faultsim::install(
        faultsim::Plan::parse("seed=17,cache/slow-compile=1:20000"));

    net::ServerConfig oc;
    oc.service.num_workers = 1;
    oc.service.cache_capacity = kBurst;
    oc.service.max_queue = 2;
    net::Server overloaded(oc);
    overloaded.start();

    std::atomic<uint64_t> ok{0}, shed{0}, other{0};
    auto b0 = std::chrono::steady_clock::now();
    {
        std::vector<std::thread> threads;
        for (unsigned c = 0; c < kBurstClients; ++c) {
            threads.emplace_back([&, c] {
                net::BlockingClient client("127.0.0.1",
                                           overloaded.port());
                if (!client.connected()) {
                    ++other;
                    return;
                }
                for (unsigned i = c; i < kBurst; i += kBurstClients) {
                    net::NetResponse r = client.request(
                        service::renderRequestLine(burst[i]));
                    if (!r.transport_ok)
                        ++other;
                    else if (r.code == service::ErrorCode::Ok)
                        ++ok;
                    else if (r.code == service::ErrorCode::Overloaded)
                        ++shed;
                    else
                        ++other;
                }
            });
        }
        for (std::thread &t : threads)
            t.join();
    }
    double burst_secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - b0)
                            .count();
    overloaded.stop();
    faultsim::uninstall();

    service::ServiceMetrics om = overloaded.metrics();
    double shed_rate = double(shed) / double(kBurst);

    TextTable shed_table;
    shed_table.setHeader(
        {"Burst", "Ok", "Shed", "Shed rate", "Other", "Wall ms"});
    shed_table.addRow({std::to_string(kBurst),
                       std::to_string(ok.load()),
                       std::to_string(shed.load()),
                       TextTable::percent(shed_rate),
                       std::to_string(other.load()),
                       TextTable::num(burst_secs * 1e3, 1)});
    std::printf("\n%s", shed_table.toString().c_str());

    if (ok + shed != kBurst || other != 0) {
        std::fprintf(stderr,
                     "FAIL: overload burst leaked untyped outcomes "
                     "(ok=%llu shed=%llu other=%llu of %u)\n",
                     (unsigned long long)ok.load(),
                     (unsigned long long)shed.load(),
                     (unsigned long long)other.load(), kBurst);
        return 1;
    }
    if (!om.shedConsistent() || om.net.shed != shed) {
        std::fprintf(stderr,
                     "FAIL: shed counters inconsistent (metrics %llu, "
                     "net %llu, observed %llu)\n",
                     (unsigned long long)om.requests_shed,
                     (unsigned long long)om.net.shed,
                     (unsigned long long)shed.load());
        return 1;
    }
    std::printf("\nevery burst request returned a typed outcome "
                "(Ok or Overloaded); shed counters consistent.\n");

    // The overload entry's fingerprint is pinned to 0: which requests
    // get shed is timing-dependent, so only the shed-rate band gates.
    perfjson::record({"net/loopback/overload",
                      burst_secs * 1e3 / kBurst,
                      double(kBurst) / burst_secs, shed_rate, 0});

    if (!json_path.empty() &&
        !perfjson::write(json_path, "net_throughput", "shed_rate")) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    return 0;
}
