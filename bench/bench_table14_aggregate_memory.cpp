/**
 * @file
 * Reproduces Table 14: aggregate effect of all transformations on the
 * MDES resource-constraint representation size - unoptimized OR-trees
 * vs fully optimized OR-trees vs fully optimized AND/OR-trees (with the
 * bit-vector representation).
 */

#include "bench_util.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("Table 14",
                "aggregate effect of all transformations on MDES "
                "resource-constraint representation size");

    struct PaperRow
    {
        const char *name;
        long unopt, or_full;
        double or_red;
        long andor_full;
        double andor_red;
    };
    const PaperRow paper[] = {
        {"PA7100", 2504, 1168, 53.4, 1032, 58.4},
        {"Pentium", 14824, 3080, 79.2, 3560, 76.0},
        {"SuperSPARC", 17124, 7016, 59.0, 1584, 90.1},
        {"K5", 312640, 125488, 59.9, 3096, 99.0},
    };

    TextTable table;
    table.setHeader({"MDES", "Unoptimized OR (bytes)",
                     "Optimized OR (bytes)", "Reduction",
                     "Optimized AND/OR (bytes)", "Reduction",
                     "paper: reductions (OR, AND/OR)"});
    for (size_t i = 0; i < machines::all().size(); ++i) {
        const auto *m = machines::all()[i];
        size_t unopt =
            runStageSizeOnly(*m, exp::Rep::OrTree, Stage::Original)
                .memory.total();
        size_t or_full =
            runStageSizeOnly(*m, exp::Rep::OrTree, Stage::Full)
                .memory.total();
        size_t andor_full =
            runStageSizeOnly(*m, exp::Rep::AndOrTree, Stage::Full)
                .memory.total();
        table.addRow({
            m->name,
            std::to_string(unopt),
            std::to_string(or_full),
            reduction(double(unopt), double(or_full)),
            std::to_string(andor_full),
            reduction(double(unopt), double(andor_full)),
            TextTable::percent(paper[i].or_red / 100.0, 1) + ", " +
                TextTable::percent(paper[i].andor_red / 100.0, 1),
        });
    }
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nAs in the paper: the transformations shrink the OR\n"
        "representation by up to ~5x; combined with AND/OR-trees the\n"
        "constraint image of even the K5 drops to a few KB - roughly a\n"
        "hundred times smaller than the unoptimized OR form - keeping\n"
        "the whole MDES first-level-cache resident during compilation.\n");
    printFootnote();
    return 0;
}
