/**
 * @file
 * Cold-start cost of the two-tier compiled-description cache: the same
 * batch answered three ways,
 *
 *   cold        - empty store, empty memory: every request compiles
 *                 its description and publishes it to disk;
 *   disk-warm   - a fresh service (new process stand-in) against the
 *                 populated store: every request maps its artifact from
 *                 disk, nothing compiles, nothing deserializes;
 *   memory-warm - the same service again: every request is a memory
 *                 hit, the disk is not touched.
 *
 * The batch holds one request per (machine, transform-config) pair -
 * every request a distinct store key - so the serving invariants are
 * exact and asserted: on the disk-warm run the store hit count equals
 * the request count, every hit is a zero-copy mmap (mapped count ==
 * request count, full-deserialization count unchanged), the compile
 * count is zero, and schedules are byte-identical (equal fingerprints)
 * whether the description came from the compiler, the disk, or memory.
 *
 * `--json <path>` writes the measurements for CI artifact upload; the
 * embedded "results" entry gates the disk-warm / memory-warm wall-time
 * ratio through scripts/compare_perf.py's band rule.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

#include "bench_util.h"
#include "lmdes/image.h"
#include "service/service.h"
#include "support/json.h"

int
main(int argc, char **argv)
{
    using namespace mdes;
    using namespace mdes::bench;
    namespace fs = std::filesystem;

    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: bench_store_coldstart [--json <path>]\n");
            return 2;
        }
    }

    printHeader("store cold start",
                "request latency with the persistent description store: "
                "cold compile vs disk-warm vs memory-warm");

    fs::path dir = fs::temp_directory_path() /
                   ("mdes-store-coldstart-" +
                    std::to_string(uint64_t(::getpid())));
    fs::remove_all(dir);

    // One request per (machine, transform config): every line of the
    // batch is a distinct store key.
    auto makeBatch = [] {
        std::vector<service::ScheduleRequest> batch;
        std::vector<const machines::MachineInfo *> targets =
            machines::all();
        for (const auto *m : machines::extensions())
            targets.push_back(m);
        for (const auto *m : targets) {
            for (bool optimized : {true, false}) {
                service::ScheduleRequest req;
                req.machine = m->name;
                req.synth_ops = 300;
                req.transforms = optimized ? PipelineConfig::all()
                                           : PipelineConfig::none();
                batch.push_back(std::move(req));
            }
        }
        return batch;
    };
    const size_t kRequests = makeBatch().size();

    struct Scenario
    {
        std::string name;
        double wall_ms = 0;
        uint64_t compiles = 0;
        uint64_t disk_hits = 0;
        uint64_t mapped_hits = 0;
        uint64_t memory_hits = 0;
        uint64_t full_deserializations = 0;
    };
    std::vector<Scenario> scenarios;
    std::vector<uint64_t> baseline_fingerprints;
    bool ok = true;

    auto runScenario = [&](const std::string &name,
                           service::MdesService &svc) {
        service::DescriptionCache::Stats before = svc.cache().stats();
        const uint64_t deser_before = lmdes::fullDeserializations();
        auto t0 = std::chrono::steady_clock::now();
        auto responses = svc.runBatch(makeBatch());
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        std::vector<uint64_t> fingerprints;
        for (const auto &r : responses) {
            if (!r.ok()) {
                std::fprintf(stderr, "%s: request failed: %s\n",
                             name.c_str(), r.error.message.c_str());
                ok = false;
            }
            fingerprints.push_back(service::scheduleFingerprint(r));
        }
        if (baseline_fingerprints.empty()) {
            baseline_fingerprints = fingerprints;
        } else if (fingerprints != baseline_fingerprints) {
            std::fprintf(stderr,
                         "FAIL: %s schedules differ from the cold run "
                         "(loaded artifact changed results)\n",
                         name.c_str());
            ok = false;
        }
        service::DescriptionCache::Stats after = svc.cache().stats();
        Scenario s;
        s.name = name;
        s.wall_ms = ms;
        s.compiles = after.compiles - before.compiles;
        s.disk_hits = after.disk_hits - before.disk_hits;
        s.mapped_hits = after.disk_mapped - before.disk_mapped;
        s.memory_hits = after.hits - before.hits;
        s.full_deserializations =
            lmdes::fullDeserializations() - deser_before;
        scenarios.push_back(s);
        return s;
    };

    {
        service::MdesService svc({.num_workers = 4,
                                  .cache_capacity = 32,
                                  .store_dir = dir.string()});
        Scenario cold = runScenario("cold", svc);
        if (cold.compiles != kRequests) {
            std::fprintf(stderr,
                         "FAIL: cold run compiled %llu of %zu requests\n",
                         (unsigned long long)cold.compiles, kRequests);
            ok = false;
        }
    }
    {
        // A fresh service instance: empty memory tier, warm disk tier -
        // the process-restart case the store exists for.
        service::MdesService svc({.num_workers = 4,
                                  .cache_capacity = 32,
                                  .store_dir = dir.string()});
        Scenario warm = runScenario("disk-warm", svc);
        if (warm.compiles != 0 || warm.disk_hits != kRequests) {
            std::fprintf(stderr,
                         "FAIL: disk-warm run compiled %llu and hit the "
                         "store %llu times (want 0 and %zu)\n",
                         (unsigned long long)warm.compiles,
                         (unsigned long long)warm.disk_hits, kRequests);
            ok = false;
        }
        // The zero-copy contract: every disk hit is an mmap attach, and
        // no full payload deserialization happens anywhere in the run.
        if (warm.mapped_hits != kRequests) {
            std::fprintf(stderr,
                         "FAIL: disk-warm run mapped %llu of %zu store "
                         "hits (want every hit zero-copy)\n",
                         (unsigned long long)warm.mapped_hits, kRequests);
            ok = false;
        }
        if (warm.full_deserializations != 0) {
            std::fprintf(stderr,
                         "FAIL: disk-warm run fully deserialized %llu "
                         "artifacts (want 0: the mmap path must not "
                         "materialize payloads)\n",
                         (unsigned long long)warm.full_deserializations);
            ok = false;
        }
        Scenario mem = runScenario("memory-warm", svc);
        if (mem.compiles != 0 || mem.disk_hits != 0 ||
            mem.memory_hits != kRequests) {
            std::fprintf(stderr,
                         "FAIL: memory-warm run: %llu compiles, %llu "
                         "disk hits, %llu memory hits (want 0/0/%zu)\n",
                         (unsigned long long)mem.compiles,
                         (unsigned long long)mem.disk_hits,
                         (unsigned long long)mem.memory_hits, kRequests);
            ok = false;
        }
    }

    TextTable table;
    table.setHeader({"Scenario", "Wall ms", "ms/request", "Compiles",
                     "Store hits", "Mapped", "Deserialized",
                     "Memory hits"});
    for (const auto &s : scenarios) {
        table.addRow({s.name, TextTable::num(s.wall_ms, 1),
                      TextTable::num(s.wall_ms / double(kRequests), 2),
                      std::to_string(s.compiles),
                      std::to_string(s.disk_hits),
                      std::to_string(s.mapped_hits),
                      std::to_string(s.full_deserializations),
                      std::to_string(s.memory_hits)});
    }
    std::printf("%s", table.toString().c_str());

    // The headline number: a disk-warm start should cost about the same
    // as a memory-warm one, because a mapped artifact is served in
    // place (page cache) instead of being parsed. compare_perf.py gates
    // this ratio inside a sanity band.
    double disk_memory_ratio = 0.0;
    for (const auto &s : scenarios)
        if (s.name == "disk-warm")
            for (const auto &m : scenarios)
                if (m.name == "memory-warm" && m.wall_ms > 0.0)
                    disk_memory_ratio = s.wall_ms / m.wall_ms;
    std::printf("\n%zu requests, every one a distinct (machine, "
                "transform-config) store key; store dir %s\n",
                kRequests, dir.string().c_str());
    std::printf("disk-warm / memory-warm wall ratio: %.3f\n",
                disk_memory_ratio);
    if (ok)
        std::printf("disk-warm start avoided every recompilation and "
                    "every deserialization (store hits == mapped == "
                    "requests, compiles == 0); schedules identical "
                    "across all three tiers.\n");

    if (!json_path.empty()) {
        JsonWriter w;
        w.beginObject();
        w.key("bench").value("store_coldstart");
        w.key("requests").value(uint64_t(kRequests));
        w.key("ok").value(ok);
        w.key("disk_memory_ratio").value(disk_memory_ratio);
        w.key("scenarios").beginObject();
        for (const auto &s : scenarios) {
            w.key(s.name).beginObject();
            w.key("wall_ms").value(s.wall_ms);
            w.key("ms_per_request").value(s.wall_ms / double(kRequests));
            w.key("compiles").value(s.compiles);
            w.key("store_hits").value(s.disk_hits);
            w.key("mapped_hits").value(s.mapped_hits);
            w.key("full_deserializations").value(s.full_deserializations);
            w.key("memory_hits").value(s.memory_hits);
            w.endObject();
        }
        w.endObject();
        // A compare_perf.py-shaped entry so the ratio rides the same
        // perf gate as the checker and scheduler benches (band rule; no
        // fingerprint - schedule identity is asserted in-process above).
        w.key("results").beginArray();
        w.beginObject();
        w.key("name").value("store/coldstart/disk_vs_memory");
        double disk_warm_ms = 0.0;
        for (const auto &s : scenarios)
            if (s.name == "disk-warm")
                disk_warm_ms = s.wall_ms;
        w.key("wall_ms").value(disk_warm_ms);
        w.key("disk_memory_ratio").value(disk_memory_ratio);
        w.endObject();
        w.endArray();
        w.endObject();
        std::ofstream out(json_path, std::ios::trunc);
        out << w.str() << "\n";
        if (!out) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         json_path.c_str());
            ok = false;
        } else {
            std::printf("wrote %s\n", json_path.c_str());
        }
    }

    fs::remove_all(dir);
    printFootnote();
    return ok ? 0 : 1;
}
