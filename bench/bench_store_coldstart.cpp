/**
 * @file
 * Cold-start cost of the two-tier compiled-description cache: the same
 * batch answered three ways,
 *
 *   cold        - empty store, empty memory: every request compiles
 *                 its description and publishes it to disk;
 *   disk-warm   - a fresh service (new process stand-in) against the
 *                 populated store: every request loads from disk,
 *                 nothing compiles;
 *   memory-warm - the same service again: every request is a memory
 *                 hit, the disk is not touched.
 *
 * The batch holds one request per (machine, transform-config) pair -
 * every request a distinct store key - so the serving invariants are
 * exact and asserted: on the disk-warm run the store hit count equals
 * the request count and the compile count is zero, and schedules are
 * byte-identical (equal fingerprints) whether the description came
 * from the compiler, the disk, or memory.
 *
 * `--json <path>` writes the measurements for CI artifact upload.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

#include "bench_util.h"
#include "service/service.h"
#include "support/json.h"

int
main(int argc, char **argv)
{
    using namespace mdes;
    using namespace mdes::bench;
    namespace fs = std::filesystem;

    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: bench_store_coldstart [--json <path>]\n");
            return 2;
        }
    }

    printHeader("store cold start",
                "request latency with the persistent description store: "
                "cold compile vs disk-warm vs memory-warm");

    fs::path dir = fs::temp_directory_path() /
                   ("mdes-store-coldstart-" +
                    std::to_string(uint64_t(::getpid())));
    fs::remove_all(dir);

    // One request per (machine, transform config): every line of the
    // batch is a distinct store key.
    auto makeBatch = [] {
        std::vector<service::ScheduleRequest> batch;
        std::vector<const machines::MachineInfo *> targets =
            machines::all();
        for (const auto *m : machines::extensions())
            targets.push_back(m);
        for (const auto *m : targets) {
            for (bool optimized : {true, false}) {
                service::ScheduleRequest req;
                req.machine = m->name;
                req.synth_ops = 300;
                req.transforms = optimized ? PipelineConfig::all()
                                           : PipelineConfig::none();
                batch.push_back(std::move(req));
            }
        }
        return batch;
    };
    const size_t kRequests = makeBatch().size();

    struct Scenario
    {
        std::string name;
        double wall_ms = 0;
        uint64_t compiles = 0;
        uint64_t disk_hits = 0;
        uint64_t memory_hits = 0;
    };
    std::vector<Scenario> scenarios;
    std::vector<uint64_t> baseline_fingerprints;
    bool ok = true;

    auto runScenario = [&](const std::string &name,
                           service::MdesService &svc) {
        service::DescriptionCache::Stats before = svc.cache().stats();
        auto t0 = std::chrono::steady_clock::now();
        auto responses = svc.runBatch(makeBatch());
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        std::vector<uint64_t> fingerprints;
        for (const auto &r : responses) {
            if (!r.ok()) {
                std::fprintf(stderr, "%s: request failed: %s\n",
                             name.c_str(), r.error.message.c_str());
                ok = false;
            }
            fingerprints.push_back(service::scheduleFingerprint(r));
        }
        if (baseline_fingerprints.empty()) {
            baseline_fingerprints = fingerprints;
        } else if (fingerprints != baseline_fingerprints) {
            std::fprintf(stderr,
                         "FAIL: %s schedules differ from the cold run "
                         "(loaded artifact changed results)\n",
                         name.c_str());
            ok = false;
        }
        service::DescriptionCache::Stats after = svc.cache().stats();
        Scenario s;
        s.name = name;
        s.wall_ms = ms;
        s.compiles = after.compiles - before.compiles;
        s.disk_hits = after.disk_hits - before.disk_hits;
        s.memory_hits = after.hits - before.hits;
        scenarios.push_back(s);
        return s;
    };

    {
        service::MdesService svc({.num_workers = 4,
                                  .cache_capacity = 32,
                                  .store_dir = dir.string()});
        Scenario cold = runScenario("cold", svc);
        if (cold.compiles != kRequests) {
            std::fprintf(stderr,
                         "FAIL: cold run compiled %llu of %zu requests\n",
                         (unsigned long long)cold.compiles, kRequests);
            ok = false;
        }
    }
    {
        // A fresh service instance: empty memory tier, warm disk tier -
        // the process-restart case the store exists for.
        service::MdesService svc({.num_workers = 4,
                                  .cache_capacity = 32,
                                  .store_dir = dir.string()});
        Scenario warm = runScenario("disk-warm", svc);
        if (warm.compiles != 0 || warm.disk_hits != kRequests) {
            std::fprintf(stderr,
                         "FAIL: disk-warm run compiled %llu and hit the "
                         "store %llu times (want 0 and %zu)\n",
                         (unsigned long long)warm.compiles,
                         (unsigned long long)warm.disk_hits, kRequests);
            ok = false;
        }
        Scenario mem = runScenario("memory-warm", svc);
        if (mem.compiles != 0 || mem.disk_hits != 0 ||
            mem.memory_hits != kRequests) {
            std::fprintf(stderr,
                         "FAIL: memory-warm run: %llu compiles, %llu "
                         "disk hits, %llu memory hits (want 0/0/%zu)\n",
                         (unsigned long long)mem.compiles,
                         (unsigned long long)mem.disk_hits,
                         (unsigned long long)mem.memory_hits, kRequests);
            ok = false;
        }
    }

    TextTable table;
    table.setHeader({"Scenario", "Wall ms", "ms/request", "Compiles",
                     "Store hits", "Memory hits"});
    for (const auto &s : scenarios) {
        table.addRow({s.name, TextTable::num(s.wall_ms, 1),
                      TextTable::num(s.wall_ms / double(kRequests), 2),
                      std::to_string(s.compiles),
                      std::to_string(s.disk_hits),
                      std::to_string(s.memory_hits)});
    }
    std::printf("%s", table.toString().c_str());
    std::printf("\n%zu requests, every one a distinct (machine, "
                "transform-config) store key; store dir %s\n",
                kRequests, dir.string().c_str());
    if (ok)
        std::printf("disk-warm start avoided every recompilation "
                    "(store hits == requests, compiles == 0); schedules "
                    "identical across all three tiers.\n");

    if (!json_path.empty()) {
        JsonWriter w;
        w.beginObject();
        w.key("bench").value("store_coldstart");
        w.key("requests").value(uint64_t(kRequests));
        w.key("ok").value(ok);
        w.key("scenarios").beginObject();
        for (const auto &s : scenarios) {
            w.key(s.name).beginObject();
            w.key("wall_ms").value(s.wall_ms);
            w.key("ms_per_request").value(s.wall_ms / double(kRequests));
            w.key("compiles").value(s.compiles);
            w.key("store_hits").value(s.disk_hits);
            w.key("memory_hits").value(s.memory_hits);
            w.endObject();
        }
        w.endObject();
        w.endObject();
        std::ofstream out(json_path, std::ios::trunc);
        out << w.str() << "\n";
        if (!out) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         json_path.c_str());
            ok = false;
        } else {
            std::printf("wrote %s\n", json_path.c_str());
        }
    }

    fs::remove_all(dir);
    printFootnote();
    return ok ? 0 : 1;
}
