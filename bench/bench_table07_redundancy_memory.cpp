/**
 * @file
 * Reproduces Table 7: MDES memory requirements after eliminating
 * redundant and unused information (MDES-domain CSE + copy propagation +
 * dead-code removal + redundant-option removal, Section 5).
 */

#include "bench_util.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("Table 7",
                "MDES memory requirements after eliminating redundant "
                "and unused information");

    struct PaperRow
    {
        const char *name;
        double or_red, andor_red; // % size reductions
    };
    const PaperRow paper[] = {
        {"PA7100", 31.6, 11.0},
        {"Pentium", 27.0, 26.4},
        {"SuperSPARC", 13.8, -1},
        {"K5", 14.9, 17.2},
    };

    TextTable table;
    table.setHeader({"MDES", "OR Before", "OR After", "OR % Reduced",
                     "paper", "AND/OR Before", "AND/OR After",
                     "AND/OR % Reduced", "paper"});
    for (size_t i = 0; i < machines::all().size(); ++i) {
        const auto *m = machines::all()[i];
        auto fmt = [](double v) {
            return v < 0 ? std::string("(illegible)")
                         : mdes::TextTable::percent(v / 100.0, 1);
        };
        size_t or_before =
            runStageSizeOnly(*m, exp::Rep::OrTree, Stage::Original)
                .memory.total();
        size_t or_after =
            runStageSizeOnly(*m, exp::Rep::OrTree, Stage::Cleaned)
                .memory.total();
        size_t andor_before =
            runStageSizeOnly(*m, exp::Rep::AndOrTree, Stage::Original)
                .memory.total();
        size_t andor_after =
            runStageSizeOnly(*m, exp::Rep::AndOrTree, Stage::Cleaned)
                .memory.total();
        table.addRow({
            m->name,
            std::to_string(or_before),
            std::to_string(or_after),
            reduction(double(or_before), double(or_after)),
            fmt(paper[i].or_red),
            std::to_string(andor_before),
            std::to_string(andor_after),
            reduction(double(andor_before), double(andor_after)),
            fmt(paper[i].andor_red),
        });
    }
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nAs in the paper: descriptions accrete copy-pasted duplicates\n"
        "and unused leftovers as they evolve; adapting CSE, copy\n"
        "propagation, and dead-code removal to the MDES domain strips\n"
        "them. AND/OR options are finer-grained, so they share more\n"
        "aggressively after the pass.\n");
    printFootnote();
    return 0;
}
