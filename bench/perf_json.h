#ifndef MDES_BENCH_PERF_JSON_H
#define MDES_BENCH_PERF_JSON_H

/**
 * @file
 * Machine-readable results for the perf benches.
 *
 * `bench_perf_checker --json BENCH_perf.json` (and the scheduler bench
 * alike) writes one JSON document with, per benchmark configuration,
 * the wall time, throughput, the paper's checks-per-work metrics, and a
 * behavior fingerprint that hashes the engine's *decisions* (schedules
 * or reservations), not its speed. CI diffs this file against the
 * committed baseline (scripts/compare_perf.py): fingerprints must match
 * bit-for-bit and checks-per-op must not regress.
 *
 * Wall time is measured here, around the whole benchmark loop, rather
 * than scraped from a google-benchmark reporter - the reporter API has
 * shifted across the library versions CI images carry, while a chrono
 * clamp around `for (auto _ : state)` works everywhere and matches the
 * console Time column to within noise.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace mdes::bench::perfjson {

/** One benchmark configuration's results. */
struct Entry
{
    std::string name;
    /** Average wall time of one benchmark iteration. */
    double wall_ms = 0;
    /** Work items (attempts or ops) retired per second. */
    double items_per_sec = 0;
    /** RU-map probes per unit of work (the paper's cost metric):
     * checks/attempt for the checker bench, checks/op for the
     * scheduler bench. */
    double checks_per_item = 0;
    /** FNV-1a hash of the engine's decisions for this configuration. */
    uint64_t fingerprint = 0;
};

/** Result registry; re-recording a name overwrites (benchmark reruns
 * configurations while calibrating iteration counts - last run wins). */
inline std::vector<Entry> &
entries()
{
    static std::vector<Entry> v;
    return v;
}

inline void
record(Entry e)
{
    for (auto &old : entries()) {
        if (old.name == e.name) {
            old = std::move(e);
            return;
        }
    }
    entries().push_back(std::move(e));
}

/** FNV-1a, mixed bytewise so the hash is endian- and width-stable. */
inline void
fnvMix(uint64_t &h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 1099511628211ull;
    }
}

inline uint64_t
fnvInit()
{
    return 1469598103934665603ull;
}

/** Simple wall clock around the benchmark loop. */
class Stopwatch
{
  public:
    void
    start()
    {
        begin_ = std::chrono::steady_clock::now();
    }
    void
    stop()
    {
        total_ += std::chrono::steady_clock::now() - begin_;
        ++laps_;
    }
    double
    avgMs() const
    {
        if (laps_ == 0)
            return 0;
        return std::chrono::duration<double, std::milli>(total_).count() /
               double(laps_);
    }
    double
    totalSec() const
    {
        return std::chrono::duration<double>(total_).count();
    }

  private:
    std::chrono::steady_clock::time_point begin_{};
    std::chrono::steady_clock::duration total_{};
    uint64_t laps_ = 0;
};

/**
 * Strip `--json <path>` / `--json=<path>` from argv before
 * benchmark::Initialize sees it (the library rejects unknown flags).
 * Returns the path, or "" when the flag is absent.
 */
inline std::string
stripJsonFlag(int &argc, char **argv)
{
    std::string path;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            path = argv[++i];
        } else if (arg.rfind("--json=", 0) == 0) {
            path = arg.substr(7);
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    argv[argc] = nullptr;
    return path;
}

/** Write the registry as a JSON document. Returns false on I/O error. */
inline bool
write(const std::string &path, const std::string &bench,
      const std::string &checks_metric)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [\n",
                 bench.c_str());
    for (size_t i = 0; i < entries().size(); ++i) {
        const Entry &e = entries()[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"wall_ms\": %.6f, "
                     "\"items_per_sec\": %.1f, \"%s\": %.4f, "
                     "\"fingerprint\": \"%llu\"}%s\n",
                     e.name.c_str(), e.wall_ms, e.items_per_sec,
                     checks_metric.c_str(), e.checks_per_item,
                     (unsigned long long)e.fingerprint,
                     i + 1 < entries().size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    return std::fclose(f) == 0;
}

} // namespace mdes::bench::perfjson

#endif // MDES_BENCH_PERF_JSON_H
