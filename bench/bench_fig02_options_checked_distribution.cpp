/**
 * @file
 * Reproduces Figure 2: the distribution of reservation-table options
 * checked during each scheduling attempt when scheduling the SuperSPARC
 * workload with the traditional (unoptimized) OR-tree representation,
 * plus the summary statistics the paper quotes around the figure.
 */

#include <cstdio>

#include "bench_util.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("Figure 2",
                "distribution of options checked during each scheduling "
                "attempt using the SuperSPARC MDES (OR-tree rep)");

    exp::RunResult result = runStage(machines::superSparc(),
                                     exp::Rep::OrTree, Stage::Original);
    const auto &hist = result.stats.checks.options_per_attempt;
    const auto &succ = result.stats.checks.options_per_success;

    std::printf("%s", hist.render(60).c_str());

    uint64_t attempts = result.stats.checks.attempts;
    uint64_t successes = result.stats.checks.successes;
    double first_try =
        successes ? succ.fractionBetween(0, 3) : 0; // <= one subtree pass

    std::printf("\nSummary (paper's quoted values in brackets):\n");
    std::printf("  attempts per operation:           %.2f   [2.05]\n",
                result.stats.avgAttemptsPerOp());
    std::printf("  share of failing attempts:        %.1f%%  [~50%%]\n",
                100.0 * double(attempts - successes) / double(attempts));
    std::printf("  attempts checking exactly 1 opt:  %.2f%%  [38.02%%]\n",
                100.0 * hist.fractionAt(1));
    std::printf("  attempts checking 24..72 options: %.2f%%  [45.52%%]\n",
                100.0 * hist.fractionBetween(24, 72));
    std::printf("  attempts checking 48 options:     %.2f%%  [30.05%% "
                "peak]\n",
                100.0 * hist.fractionAt(48));
    std::printf("  successful attempts, 1st option:  %.2f%%  [63.75%%]\n",
                100.0 * (successes ? succ.fractionAt(1) : 0.0));
    std::printf("  successful attempts, 2..16 opts:  %.2f%%  [8.23%%]\n",
                100.0 * (successes ? succ.fractionBetween(2, 16) : 0.0));
    std::printf("  successful attempts, 17..32 opts: %.2f%%  [16.71%%]\n",
                100.0 * (successes ? succ.fractionBetween(17, 32) : 0.0));
    std::printf("  successful attempts, 33+ options: %.2f%%  [1.31%%]\n",
                100.0 *
                    (successes ? succ.fractionBetween(33, 100000) : 0.0));
    (void)first_try;
    printFootnote();
    return 0;
}
