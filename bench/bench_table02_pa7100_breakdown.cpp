/**
 * @file
 * Reproduces Table 2: option breakdown and scheduling characteristics of
 * the PA7100 MDES. The original description additionally carries the
 * duplicated memory-operation option (3-option group) that Table 8's
 * transformation removes; the paper's Table 2 shows the logical 1/2
 * split.
 */

#include "bench_util.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("Table 2",
                "option breakdown and scheduling characteristics for the "
                "PA7100 MDES");
    printBreakdown(
        machines::pa7100(),
        {
            {1, 18.81, "Branch ops"},
            {2, -1.0, "Ops that can use either decoder"},
            {3, -1.0,
             "Memory ops carrying the historical duplicated option "
             "(paper counts them in the 2-option group; see Table 8)"},
        });
    std::printf("Paper: 81.19%% of attempts were on ops that can use "
                "either decoder;\n1.97 attempts per operation on 201011 "
                "static operations.\n");
    printFootnote();
    return 0;
}
