/**
 * @file
 * Reproduces Table 5: original (untransformed) scheduling
 * characteristics of all four machine descriptions under the OR-tree and
 * AND/OR-tree representations.
 */

#include "bench_util.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("Table 5",
                "original scheduling characteristics of the machine "
                "descriptions for each target machine");

    // Paper values (OR options/attempt, OR checks/attempt, AND/OR
    // options, AND/OR checks, % checks reduced); -1 where the scan is
    // illegible.
    struct PaperRow
    {
        const char *name;
        double or_options, or_checks, andor_options, andor_checks;
    };
    const PaperRow paper[] = {
        {"PA7100", 1.56, 2.47, 1.45, 1.96},
        {"Pentium", 1.49, 3.99, 1.49, 3.99},
        {"SuperSPARC", 21.48, 31.89, -1, 4.92},
        {"K5", 19.59, 35.49, 5.20, 5.73},
    };

    TextTable table;
    table.setHeader({"MDES", "Total Ops Sched.", "Attempts/Op",
                     "OR Options/Attempt", "OR Checks/Attempt",
                     "AND/OR Options/Attempt", "AND/OR Checks/Attempt",
                     "% Checks Reduced"});
    for (const auto *m : machines::all()) {
        exp::RunResult or_run =
            runStage(*m, exp::Rep::OrTree, Stage::Original);
        exp::RunResult andor_run =
            runStage(*m, exp::Rep::AndOrTree, Stage::Original);
        double or_checks = or_run.stats.checks.avgChecksPerAttempt();
        double andor_checks =
            andor_run.stats.checks.avgChecksPerAttempt();
        table.addRow({
            m->name,
            std::to_string(or_run.stats.ops_scheduled),
            TextTable::num(or_run.stats.avgAttemptsPerOp(), 2),
            TextTable::num(or_run.stats.checks.avgOptionsPerAttempt(), 2),
            TextTable::num(or_checks, 2),
            TextTable::num(andor_run.stats.checks.avgOptionsPerAttempt(),
                           2),
            TextTable::num(andor_checks, 2),
            reduction(or_checks, andor_checks),
        });
    }
    std::printf("%s", table.toString().c_str());

    std::printf("\nPaper's values for comparison:\n");
    TextTable ptable;
    ptable.setHeader({"MDES", "OR Options/Attempt", "OR Checks/Attempt",
                      "AND/OR Options/Attempt", "AND/OR Checks/Attempt",
                      "% Checks Reduced"});
    for (const auto &row : paper) {
        auto fmt = [](double v) {
            return v < 0 ? std::string("(illegible)")
                         : TextTable::num(v, 2);
        };
        ptable.addRow({row.name, fmt(row.or_options), fmt(row.or_checks),
                       fmt(row.andor_options), fmt(row.andor_checks),
                       reduction(row.or_checks, row.andor_checks)});
    }
    std::printf("%s", ptable.toString().c_str());
    printFootnote();
    return 0;
}
