/**
 * @file
 * Baseline comparison (paper Section 10): Eichenberger & Davidson's
 * reduced machine descriptions (PLDI'96) vs this paper's
 * transformations.
 *
 * E&D minimize, per reservation-table option, the number of resource
 * usages (here: remove any usage whose removal preserves every pairwise
 * collision vector) and pair it with a bit-vector representation. The
 * paper's position: its own transformations get checks and memory *per
 * option* close to the E&D level, and - unlike E&D - the AND/OR-tree
 * combination also attacks the number of *option checks per scheduling
 * attempt*. This bench measures all four settings per machine on the
 * OR-tree representation plus the full AND/OR setting.
 */

#include <cstdio>

#include "bench_util.h"

namespace {

using namespace mdes;
using namespace mdes::bench;

struct Setting
{
    const char *label;
    exp::Rep rep;
    bool minimize, paper_transforms;
};

const Setting kSettings[] = {
    {"OR, unoptimized", exp::Rep::OrTree, false, false},
    {"OR + E&D minimization (+bv)", exp::Rep::OrTree, true, false},
    {"OR + paper transforms (+bv)", exp::Rep::OrTree, false, true},
    {"OR + both", exp::Rep::OrTree, true, true},
    {"AND/OR + paper transforms (+bv)", exp::Rep::AndOrTree, false, true},
};

} // namespace

int
main()
{
    printHeader("baseline (Section 10)",
                "Eichenberger/Davidson usage minimization vs this "
                "paper's transformations");

    for (const auto *m : machines::all()) {
        std::printf("--- %s ---\n", m->name.c_str());
        TextTable table;
        table.setHeader({"Setting", "Bytes", "Options/Attempt",
                         "Checks/Attempt", "Checks/Option"});
        for (const auto &setting : kSettings) {
            exp::RunConfig config;
            config.machine = m;
            config.rep = setting.rep;
            config.prefilter = false; // paper accounting (see runStage)
            config.num_ops_override = 40000;
            config.transforms.cse = true; // shared cleanup everywhere
            config.transforms.redundant_options = true;
            config.transforms.minimize = setting.minimize;
            if (setting.paper_transforms) {
                config.transforms.time_shift = true;
                config.transforms.sort_usages = true;
                config.transforms.hoist = true;
                config.transforms.sort_or_trees = true;
            }
            config.bit_vector =
                setting.minimize || setting.paper_transforms;
            if (std::string(setting.label) == "OR, unoptimized") {
                config.transforms = PipelineConfig::none();
                config.bit_vector = false;
            }
            exp::RunResult r = exp::run(config);
            double per_option =
                r.stats.checks.options_checked
                    ? double(r.stats.checks.resource_checks) /
                          double(r.stats.checks.options_checked)
                    : 0;
            table.addRow({
                setting.label,
                std::to_string(r.memory.total()),
                TextTable::num(r.stats.checks.avgOptionsPerAttempt(), 2),
                TextTable::num(r.stats.checks.avgChecksPerAttempt(), 2),
                TextTable::num(per_option, 2),
            });
        }
        std::printf("%s\n", table.toString().c_str());
    }
    std::printf(
        "As the paper argues: the Section 5-8 transformations land\n"
        "checks/option and bytes close to the E&D minimization level\n"
        "(and compose with it), but only the AND/OR-tree representation\n"
        "also collapses the *options checked per attempt* - the term\n"
        "E&D leave untouched. Every setting produces the identical\n"
        "schedule.\n");
    printFootnote();
    return 0;
}
