/**
 * @file
 * Reproduces Table 1: reservation-table option breakdown and scheduling
 * characteristics of the SuperSPARC MDES.
 */

#include "bench_util.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("Table 1",
                "option breakdown and scheduling characteristics for the "
                "SuperSPARC MDES");
    printBreakdown(
        machines::superSparc(),
        {
            {1, 13.41, "Branches and serial ops"},
            {3, 0.72, "Floating-point ops"},
            {6, 14.37, "Load ops"},
            {12, 4.92, "Store ops"},
            {24, 9.24,
             "Shifts and cascaded IALU ops that use 1 read port"},
            {36, 3.00,
             "Shifts and cascaded IALU ops that use 2 read ports"},
            {48, 50.29, "IALU ops that use 1 read port"},
            {72, 4.05, "IALU ops that use 2 read ports"},
        });
    std::printf("Paper: 2.05 scheduling attempts per operation on "
                "282219 static operations.\n");
    printFootnote();
    return 0;
}
