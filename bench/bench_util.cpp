#include "bench_util.h"

#include <cstdio>
#include <map>

namespace mdes::bench {

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::Original: return "original";
      case Stage::Cleaned: return "cleaned (Sec. 5)";
      case Stage::BitVector: return "bit-vector (Sec. 6)";
      case Stage::TimeShifted: return "time-shifted (Sec. 7)";
      case Stage::Full: return "fully optimized (Sec. 8)";
    }
    return "?";
}

uint64_t
scheduleFingerprint(const std::vector<sched::BlockSchedule> &schedules)
{
    // FNV-1a, mixed bytewise for endian/width stability.
    auto mix = [](uint64_t &h, uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    uint64_t h = 1469598103934665603ull;
    for (const auto &s : schedules) {
        mix(h, uint64_t(s.length));
        for (int32_t c : s.cycles)
            mix(h, uint64_t(uint32_t(c)));
        for (uint8_t u : s.used_cascade)
            mix(h, u);
    }
    return h;
}

exp::RunConfig
stageConfig(const machines::MachineInfo &machine, exp::Rep rep,
            Stage stage)
{
    exp::RunConfig config;
    config.machine = &machine;
    config.rep = rep;
    config.transforms.cse = stage >= Stage::Cleaned;
    config.transforms.redundant_options = stage >= Stage::Cleaned;
    config.bit_vector = stage >= Stage::BitVector;
    config.transforms.time_shift = stage >= Stage::TimeShifted;
    config.transforms.sort_usages = stage >= Stage::TimeShifted;
    config.transforms.hoist = stage >= Stage::Full;
    config.transforms.sort_or_trees = stage >= Stage::Full;
    return config;
}

exp::RunResult
runStage(const machines::MachineInfo &machine, exp::Rep rep, Stage stage)
{
    exp::RunConfig config = stageConfig(machine, rep, stage);
    // Paper accounting: the tables/figures report checks and options
    // per attempt as the paper's engine counted them, so lower without
    // the collision-vector prefilter (identical schedules; see
    // exp::RunConfig::prefilter). The perf benches keep it on.
    config.prefilter = false;
    return exp::run(config);
}

exp::RunResult
runStageSizeOnly(const machines::MachineInfo &machine, exp::Rep rep,
                 Stage stage)
{
    exp::RunConfig config = stageConfig(machine, rep, stage);
    config.prefilter = false;
    config.schedule = false;
    return exp::run(config);
}

std::string
reduction(double before, double after)
{
    if (before <= 0)
        return "-";
    return TextTable::percent((before - after) / before, 1);
}

void
printBreakdown(const machines::MachineInfo &machine,
               const std::vector<PaperBreakdownRow> &paper)
{
    exp::RunResult result =
        runStage(machine, exp::Rep::AndOrTree, Stage::Original);

    // Group scheduling attempts by each tree's expanded option count.
    std::map<uint64_t, uint64_t> attempts_by_options;
    uint64_t total = 0;
    const auto &per_tree = result.stats.checks.attempts_per_tree;
    for (uint32_t t = 0; t < per_tree.size(); ++t) {
        if (per_tree[t] == 0)
            continue;
        attempts_by_options[result.low.expandedOptionCount(t)] +=
            per_tree[t];
        total += per_tree[t];
    }

    TextTable table;
    table.setHeader({"Number of Options", "% Sched. Attempts (paper)",
                     "% Sched. Attempts (measured)",
                     "Operations Modeled"});
    for (const auto &row : paper) {
        uint64_t measured = 0;
        auto it = attempts_by_options.find(row.options);
        if (it != attempts_by_options.end())
            measured = it->second;
        table.addRow({std::to_string(row.options),
                      row.paper_percent < 0
                          ? "(illegible)"
                          : TextTable::percent(row.paper_percent / 100.0,
                                               2),
                      TextTable::percent(double(measured) / double(total),
                                         2),
                      row.description});
    }
    std::printf("%s", table.toString().c_str());
    std::printf("\nTotal operations scheduled: %llu\n",
                (unsigned long long)result.stats.ops_scheduled);
    std::printf("Total scheduling attempts:  %llu (%.2f per operation)\n",
                (unsigned long long)result.stats.checks.attempts,
                result.stats.avgAttemptsPerOp());
}

void
printHeader(const std::string &artifact, const std::string &what)
{
    std::printf("=============================================================="
                "==========\n");
    std::printf("Reproduction of %s: %s\n", artifact.c_str(), what.c_str());
    std::printf("Gyllenhaal, Hwu, Rau, \"Optimization of Machine "
                "Descriptions for Efficient Use\", MICRO-29, 1996\n");
    std::printf("=============================================================="
                "==========\n\n");
}

void
printFootnote()
{
    std::printf(
        "\nNote: \"paper\" columns quote the publication. Absolute values\n"
        "differ (synthetic SPEC CINT92 stand-in workload; documented\n"
        "byte-accounting model); the comparison target is the *shape* -\n"
        "who wins, by what factor, and where the crossovers fall.\n");
}

} // namespace mdes::bench
