/**
 * @file
 * Ablation: scheduler-direction tuning of the Section 7 transformations.
 *
 * "In this manner, the same machine descriptions can be automatically
 * tuned for other types of schedulers by adjusting the heuristic for
 * picking the resource usage time shift constants and for the sorting of
 * the resulting usage checks." This bench schedules every machine with
 * the *backward* list scheduler twice - once with forward-tuned and once
 * with backward-tuned transformations - and reports the check counts.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/transforms.h"
#include "hmdes/compile.h"
#include "sched/backward_scheduler.h"
#include "workload/workload.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("ablation (Section 7 direction tuning)",
                "forward- vs backward-tuned usage-time shifts under a "
                "backward list scheduler");

    TextTable table;
    table.setHeader({"MDES", "Fwd-tuned Checks/Attempt",
                     "Bwd-tuned Checks/Attempt", "Bwd/Fwd Ratio",
                     "Same Schedule"});

    for (const auto *info : machines::all()) {
        double checks[2];
        std::vector<sched::BlockSchedule> scheds[2];
        for (int pass = 0; pass < 2; ++pass) {
            Mdes m = hmdes::compileOrThrow(info->source);
            PipelineConfig config = PipelineConfig::all();
            config.direction = pass == 0 ? SchedDirection::Forward
                                         : SchedDirection::Backward;
            runPipeline(m, config);
            lmdes::LowerOptions lopts;
            lopts.pack_bit_vector = true;
            lmdes::LowMdes low = lmdes::LowMdes::lower(m, lopts);

            workload::WorkloadSpec spec = info->workload;
            spec.num_ops = 40000;
            sched::Program program = workload::generate(spec, low);
            for (auto &block : program.blocks) {
                for (auto &in : block.instrs)
                    in.cascadable = false; // no cascading backward
            }
            sched::BackwardListScheduler scheduler(low);
            sched::SchedStats stats;
            scheds[pass] = scheduler.scheduleProgram(program, stats);
            checks[pass] = stats.checks.avgChecksPerAttempt();
        }
        bool same = scheds[0].size() == scheds[1].size();
        for (size_t b = 0; same && b < scheds[0].size(); ++b)
            same = scheds[0][b].cycles == scheds[1][b].cycles;
        table.addRow({
            info->name,
            TextTable::num(checks[0], 2),
            TextTable::num(checks[1], 2),
            TextTable::num(checks[1] / checks[0], 3),
            same ? "yes" : "NO",
        });
    }
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nMeasured characterization: backward tuning helps machines\n"
        "whose hot options genuinely spread across cycles (the K5's\n"
        "two-dispatch-cycle tables), is neutral where every resource is\n"
        "used at a single time, and can hurt when a rare long busy-tail\n"
        "(the Pentium divide) drags a resource's latest-usage constant\n"
        "away from the common case. Either tuning produces the identical\n"
        "schedule - only the checking cost moves.\n");
    printFootnote();
    return 0;
}
