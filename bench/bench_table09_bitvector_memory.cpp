/**
 * @file
 * Reproduces Table 9: MDES size before and after adopting the bit-vector
 * check encoding (one cycle's resource usages packed per memory word),
 * applied on top of the Section 5 cleanups.
 */

#include "bench_util.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("Table 9",
                "MDES size characteristics before and after a bit-vector "
                "representation is used (one cycle/word)");

    struct PaperRow
    {
        const char *name;
        long or_before, or_after;
        double or_diff;
        long andor_before, andor_after;
        double andor_diff;
    };
    const PaperRow paper[] = {
        {"PA7100", 1712, 1404, 17.8, 1232, 1128, 8.4},
        {"Pentium", 10814, 3224, 70.2, 11296, 3704, 67.2},
        {"SuperSPARC", 14752, 11152, 24.4, 1896, 1640, 13.5},
        {"K5", 266034, 183280, 31.1, 3562, 3136, 12.0},
    };

    TextTable table;
    table.setHeader({"MDES", "Rep", "Before (bytes)", "After (bytes)",
                     "Diff", "paper: before", "paper: after",
                     "paper: diff"});
    for (size_t i = 0; i < machines::all().size(); ++i) {
        const auto *m = machines::all()[i];
        for (auto rep : {exp::Rep::OrTree, exp::Rep::AndOrTree}) {
            size_t before =
                runStageSizeOnly(*m, rep, Stage::Cleaned).memory.total();
            size_t after =
                runStageSizeOnly(*m, rep, Stage::BitVector)
                    .memory.total();
            bool is_or = rep == exp::Rep::OrTree;
            table.addRow({
                m->name,
                exp::repName(rep),
                std::to_string(before),
                std::to_string(after),
                reduction(double(before), double(after)),
                std::to_string(is_or ? paper[i].or_before
                                     : paper[i].andor_before),
                std::to_string(is_or ? paper[i].or_after
                                     : paper[i].andor_after),
                TextTable::percent(
                    (is_or ? paper[i].or_diff : paper[i].andor_diff) /
                        100.0,
                    1),
            });
        }
        table.addSeparator();
    }
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nAs in the paper: the Pentium benefits most because its\n"
        "options probe several resources in the same cycle; machines\n"
        "whose usages spread across cycles gain less until the\n"
        "usage-time transformation (Table 11) concentrates them.\n");
    printFootnote();
    return 0;
}
