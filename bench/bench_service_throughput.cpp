/**
 * @file
 * Service throughput: requests/sec through MdesService at 1/2/4/8
 * workers against the Pentium Pro description (the paper-conclusion
 * extension machine).
 *
 * Each worker count answers the identical 32-request batch (distinct
 * seeds, so every request schedules a different stream). The run
 * asserts the serving invariants that make scaling sound:
 *
 *  - schedules are byte-identical (equal fingerprints) at every worker
 *    count - concurrency never changes results;
 *  - after the first compilation the cache serves every request (warm
 *    re-run: zero additional compiles, 100% hit rate).
 *
 * Speedup is bounded by available cores; the printed table reports
 * both wall time and the speedup over the single-worker baseline.
 */

#include <cstdlib>
#include <thread>

#include "bench_util.h"
#include "service/service.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("service throughput",
                "concurrent compile-and-schedule service: requests/sec "
                "vs worker count (PentiumPro)");

    constexpr size_t kRequests = 32;
    constexpr size_t kOpsPerRequest = 1500;

    auto makeBatch = [] {
        std::vector<service::ScheduleRequest> batch;
        for (size_t i = 0; i < kRequests; ++i) {
            service::ScheduleRequest req;
            req.machine = "PentiumPro";
            req.synth_ops = kOpsPerRequest;
            req.seed = i + 1;
            batch.push_back(std::move(req));
        }
        return batch;
    };

    std::vector<uint64_t> baseline_fingerprints;
    double baseline_secs = 0.0;
    bool deterministic = true;
    uint64_t residual_compiles = 0;
    double warm_hit_rate = 0.0;

    TextTable table;
    table.setHeader({"Workers", "Wall ms", "Requests/s", "Speedup",
                     "Compiles", "Warm hit rate"});
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
        service::MdesService svc(
            {.num_workers = workers, .cache_capacity = 8});
        // Warm the cache so the timed region measures serving, not the
        // one-off compilation.
        {
            service::ScheduleRequest warmup;
            warmup.machine = "PentiumPro";
            warmup.synth_ops = 64;
            svc.wait(svc.submit(warmup));
        }
        uint64_t compiles_before = svc.cache().stats().compiles;
        uint64_t hits_before = svc.cache().stats().hits;

        auto t0 = std::chrono::steady_clock::now();
        auto responses = svc.runBatch(makeBatch());
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

        std::vector<uint64_t> fingerprints;
        for (const auto &r : responses) {
            if (!r.ok()) {
                std::fprintf(stderr, "request failed: %s\n",
                             r.error.message.c_str());
                return 1;
            }
            fingerprints.push_back(service::scheduleFingerprint(r));
        }
        if (baseline_fingerprints.empty()) {
            baseline_fingerprints = fingerprints;
            baseline_secs = secs;
        } else if (fingerprints != baseline_fingerprints) {
            deterministic = false;
        }

        // The timed batch ran entirely against the warm cache: every
        // request a hit, no new compilations.
        service::DescriptionCache::Stats cs = svc.cache().stats();
        residual_compiles += cs.compiles - compiles_before;
        warm_hit_rate = double(cs.hits - hits_before) / double(kRequests);

        table.addRow({std::to_string(workers),
                      TextTable::num(secs * 1e3, 1),
                      TextTable::num(double(kRequests) / secs, 1),
                      TextTable::num(baseline_secs / secs, 2),
                      std::to_string(svc.cache().stats().compiles),
                      TextTable::percent(warm_hit_rate)});
    }
    std::printf("%s", table.toString().c_str());
    std::printf("\n(%u hardware thread(s) available; speedup saturates "
                "at the core count)\n",
                std::thread::hardware_concurrency());

    if (!deterministic) {
        std::fprintf(stderr,
                     "FAIL: schedules differ across worker counts\n");
        return 1;
    }
    if (residual_compiles != 0 || warm_hit_rate != 1.0) {
        std::fprintf(stderr,
                     "FAIL: warm-cache batch recompiled %llu times "
                     "(hit rate %.0f%%)\n",
                     (unsigned long long)residual_compiles,
                     warm_hit_rate * 100.0);
        return 1;
    }
    std::printf("\nschedules byte-identical across 1/2/4/8 workers; "
                "warm-cache batches performed zero recompilations "
                "(hit rate 100%%).\n");
    printFootnote();
    return 0;
}
