/**
 * @file
 * Service throughput: requests/sec through MdesService at 1/2/4/8
 * workers against the Pentium Pro description (the paper-conclusion
 * extension machine).
 *
 * Each worker count answers the identical 32-request batch (distinct
 * seeds, so every request schedules a different stream). The run
 * asserts the serving invariants that make scaling sound:
 *
 *  - schedules are byte-identical (equal fingerprints) at every worker
 *    count - concurrency never changes results;
 *  - after the first compilation the cache serves every request (warm
 *    re-run: zero additional compiles, 100% hit rate).
 *
 * Speedup is bounded by available cores; the printed table reports
 * both wall time and the speedup over the single-worker baseline.
 *
 * Two robustness gates follow the scaling table:
 *
 *  - Overload shedding: a one-worker service is buried under a burst of
 *    distinct-key requests whose compiles faultsim stalls. Unbounded
 *    admission must let accepted-request p99 latency grow with the
 *    whole backlog; a bounded queue must shed the excess with
 *    `Overloaded` and keep accepted p99 a multiple smaller.
 *  - Faultsim overhead: with injection compiled in but *disarmed* (the
 *    production state), the warm serving path must cost within 1% of
 *    the never-armed state - the same budget bench_trace_overhead
 *    enforces for tracing.
 */

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "bench_util.h"
#include "service/service.h"
#include "support/faultsim.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("service throughput",
                "concurrent compile-and-schedule service: requests/sec "
                "vs worker count (PentiumPro)");

    constexpr size_t kRequests = 32;
    constexpr size_t kOpsPerRequest = 1500;

    auto makeBatch = [] {
        std::vector<service::ScheduleRequest> batch;
        for (size_t i = 0; i < kRequests; ++i) {
            service::ScheduleRequest req;
            req.machine = "PentiumPro";
            req.synth_ops = kOpsPerRequest;
            req.seed = i + 1;
            batch.push_back(std::move(req));
        }
        return batch;
    };

    std::vector<uint64_t> baseline_fingerprints;
    double baseline_secs = 0.0;
    bool deterministic = true;
    uint64_t residual_compiles = 0;
    double warm_hit_rate = 0.0;

    TextTable table;
    table.setHeader({"Workers", "Wall ms", "Requests/s", "Speedup",
                     "Compiles", "Warm hit rate"});
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
        service::MdesService svc(
            {.num_workers = workers, .cache_capacity = 8});
        // Warm the cache so the timed region measures serving, not the
        // one-off compilation.
        {
            service::ScheduleRequest warmup;
            warmup.machine = "PentiumPro";
            warmup.synth_ops = 64;
            svc.wait(svc.submit(warmup));
        }
        uint64_t compiles_before = svc.cache().stats().compiles;
        uint64_t hits_before = svc.cache().stats().hits;

        auto t0 = std::chrono::steady_clock::now();
        auto responses = svc.runBatch(makeBatch());
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

        std::vector<uint64_t> fingerprints;
        for (const auto &r : responses) {
            if (!r.ok()) {
                std::fprintf(stderr, "request failed: %s\n",
                             r.error.message.c_str());
                return 1;
            }
            fingerprints.push_back(service::scheduleFingerprint(r));
        }
        if (baseline_fingerprints.empty()) {
            baseline_fingerprints = fingerprints;
            baseline_secs = secs;
        } else if (fingerprints != baseline_fingerprints) {
            deterministic = false;
        }

        // The timed batch ran entirely against the warm cache: every
        // request a hit, no new compilations.
        service::DescriptionCache::Stats cs = svc.cache().stats();
        residual_compiles += cs.compiles - compiles_before;
        warm_hit_rate = double(cs.hits - hits_before) / double(kRequests);

        table.addRow({std::to_string(workers),
                      TextTable::num(secs * 1e3, 1),
                      TextTable::num(double(kRequests) / secs, 1),
                      TextTable::num(baseline_secs / secs, 2),
                      std::to_string(svc.cache().stats().compiles),
                      TextTable::percent(warm_hit_rate)});
    }
    std::printf("%s", table.toString().c_str());
    std::printf("\n(%u hardware thread(s) available; speedup saturates "
                "at the core count)\n",
                std::thread::hardware_concurrency());

    if (!deterministic) {
        std::fprintf(stderr,
                     "FAIL: schedules differ across worker counts\n");
        return 1;
    }
    if (residual_compiles != 0 || warm_hit_rate != 1.0) {
        std::fprintf(stderr,
                     "FAIL: warm-cache batch recompiled %llu times "
                     "(hit rate %.0f%%)\n",
                     (unsigned long long)residual_compiles,
                     warm_hit_rate * 100.0);
        return 1;
    }
    std::printf("\nschedules byte-identical across 1/2/4/8 workers; "
                "warm-cache batches performed zero recompilations "
                "(hit rate 100%%).\n");

    // --- Overload shedding: bounded admission keeps accepted p99 flat -

    // A burst of distinct-key requests (every compile is independent
    // work) against one worker, with each compile stalled by faultsim:
    // synthetic overload whose per-request cost is controlled, so the
    // comparison below is about queueing policy, not compiler speed.
    constexpr unsigned kBurst = 48;
    constexpr size_t kBoundedQueue = 4;
    constexpr uint32_t kStallUs = 20000;
    auto makeBurst = [] {
        std::vector<service::ScheduleRequest> burst;
        for (unsigned i = 0; i < kBurst; ++i) {
            service::ScheduleRequest req;
            req.machine = "K5";
            req.synth_ops = 100;
            // Distinct transform bits -> distinct artifact keys.
            req.transforms.cse = i & 1;
            req.transforms.redundant_options = i & 2;
            req.transforms.time_shift = i & 4;
            req.transforms.sort_usages = i & 8;
            req.transforms.hoist = i & 16;
            req.transforms.sort_or_trees = i & 32;
            burst.push_back(std::move(req));
        }
        return burst;
    };

    struct OverloadRun
    {
        unsigned accepted = 0;
        unsigned shed = 0;
        uint64_t p99_us = 0;
        bool clean = true;
    };
    auto runOverload = [&](size_t max_queue) {
        service::MdesService svc({.num_workers = 1,
                                  .cache_capacity = kBurst,
                                  .max_queue = max_queue});
        OverloadRun run;
        for (const auto &resp : svc.runBatch(makeBurst())) {
            if (resp.ok()) {
                ++run.accepted;
            } else if (resp.error.code == service::ErrorCode::Overloaded) {
                ++run.shed;
            } else {
                std::fprintf(stderr, "overload request failed: %s\n",
                             resp.error.message.c_str());
                run.clean = false;
            }
        }
        // Accepted-request p99 as a client sees it: admission-queue
        // wait plus processing (shed submissions never reach a worker,
        // so neither series includes them).
        service::ServiceMetrics m = svc.metricsSnapshot();
        run.p99_us = m.queue_wait.approxPercentileUs(0.99) +
                     m.total.approxPercentileUs(0.99);
        run.clean = run.clean && m.requests_shed == run.shed;
        return run;
    };

    faultsim::install(faultsim::Plan::parse(
        "seed=17,cache/slow-compile=1:" + std::to_string(kStallUs)));
    OverloadRun unbounded = runOverload(0);
    OverloadRun bounded = runOverload(kBoundedQueue);
    faultsim::uninstall();

    TextTable shed_table;
    shed_table.setHeader(
        {"Admission queue", "Accepted", "Shed", "Accepted p99 ms"});
    shed_table.addRow({"unbounded", std::to_string(unbounded.accepted),
                       std::to_string(unbounded.shed),
                       TextTable::num(double(unbounded.p99_us) / 1e3, 1)});
    shed_table.addRow({std::to_string(kBoundedQueue) + " waiting",
                       std::to_string(bounded.accepted),
                       std::to_string(bounded.shed),
                       TextTable::num(double(bounded.p99_us) / 1e3, 1)});
    std::printf("\n%s", shed_table.toString().c_str());
    std::printf("\n(%u distinct-key requests, 1 worker, every compile "
                "stalled %ums by faultsim)\n",
                kBurst, kStallUs / 1000);

    if (!unbounded.clean || !bounded.clean ||
        unbounded.shed != 0 || unbounded.accepted != kBurst) {
        std::fprintf(stderr, "FAIL: overload runs misbehaved (unbounded "
                             "must accept everything cleanly)\n");
        return 1;
    }
    if (bounded.shed == 0 ||
        bounded.accepted + bounded.shed != kBurst) {
        std::fprintf(stderr,
                     "FAIL: bounded queue shed nothing under overload\n");
        return 1;
    }
    if (bounded.p99_us * 3 > unbounded.p99_us) {
        std::fprintf(stderr,
                     "FAIL: shedding left accepted p99 at %.1fms vs "
                     "%.1fms unbounded (want >= 3x lower)\n",
                     double(bounded.p99_us) / 1e3,
                     double(unbounded.p99_us) / 1e3);
        return 1;
    }
    std::printf("shedding kept accepted-request p99 %.1fx below the "
                "unbounded backlog's.\n",
                double(unbounded.p99_us) / double(bounded.p99_us));

    // --- Faultsim overhead: disarmed injection is free ----------------

    // The production state is "compiled in, never armed"; the state
    // after an incident is "armed once, disarmed again". Both must sit
    // within the same 1% budget bench_trace_overhead enforces, measured
    // on the warm serving path where faultsim's probes live (the
    // scheduler inner loop carries none by design).
    {
        service::MdesService svc(
            {.num_workers = 1, .cache_capacity = 8});
        service::ScheduleRequest warmup;
        warmup.machine = "PentiumPro";
        warmup.synth_ops = 64;
        svc.wait(svc.submit(warmup));

        auto batchSecs = [&] {
            auto t0 = std::chrono::steady_clock::now();
            auto responses = svc.runBatch(makeBatch());
            for (const auto &r : responses) {
                if (!r.ok()) {
                    std::fprintf(stderr, "overhead request failed: %s\n",
                                 r.error.message.c_str());
                    std::exit(1);
                }
            }
            return std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                .count();
        };
        auto medianSecs = [&](int samples) {
            std::vector<double> secs;
            for (int i = 0; i < samples; ++i)
                secs.push_back(batchSecs());
            std::sort(secs.begin(), secs.end());
            return secs[secs.size() / 2];
        };

        constexpr int kSamples = 7;
        constexpr double kBudget = 0.01;
        batchSecs(); // warm
        double never_armed = medianSecs(kSamples);

        // Arm, serve one batch through live probes, disarm.
        faultsim::install(faultsim::Plan::fuzz(17));
        batchSecs();
        faultsim::uninstall();

        double disarmed = medianSecs(kSamples);
        double overhead = disarmed / never_armed - 1.0;
        // A 1% budget sits near timer noise: re-sample both sides
        // before declaring a regression (same policy as
        // bench_trace_overhead).
        int rounds = 1;
        while (overhead > kBudget && rounds < 5) {
            never_armed = medianSecs(kSamples);
            disarmed = medianSecs(kSamples);
            overhead = disarmed / never_armed - 1.0;
            ++rounds;
        }

        TextTable over_table;
        over_table.setHeader({"State", "Median ms", "vs never-armed"});
        over_table.addRow(
            {"never-armed", TextTable::num(never_armed * 1e3, 2), "-"});
        over_table.addRow({"disarmed-after-use",
                           TextTable::num(disarmed * 1e3, 2),
                           TextTable::percent(overhead)});
        std::printf("\n%s", over_table.toString().c_str());
        std::printf("\nfaultsim budget: disarmed <= %.0f%% over "
                    "never-armed (%s, %d round%s).\n",
                    kBudget * 100.0,
                    overhead <= kBudget ? "met" : "MISSED", rounds,
                    rounds == 1 ? "" : "s");
        if (overhead > kBudget) {
            std::fprintf(stderr,
                         "FAIL: disarmed faultsim costs %.2f%% on the "
                         "warm serving path (budget %.0f%%)\n",
                         overhead * 100.0, kBudget * 100.0);
            return 1;
        }
    }

    printFootnote();
    return 0;
}
