/**
 * @file
 * Reproduces Table 6: original MDES memory requirements under the
 * OR-tree and AND/OR-tree representations (before any transformations;
 * scalar cycle/resource-pair check encoding).
 */

#include "bench_util.h"

namespace {

/** Total reservation-table options across all trees of a lowered MDES
 * (each tree's flat-OR option count for the OR rep; leaf options for the
 * AND/OR rep). */
uint64_t
totalOptions(const mdes::lmdes::LowMdes &low)
{
    return low.options().size();
}

} // namespace

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("Table 6", "original MDES memory requirements");

    struct PaperRow
    {
        const char *name;
        long or_size, andor_size;
        double reduction_pct;
    };
    const PaperRow paper[] = {
        {"PA7100", -1, -1, -1},
        {"Pentium", 14824, 15416, -4.0},
        {"SuperSPARC", 17124, 2624, 84.7},
        {"K5", 312640, 4316, 98.6},
    };

    TextTable table;
    table.setHeader({"MDES", "Trees", "OR Options", "OR Size (bytes)",
                     "AND/OR Options", "AND/OR Size (bytes)",
                     "% Size Reduced", "paper: OR size",
                     "paper: AND/OR size", "paper: % reduced"});
    for (size_t i = 0; i < machines::all().size(); ++i) {
        const auto *m = machines::all()[i];
        exp::RunResult or_run =
            runStageSizeOnly(*m, exp::Rep::OrTree, Stage::Original);
        exp::RunResult andor_run =
            runStageSizeOnly(*m, exp::Rep::AndOrTree, Stage::Original);
        size_t or_size = or_run.memory.total();
        size_t andor_size = andor_run.memory.total();
        auto fmtL = [](long v) {
            return v < 0 ? std::string("(illegible)")
                         : std::to_string(v);
        };
        table.addRow({
            m->name,
            std::to_string(andor_run.low.trees().size()),
            std::to_string(totalOptions(or_run.low)),
            std::to_string(or_size),
            std::to_string(totalOptions(andor_run.low)),
            std::to_string(andor_size),
            reduction(double(or_size), double(andor_size)),
            fmtL(paper[i].or_size),
            fmtL(paper[i].andor_size),
            paper[i].reduction_pct < -10
                ? "(illegible)"
                : TextTable::percent(paper[i].reduction_pct / 100.0, 1),
        });
    }
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nAs in the paper: the AND/OR-tree representation avoids the\n"
        "explicit enumeration of every resource-usage combination, so\n"
        "machines with flexible constraints (SuperSPARC, K5) shrink by\n"
        "~85-99%%, while the Pentium - whose AND level always points at\n"
        "one OR-tree - pays a small overhead for the extra AND level.\n");
    printFootnote();
    return 0;
}
