/**
 * @file
 * Extension: the paper's closing prediction, tested.
 *
 * Section 9 ends: "We expect the K5 MDES results to be representative of
 * the latest generation of microprocessors, such as the Intel Pentium
 * Pro and the HP PA8000." This bench runs a Pentium Pro description
 * (3-decoder 4-1-1 template, 5 dispatch ports, 3-wide rename and retire,
 * split multi-uop dispatch) through the identical experiment matrix and
 * places it next to the paper's four machines: if the prediction holds,
 * the P6 should pattern with the flexible machines (SuperSPARC, K5) -
 * large AND/OR savings in both size and checks - not with the rigid
 * Pentium.
 */

#include <cstdio>

#include <algorithm>

#include "bench_util.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("extension (Section 9's closing prediction)",
                "do the Pentium Pro and PA8000 pattern with the K5?");

    std::vector<const machines::MachineInfo *> lineup =
        machines::all();
    for (const auto *m : machines::extensions())
        lineup.push_back(m);

    TextTable table;
    table.setHeader({"MDES", "Unopt OR Bytes", "Full AND/OR Bytes",
                     "Size Reduction", "Unopt OR Checks/Attempt",
                     "Full AND/OR Checks/Attempt", "Checks Reduction"});
    for (const auto *m : lineup) {
        size_t or_bytes =
            runStageSizeOnly(*m, exp::Rep::OrTree, Stage::Original)
                .memory.total();
        size_t andor_bytes =
            runStageSizeOnly(*m, exp::Rep::AndOrTree, Stage::Full)
                .memory.total();
        exp::RunConfig or_cfg = stageConfig(*m, exp::Rep::OrTree,
                                            Stage::Original);
        or_cfg.prefilter = false; // paper accounting (see runStage)
        or_cfg.num_ops_override = 60000;
        double or_checks =
            exp::run(or_cfg).stats.checks.avgChecksPerAttempt();
        exp::RunConfig ao_cfg =
            stageConfig(*m, exp::Rep::AndOrTree, Stage::Full);
        ao_cfg.prefilter = false; // paper accounting (see runStage)
        ao_cfg.num_ops_override = 60000;
        double andor_checks =
            exp::run(ao_cfg).stats.checks.avgChecksPerAttempt();
        auto ext = machines::extensions();
        bool is_ext = std::find(ext.begin(), ext.end(), m) != ext.end();
        table.addRow({
            m->name + (is_ext ? " (extension)" : ""),
            std::to_string(or_bytes),
            std::to_string(andor_bytes),
            reduction(double(or_bytes), double(andor_bytes)),
            TextTable::num(or_checks, 2),
            TextTable::num(andor_checks, 2),
            reduction(or_checks, andor_checks),
        });
    }
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nThe prediction holds: the P6-class machine's enumerated OR\n"
        "form explodes combinatorially (decoders x rename slots x ports\n"
        "x retire slots), and the fully optimized AND/OR representation\n"
        "recovers K5-like reductions - far from the rigid Pentium's\n"
        "flat profile.\n");
    printFootnote();
    return 0;
}
