/**
 * @file
 * Reproduces Table 12: scheduling characteristics before and after
 * transforming resource usage times and sorting the resulting usage
 * checks so time zero is probed first (one cycle per word), including
 * the checks-per-option ratio the paper highlights (close to the ideal
 * of one check per option).
 */

#include "bench_util.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("Table 12",
                "scheduling characteristics before and after "
                "transforming resource usage times and sorting usages to "
                "check time zero first");

    struct PaperRow
    {
        const char *name;
        double or_before, or_after, or_per_option;
        double andor_before, andor_after, andor_per_option;
    };
    const PaperRow paper[] = {
        {"PA7100", 2.18, 1.59, 1.12, 1.76, 1.55, 1.19},
        {"Pentium", 2.31, 1.57, 1.05, 2.31, 1.57, 1.05},
        {"SuperSPARC", 26.69, 21.59, 1.10, 4.62, 4.49, 1.03},
        {"K5", 34.35, 19.87, 1.41, 5.30, 5.25, 1.01},
    };

    TextTable table;
    table.setHeader({"MDES", "Rep", "Checks/Attempt Before",
                     "Checks/Attempt After", "Diff", "Checks/Option",
                     "paper: before", "paper: after",
                     "paper: checks/option"});
    for (size_t i = 0; i < machines::all().size(); ++i) {
        const auto *m = machines::all()[i];
        for (auto rep : {exp::Rep::OrTree, exp::Rep::AndOrTree}) {
            exp::RunResult before_run =
                runStage(*m, rep, Stage::BitVector);
            exp::RunResult after_run =
                runStage(*m, rep, Stage::TimeShifted);
            double before = before_run.stats.checks.avgChecksPerAttempt();
            double after = after_run.stats.checks.avgChecksPerAttempt();
            double per_option =
                after_run.stats.checks.options_checked
                    ? double(after_run.stats.checks.resource_checks) /
                          double(after_run.stats.checks.options_checked)
                    : 0;
            bool is_or = rep == exp::Rep::OrTree;
            table.addRow({
                m->name,
                exp::repName(rep),
                TextTable::num(before, 2),
                TextTable::num(after, 2),
                reduction(before, after),
                TextTable::num(per_option, 2),
                TextTable::num(is_or ? paper[i].or_before
                                     : paper[i].andor_before,
                               2),
                TextTable::num(is_or ? paper[i].or_after
                                     : paper[i].andor_after,
                               2),
                TextTable::num(is_or ? paper[i].or_per_option
                                     : paper[i].andor_per_option,
                               2),
            });
        }
        table.addSeparator();
    }
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nAs in the paper: concentrating conflict-prone usages at time\n"
        "zero and probing them first drives resource checks per option\n"
        "to ~1; from here on, the number of *options* checked dictates\n"
        "the cost, which Section 8 (Table 13) attacks.\n");
    printFootnote();
    return 0;
}
