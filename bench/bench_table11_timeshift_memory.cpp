/**
 * @file
 * Reproduces Table 11: MDES memory requirements before and after
 * transforming resource usage times (per-resource shift so usages
 * concentrate at time zero; one cycle per word).
 */

#include "bench_util.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("Table 11",
                "MDES memory requirements before and after transforming "
                "resource usage times (one cycle per word)");

    struct PaperRow
    {
        const char *name;
        long or_before, or_after;
        long andor_before, andor_after;
    };
    const PaperRow paper[] = {
        {"PA7100", 1404, 1168, 1128, 1032},
        {"Pentium", 3224, 3080, 3704, 3560},
        {"SuperSPARC", 11152, 7016, 1640, 1584},
        {"K5", 183280, 125488, 3136, 3096},
    };

    TextTable table;
    table.setHeader({"MDES", "Rep", "Before (bytes)", "After (bytes)",
                     "Diff", "paper: before", "paper: after"});
    for (size_t i = 0; i < machines::all().size(); ++i) {
        const auto *m = machines::all()[i];
        for (auto rep : {exp::Rep::OrTree, exp::Rep::AndOrTree}) {
            size_t before =
                runStageSizeOnly(*m, rep, Stage::BitVector)
                    .memory.total();
            size_t after =
                runStageSizeOnly(*m, rep, Stage::TimeShifted)
                    .memory.total();
            bool is_or = rep == exp::Rep::OrTree;
            table.addRow({
                m->name,
                exp::repName(rep),
                std::to_string(before),
                std::to_string(after),
                reduction(double(before), double(after)),
                std::to_string(is_or ? paper[i].or_before
                                     : paper[i].andor_before),
                std::to_string(is_or ? paper[i].or_after
                                     : paper[i].andor_after),
            });
        }
        table.addSeparator();
    }
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nAs in the paper: after the shift, more usages share a cycle\n"
        "and merge into one check word; the OR representation (more\n"
        "usages per option) shrinks most. These are the final MDES\n"
        "sizes - Section 8's transformations do not change size.\n");
    printFootnote();
    return 0;
}
