/**
 * @file
 * google-benchmark microbenchmarks of the resource-constraint checker:
 * tryReserve throughput per machine, representation, and optimization
 * stage. This is the wall-clock counterpart of the paper's
 * checks-per-attempt tables - fewer probes means faster scheduling.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "rumap/checker.h"
#include "workload/workload.h"

namespace {

using namespace mdes;
using namespace mdes::bench;

void
checkerThroughput(benchmark::State &state, const machines::MachineInfo &m,
                  exp::Rep rep, Stage stage)
{
    exp::RunConfig config = stageConfig(m, rep, stage);
    config.schedule = false;
    exp::RunResult built = exp::run(config);

    // A fixed probe set: every operation class attempted over a window
    // of cycles against a progressively filling RU map.
    rumap::Checker checker(built.low);
    rumap::CheckStats stats;
    uint64_t attempts = 0;
    for (auto _ : state) {
        rumap::RuMap ru;
        for (int cycle = 0; cycle < 32; ++cycle) {
            for (const auto &oc : built.low.opClasses()) {
                checker.tryReserve(oc.tree, cycle, ru, stats);
                ++attempts;
            }
        }
    }
    state.SetItemsProcessed(int64_t(attempts));
    state.counters["checks/attempt"] =
        stats.attempts ? double(stats.resource_checks) /
                             double(stats.attempts)
                       : 0;
}

void
registerAll()
{
    for (const auto *m : machines::all()) {
        for (auto rep : {exp::Rep::OrTree, exp::Rep::AndOrTree}) {
            for (Stage stage : {Stage::Original, Stage::Full}) {
                std::string name = "checker/" + m->name + "/" +
                                   (rep == exp::Rep::OrTree ? "or"
                                                            : "andor") +
                                   "/" +
                                   (stage == Stage::Original ? "original"
                                                             : "full");
                benchmark::RegisterBenchmark(
                    name.c_str(),
                    [m, rep, stage](benchmark::State &state) {
                        checkerThroughput(state, *m, rep, stage);
                    });
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
