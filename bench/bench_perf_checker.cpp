/**
 * @file
 * google-benchmark microbenchmarks of the resource-constraint checker:
 * tryReserve throughput per machine, representation, and optimization
 * stage. This is the wall-clock counterpart of the paper's
 * checks-per-attempt tables - fewer probes means faster scheduling.
 *
 * `--json <path>` additionally writes machine-readable results
 * (wall time, attempts/sec, checks/attempt, and a fingerprint of the
 * checker's decisions) for CI regression gating; see perf_json.h.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "perf_json.h"
#include "rumap/checker.h"
#include "workload/workload.h"

namespace {

using namespace mdes;
using namespace mdes::bench;

/** Hash every decision of the fixed probe set: outcome and chosen
 * options per attempt, then the resulting RU-map window. */
uint64_t
checkerFingerprint(rumap::Checker &checker, const lmdes::LowMdes &low)
{
    rumap::RuMap ru;
    rumap::CheckStats stats;
    std::vector<uint32_t> chosen;
    uint64_t h = perfjson::fnvInit();
    for (int cycle = 0; cycle < 32; ++cycle) {
        for (const auto &oc : low.opClasses()) {
            bool ok = checker.tryReserve(oc.tree, cycle, ru, stats,
                                         &chosen);
            perfjson::fnvMix(h, ok ? 1 : 0);
            if (ok)
                for (uint32_t id : chosen)
                    perfjson::fnvMix(h, id);
        }
    }
    for (int32_t s = 0; s < int32_t(ru.windowSize()); ++s)
        perfjson::fnvMix(h, ru.wordSlot(ru.windowBase() + s));
    return h;
}

void
checkerThroughput(benchmark::State &state, const std::string &name,
                  const machines::MachineInfo &m, exp::Rep rep,
                  Stage stage)
{
    exp::RunConfig config = stageConfig(m, rep, stage);
    config.schedule = false;
    exp::RunResult built = exp::run(config);

    // A fixed probe set: every operation class attempted over a window
    // of cycles against a progressively filling RU map.
    rumap::Checker checker(built.low);
    rumap::CheckStats stats;
    uint64_t attempts = 0;
    perfjson::Stopwatch watch;
    for (auto _ : state) {
        watch.start();
        rumap::RuMap ru;
        for (int cycle = 0; cycle < 32; ++cycle) {
            for (const auto &oc : built.low.opClasses()) {
                checker.tryReserve(oc.tree, cycle, ru, stats);
                ++attempts;
            }
        }
        watch.stop();
    }
    state.SetItemsProcessed(int64_t(attempts));
    double checks_per_attempt =
        stats.attempts
            ? double(stats.resource_checks) / double(stats.attempts)
            : 0;
    state.counters["checks/attempt"] = checks_per_attempt;

    perfjson::record(
        {name, watch.avgMs(),
         watch.totalSec() > 0 ? double(attempts) / watch.totalSec() : 0,
         checks_per_attempt, checkerFingerprint(checker, built.low)});
}

void
registerAll()
{
    for (const auto *m : machines::all()) {
        for (auto rep : {exp::Rep::OrTree, exp::Rep::AndOrTree}) {
            for (Stage stage : {Stage::Original, Stage::Full}) {
                std::string name = "checker/" + m->name + "/" +
                                   (rep == exp::Rep::OrTree ? "or"
                                                            : "andor") +
                                   "/" +
                                   (stage == Stage::Original ? "original"
                                                             : "full");
                benchmark::RegisterBenchmark(
                    name.c_str(),
                    [name, m, rep, stage](benchmark::State &state) {
                        checkerThroughput(state, name, *m, rep, stage);
                    });
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = perfjson::stripJsonFlag(argc, argv);
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    if (!json_path.empty() &&
        !perfjson::write(json_path, "perf_checker", "checks_per_attempt")) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    benchmark::Shutdown();
    return 0;
}
