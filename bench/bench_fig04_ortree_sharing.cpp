/**
 * @file
 * Reproduces Figure 4: how the AND/OR-tree representation facilitates
 * the sharing of OR-trees - the decoder and register-write-port OR-trees
 * are shared by the SuperSPARC's integer-load AND/OR-tree and its
 * integer-ALU (two register source) AND/OR-tree, and by every other
 * table that needs them.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/transforms.h"
#include "hmdes/compile.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("Figure 4",
                "how the AND/OR-tree representation facilitates the "
                "sharing of OR-trees");

    Mdes m = hmdes::compileOrThrow(machines::superSparc().source);
    eliminateRedundantInfo(m); // fold the copy-pasted duplicates first

    auto show = [&](const char *op) {
        OpClassId cls = m.findOpClass(op);
        const AndOrTree &tree = m.tree(m.opClass(cls).tree);
        std::printf("%-6s -> AND/OR-tree '%s': AND(", op,
                    tree.name.c_str());
        for (size_t i = 0; i < tree.or_trees.size(); ++i) {
            std::printf("%s%s", i ? ", " : "",
                        m.orTree(tree.or_trees[i]).name.c_str());
        }
        std::printf(")\n");
    };
    show("LD");
    show("ADD_R");
    show("ADD_I");
    show("ST");
    show("SLL_I");

    std::printf("\nOR-tree sharing across all AND/OR-trees (after the "
                "Section 5 cleanup):\n\n");
    auto shares = m.orTreeShareCounts();
    TextTable table;
    table.setHeader({"OR-tree", "Options",
                     "Shared by # AND/OR-trees"});
    for (OrTreeId t = 0; t < m.orTrees().size(); ++t) {
        table.addRow({m.orTree(t).name,
                      std::to_string(m.orTree(t).options.size()),
                      std::to_string(shares[t])});
    }
    std::printf("%s", table.toString().c_str());

    std::printf(
        "\nAs in the paper: AND/OR options specify usages at a finer\n"
        "granularity, so whole OR-trees (decoders, write ports, read\n"
        "ports) are shared by several AND/OR-trees, further reducing\n"
        "the MDES size beyond what OR-tree sharing can achieve.\n");
    return 0;
}
