/**
 * @file
 * Reproduces Table 4: option breakdown and scheduling characteristics of
 * the K5 MDES (Rops dispatched over one or two cycles; bundled
 * cmp+branch pairs).
 */

#include "bench_util.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("Table 4",
                "option breakdown and scheduling characteristics for the "
                "K5 MDES");
    printBreakdown(
        machines::k5(),
        {
            {16, 14.72, "1-Rop ops with 1 unit choice"},
            {24, 0.14,
             "2-Rop ops dispatched in 1 cycle (1 unit choice)"},
            {32, 74.72, "1-Rop ops with 2 unit choices"},
            {48, 5.91, "2-Rop bundled cmp+br dispatched in 1 cycle"},
            {64, 2.56, "3-Rop bundled cmp+br dispatched in 1 cycle"},
            {96, 0.19,
             "2-Rop ops dispatched in 1 cycle (2 unit choices)"},
            {128, 0.66, "2-Rop bundled cmp+br dispatched over 2 cycles"},
            {192, 0.15,
             "2-Rop ops dispatched over 2 cycles (subset of)"},
            {256, 0.37,
             "2-Rop ops dispatched over 2 cycles (2 unit choices)"},
            {384, 0.43, "3-Rop bundled cmp+br dispatched over 2 cycles"},
            {768, 0.15,
             "3-Rop ops dispatched over 2 cycles (subset of)"},
        });
    std::printf("Paper: 89.44%% of attempts are 1-Rop x86 operations "
                "with 16 or 32 options;\n1.66 attempts per operation on "
                "203094 static operations (postpass).\n");
    printFootnote();
    return 0;
}
