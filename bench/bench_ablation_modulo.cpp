/**
 * @file
 * Ablation: iterative modulo scheduling vs list scheduling.
 *
 * The paper predicts (Section 4) that advanced techniques like iterative
 * modulo scheduling [Rau, MICRO-27] significantly increase scheduling
 * attempts per operation, so "the benefit of this paper's AND/OR-tree
 * representation and MDES transformations should only increase". This
 * bench measures it: attempts/op and checks/attempt for both techniques,
 * per machine and representation, with the AND/OR saving factor.
 */

#include <cstdio>

#include "bench_util.h"
#include "sched/modulo_scheduler.h"
#include "workload/workload.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("ablation (Section 4 claim)",
                "modulo scheduling multiplies scheduling attempts, "
                "amplifying the AND/OR + transformation savings");

    TextTable table;
    table.setHeader({"MDES", "Scheduler", "Attempts/Op",
                     "OR Checks/Attempt", "AND/OR Checks/Attempt",
                     "AND/OR Saving"});

    for (const auto *m : machines::all()) {
        double checks[2][2];  // [scheduler][rep]
        double attempts[2] = {0, 0};
        for (int rep_idx = 0; rep_idx < 2; ++rep_idx) {
            exp::Rep rep = rep_idx == 0 ? exp::Rep::OrTree
                                        : exp::Rep::AndOrTree;
            exp::RunConfig config = stageConfig(*m, rep, Stage::Full);
            config.prefilter = false; // paper accounting (see runStage)
            config.schedule = false;
            exp::RunResult built = exp::run(config);

            // List scheduling over the standard stream.
            {
                exp::RunConfig run_config = config;
                run_config.schedule = true;
                run_config.num_ops_override = 40000;
                exp::RunResult r = exp::run(run_config);
                checks[0][rep_idx] =
                    r.stats.checks.avgChecksPerAttempt();
                attempts[0] = r.stats.avgAttemptsPerOp();
            }
            // Modulo scheduling over synthetic inner loops.
            {
                workload::WorkloadSpec spec = m->workload;
                spec.num_ops = 6000;
                spec.min_block_size = 5;
                spec.max_block_size = 12;
                sched::Program loops =
                    workload::generateLoops(spec, built.low);
                sched::ModuloScheduler ms(built.low);
                sched::SchedStats stats;
                for (const auto &body : loops.blocks)
                    ms.schedule(body, stats);
                checks[1][rep_idx] =
                    stats.checks.avgChecksPerAttempt();
                attempts[1] = stats.avgAttemptsPerOp();
            }
        }
        for (int s = 0; s < 2; ++s) {
            table.addRow({
                m->name,
                s == 0 ? "list" : "modulo (IMS)",
                TextTable::num(attempts[s], 2),
                TextTable::num(checks[s][0], 2),
                TextTable::num(checks[s][1], 2),
                checks[s][1] > 0
                    ? TextTable::num(checks[s][0] / checks[s][1], 2) + "x"
                    : "-",
            });
        }
        table.addSeparator();
    }
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nIterative modulo scheduling probes each operation across its\n"
        "whole II window and re-probes after unscheduling, so attempts\n"
        "per operation rise well above the list scheduler's - and every\n"
        "attempt saved by the AND/OR representation pays off that many\n"
        "more times. Unscheduling itself is the reservation-table\n"
        "release() the paper contrasts with finite-state automata.\n");
    printFootnote();
    return 0;
}
