/**
 * @file
 * google-benchmark microbenchmarks of end-to-end list scheduling: wall
 * clock per scheduled operation across machines, representations, and
 * optimization stages. Demonstrates the paper's bottom line - the
 * fully optimized AND/OR representation makes exact constraint modeling
 * cheap enough for production compile times.
 *
 * `--json <path>` additionally writes machine-readable results
 * (wall time, ops/sec, checks/op, and the schedule fingerprint) for CI
 * regression gating; see perf_json.h.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "perf_json.h"
#include "sched/list_scheduler.h"
#include "workload/workload.h"

namespace {

using namespace mdes;
using namespace mdes::bench;

void
schedulerThroughput(benchmark::State &state, const std::string &name,
                    const machines::MachineInfo &m, exp::Rep rep,
                    Stage stage)
{
    exp::RunConfig config = stageConfig(m, rep, stage);
    config.schedule = false;
    exp::RunResult built = exp::run(config);

    workload::WorkloadSpec spec = m.workload;
    spec.num_ops = 20000;
    sched::Program program = workload::generate(spec, built.low);

    uint64_t ops = 0;
    uint64_t fingerprint = 0;
    double checks_per_op = 0;
    perfjson::Stopwatch watch;
    for (auto _ : state) {
        watch.start();
        sched::ListScheduler scheduler(built.low);
        sched::SchedStats stats;
        auto schedules = scheduler.scheduleProgram(program, stats);
        watch.stop();
        ops += stats.ops_scheduled;
        // Deterministic: identical every iteration.
        fingerprint = scheduleFingerprint(schedules);
        checks_per_op = stats.ops_scheduled
                            ? double(stats.checks.resource_checks) /
                                  double(stats.ops_scheduled)
                            : 0;
    }
    state.SetItemsProcessed(int64_t(ops));
    state.counters["checks/op"] = checks_per_op;

    perfjson::record(
        {name, watch.avgMs(),
         watch.totalSec() > 0 ? double(ops) / watch.totalSec() : 0,
         checks_per_op, fingerprint});
}

void
registerAll()
{
    for (const auto *m : machines::all()) {
        for (auto rep : {exp::Rep::OrTree, exp::Rep::AndOrTree}) {
            for (Stage stage : {Stage::Original, Stage::Full}) {
                std::string name = "schedule/" + m->name + "/" +
                                   (rep == exp::Rep::OrTree ? "or"
                                                            : "andor") +
                                   "/" +
                                   (stage == Stage::Original ? "original"
                                                             : "full");
                benchmark::RegisterBenchmark(
                    name.c_str(),
                    [name, m, rep, stage](benchmark::State &state) {
                        schedulerThroughput(state, name, *m, rep, stage);
                    });
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = perfjson::stripJsonFlag(argc, argv);
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    if (!json_path.empty() &&
        !perfjson::write(json_path, "perf_scheduler", "checks_per_op")) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    benchmark::Shutdown();
    return 0;
}
