/**
 * @file
 * google-benchmark microbenchmarks of end-to-end list scheduling: wall
 * clock per scheduled operation across machines, representations, and
 * optimization stages. Demonstrates the paper's bottom line - the
 * fully optimized AND/OR representation makes exact constraint modeling
 * cheap enough for production compile times.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sched/list_scheduler.h"
#include "workload/workload.h"

namespace {

using namespace mdes;
using namespace mdes::bench;

void
schedulerThroughput(benchmark::State &state,
                    const machines::MachineInfo &m, exp::Rep rep,
                    Stage stage)
{
    exp::RunConfig config = stageConfig(m, rep, stage);
    config.schedule = false;
    exp::RunResult built = exp::run(config);

    workload::WorkloadSpec spec = m.workload;
    spec.num_ops = 20000;
    sched::Program program = workload::generate(spec, built.low);

    uint64_t ops = 0;
    for (auto _ : state) {
        sched::ListScheduler scheduler(built.low);
        sched::SchedStats stats;
        scheduler.scheduleProgram(program, stats);
        ops += stats.ops_scheduled;
    }
    state.SetItemsProcessed(int64_t(ops));
}

void
registerAll()
{
    for (const auto *m : machines::all()) {
        for (auto rep : {exp::Rep::OrTree, exp::Rep::AndOrTree}) {
            for (Stage stage : {Stage::Original, Stage::Full}) {
                std::string name = "schedule/" + m->name + "/" +
                                   (rep == exp::Rep::OrTree ? "or"
                                                            : "andor") +
                                   "/" +
                                   (stage == Stage::Original ? "original"
                                                             : "full");
                benchmark::RegisterBenchmark(
                    name.c_str(),
                    [m, rep, stage](benchmark::State &state) {
                        schedulerThroughput(state, *m, rep, stage);
                    });
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
