/**
 * @file
 * Reproduces Table 8: PA7100 scheduling characteristics after removing
 * the unnecessary (historically duplicated) reservation-table option of
 * the memory operations.
 *
 * The paper reports that during the retargeting from an earlier HP PA
 * description two memory-operation options became identical, unnoticed
 * because correct schedules were still produced; the redundant-option
 * transformation finds and removes the duplicate.
 */

#include "bench_util.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("Table 8",
                "PA7100 scheduling characteristics after removing "
                "unnecessary options for memory operations");

    const auto &m = machines::pa7100();

    // "Before" = original; "after" = CSE + redundant-option removal
    // only (no other transformations), isolating the Table 8 effect.
    exp::RunResult or_before =
        runStage(m, exp::Rep::OrTree, Stage::Original);
    exp::RunResult or_after = runStage(m, exp::Rep::OrTree, Stage::Cleaned);
    exp::RunResult andor_before =
        runStage(m, exp::Rep::AndOrTree, Stage::Original);
    exp::RunResult andor_after =
        runStage(m, exp::Rep::AndOrTree, Stage::Cleaned);

    TextTable table;
    table.setHeader({"Configuration", "Options/Attempt", "Checks/Attempt"});
    table.addRow({"OR-tree, with duplicate option",
                  TextTable::num(
                      or_before.stats.checks.avgOptionsPerAttempt(), 2),
                  TextTable::num(
                      or_before.stats.checks.avgChecksPerAttempt(), 2)});
    table.addRow({"OR-tree, duplicate removed",
                  TextTable::num(
                      or_after.stats.checks.avgOptionsPerAttempt(), 2),
                  TextTable::num(
                      or_after.stats.checks.avgChecksPerAttempt(), 2)});
    table.addSeparator();
    table.addRow({"AND/OR-tree, with duplicate option",
                  TextTable::num(
                      andor_before.stats.checks.avgOptionsPerAttempt(), 2),
                  TextTable::num(
                      andor_before.stats.checks.avgChecksPerAttempt(),
                      2)});
    table.addRow({"AND/OR-tree, duplicate removed",
                  TextTable::num(
                      andor_after.stats.checks.avgOptionsPerAttempt(), 2),
                  TextTable::num(
                      andor_after.stats.checks.avgChecksPerAttempt(), 2)});
    std::printf("%s", table.toString().c_str());

    std::printf("\nPaper (Table 8, after removal): OR-tree 1.45 "
                "options / 2.42 checks per attempt;\nAND/OR-tree 1.38 "
                "options / 1.89 checks per attempt, on the same 201011 "
                "operations\nand the identical schedule.\n");
    std::printf("\nOperations scheduled: %llu (identical schedule in "
                "all four configurations).\n",
                (unsigned long long)or_before.stats.ops_scheduled);
    printFootnote();
    return 0;
}
