#ifndef MDES_BENCH_BENCH_UTIL_H
#define MDES_BENCH_BENCH_UTIL_H

/**
 * @file
 * Shared scaffolding for the table/figure reproduction binaries.
 *
 * Each bench binary regenerates one table or figure from the paper. The
 * transformation *stages* here mirror the paper's narrative order, so
 * "before/after" columns in Tables 7-13 compare adjacent stages:
 *
 *   Original   - straight from the high-level description (Section 4).
 *   Cleaned    - + CSE/copy-propagation/dead-code and redundant-option
 *                removal (Section 5).
 *   BitVector  - + one-cycle-per-word check packing (Section 6).
 *   TimeShifted- + per-resource usage-time shift and time-zero-first
 *                check sorting (Section 7).
 *   Full       - + common-usage hoisting and OR-subtree sorting
 *                (Section 8); the paper's fully optimized setting.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "sched/list_scheduler.h"
#include "support/text_table.h"

namespace mdes::bench {

/** Cumulative optimization stages in the paper's order. */
enum class Stage { Original, Cleaned, BitVector, TimeShifted, Full };

/** Human-readable stage name. */
const char *stageName(Stage stage);

/** Experiment configuration for (machine, rep, stage). */
exp::RunConfig stageConfig(const machines::MachineInfo &machine,
                           exp::Rep rep, Stage stage);

/** Run an experiment at a stage (scheduling enabled). */
exp::RunResult runStage(const machines::MachineInfo &machine,
                        exp::Rep rep, Stage stage);

/** Run an experiment at a stage without scheduling (size-only). */
exp::RunResult runStageSizeOnly(const machines::MachineInfo &machine,
                                exp::Rep rep, Stage stage);

/** Percent-reduction string: "(before-after)/before" formatted. */
std::string reduction(double before, double after);

/**
 * FNV-1a fingerprint of a program's block schedules (lengths, issue
 * cycles, cascade use). Two engine builds that make identical
 * scheduling decisions hash identically, so perf-bench baselines can
 * assert "faster, bit-identical schedules" across checker rewrites.
 */
uint64_t
scheduleFingerprint(const std::vector<sched::BlockSchedule> &schedules);

/** One row of a paper option-breakdown table (Tables 1-4). */
struct PaperBreakdownRow
{
    uint64_t options;
    /** The paper's "% of scheduling attempts" (negative = illegible in
     * the source scan). */
    double paper_percent;
    const char *description;
};

/**
 * Reproduce a Table 1-4 option breakdown: schedule the machine's
 * workload, group scheduling attempts by each reservation table's
 * expanded option count, and print measured shares next to the paper's.
 */
void printBreakdown(const machines::MachineInfo &machine,
                    const std::vector<PaperBreakdownRow> &paper);

/** Print the standard bench header. */
void printHeader(const std::string &artifact, const std::string &what);

/**
 * Footnote reminding readers that absolute values are from the
 * reproduction's workload/accounting; shapes are the comparison target.
 */
void printFootnote();

} // namespace mdes::bench

#endif // MDES_BENCH_BENCH_UTIL_H
