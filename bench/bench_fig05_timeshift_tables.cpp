/**
 * @file
 * Reproduces Figure 5: the OR-tree modeling the SuperSPARC integer load
 * after transforming the resource usage times - for each resource the
 * earliest usage time becomes zero, concentrating usages into as few
 * time slots as possible so the bit-vector representation packs them
 * into single words.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/expand.h"
#include "core/print.h"
#include "core/transforms.h"
#include "hmdes/compile.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("Figure 5",
                "the SuperSPARC integer-load OR-tree after transforming "
                "the resource usage times for the bit-vector "
                "representation");

    Mdes flat =
        expandToOrForm(hmdes::compileOrThrow(machines::superSparc().source));

    std::printf("Before (actual pipeline-relative usage times):\n\n");
    OpClassId ld = flat.findOpClass("LD");
    std::printf(
        "%s",
        printOrTree(flat, flat.tree(flat.opClass(ld).tree).or_trees[0])
            .c_str());

    auto shifts = shiftUsageTimes(flat);
    sortUsageChecks(flat);

    std::printf("\nAfter (per-resource constants subtracted):\n\n");
    std::printf(
        "%s",
        printOrTree(flat, flat.tree(flat.opClass(ld).tree).or_trees[0])
            .c_str());

    std::printf("\nPer-resource shift constants chosen by the heuristic "
                "(earliest usage time per resource):\n");
    for (ResourceId r = 0; r < flat.numResources(); ++r) {
        if (shifts[r] != 0)
            std::printf("  %-12s %+d\n", flat.resourceName(r).c_str(),
                        shifts[r]);
    }
    std::printf(
        "\nOnly usage-time *differences per resource* define forbidden\n"
        "latencies, so the shift preserves every collision vector and\n"
        "every schedule while letting one RU-map word per cycle cover\n"
        "all of an option's usages.\n");
    return 0;
}
