/**
 * @file
 * Reproduces Table 15: aggregate effect of all transformations on
 * resource checks per scheduling attempt - unoptimized OR-trees vs
 * fully optimized OR-trees vs fully optimized AND/OR-trees (with the
 * bit-vector representation).
 */

#include "bench_util.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("Table 15",
                "aggregate effect of all transformations on MDES "
                "scheduling characteristics (checks per attempt)");

    struct PaperRow
    {
        const char *name;
        double unopt, or_full, or_red, andor_full, andor_red;
    };
    const PaperRow paper[] = {
        {"PA7100", 2.47, 1.59, 35.6, 1.55, 37.2},
        {"Pentium", 3.99, 1.57, 60.7, 1.57, 60.7},
        {"SuperSPARC", 31.09, 21.59, 30.6, 3.08, 90.1},
        {"K5", 35.49, 19.87, 44.0, 4.38, 87.7},
    };

    TextTable table;
    table.setHeader({"MDES", "Unoptimized OR", "Optimized OR",
                     "Reduction", "Optimized AND/OR", "Reduction",
                     "paper: unopt -> OR -> AND/OR"});
    for (size_t i = 0; i < machines::all().size(); ++i) {
        const auto *m = machines::all()[i];
        double unopt = runStage(*m, exp::Rep::OrTree, Stage::Original)
                           .stats.checks.avgChecksPerAttempt();
        double or_full = runStage(*m, exp::Rep::OrTree, Stage::Full)
                             .stats.checks.avgChecksPerAttempt();
        double andor_full =
            runStage(*m, exp::Rep::AndOrTree, Stage::Full)
                .stats.checks.avgChecksPerAttempt();
        table.addRow({
            m->name,
            TextTable::num(unopt, 2),
            TextTable::num(or_full, 2),
            reduction(unopt, or_full),
            TextTable::num(andor_full, 2),
            reduction(unopt, andor_full),
            TextTable::num(paper[i].unopt, 2) + " -> " +
                TextTable::num(paper[i].or_full, 2) + " -> " +
                TextTable::num(paper[i].andor_full, 2),
        });
    }
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nAs in the paper: the transformations alone cut OR-tree checks\n"
        "by up to a factor of ~2.6; combined with AND/OR-trees the\n"
        "reduction reaches a factor of ~10 for the machines with\n"
        "flexible execution constraints (SuperSPARC, K5) - the trend\n"
        "that matters as processors grow more powerful and flexible.\n");
    printFootnote();
    return 0;
}
