/**
 * @file
 * Baseline comparison (paper Section 10): finite-state-automaton
 * scheduling (Proebsting/Fraser, Mueller, Bala/Rubin) vs the fully
 * optimized AND/OR-tree reservation tables.
 *
 * The FSA reduces per-attempt work to a single table lookup, but its
 * state/transition tables grow with the machine's flexibility, and
 * automata cannot *unschedule* (no release transition) - the capability
 * iterative modulo scheduling needs. The paper argues the AND/OR-tree +
 * transformations combination "appears to mitigate these advantages";
 * this bench puts numbers on that claim.
 */

#include <cstdio>

#include "bench_util.h"
#include "fsa/automaton.h"
#include "sched/list_scheduler.h"
#include "workload/workload.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("baseline (Section 10)",
                "finite-state automata vs optimized AND/OR reservation "
                "tables");

    TextTable table;
    table.setHeader({"MDES", "AND/OR Checks/Attempt", "AND/OR Bytes",
                     "FSA Lookups/Attempt", "FSA States",
                     "FSA Bytes (after workload)", "FSA/AND-OR Size"});

    for (const auto *info : machines::all()) {
        exp::RunConfig config =
            exp::optimizedConfig(*info, exp::Rep::AndOrTree);
        config.prefilter = false; // paper accounting (see runStage)
        config.schedule = false;
        exp::RunResult built = exp::run(config);

        workload::WorkloadSpec spec = info->workload;
        spec.num_ops = 60000;
        sched::Program program = workload::generate(spec, built.low);

        sched::ListScheduler table_sched(built.low);
        sched::SchedStats table_stats;
        table_sched.scheduleProgram(program, table_stats);

        fsa::SchedulerAutomaton fsa(built.low);
        fsa::FsaListScheduler fsa_sched(built.low, fsa);
        sched::SchedStats fsa_stats;
        fsa_sched.scheduleProgram(program, fsa_stats);
        auto fstats = fsa.stats();

        size_t andor_bytes = built.memory.total();
        table.addRow({
            info->name,
            TextTable::num(table_stats.checks.avgChecksPerAttempt(), 2),
            std::to_string(andor_bytes),
            TextTable::num(double(fsa_stats.checks.resource_checks) /
                               double(fsa_stats.checks.attempts),
                           2),
            std::to_string(fstats.states),
            std::to_string(fstats.memory_bytes),
            TextTable::num(double(fstats.memory_bytes) /
                               double(andor_bytes),
                           1) + "x",
        });
    }
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nBoth schedulers produce bit-identical schedules. The FSA gets\n"
        "per-attempt work down to one lookup, but (a) the optimized\n"
        "AND/OR tables are already within a small factor of that, (b)\n"
        "the automaton's lazily-materialized state table dwarfs the\n"
        "reservation tables on flexible machines, and (c) there is no\n"
        "release transition - unscheduling, required by iterative modulo\n"
        "scheduling (see bench_ablation_modulo), has no FSA analogue.\n");
    printFootnote();
    return 0;
}
