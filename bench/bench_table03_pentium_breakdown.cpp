/**
 * @file
 * Reproduces Table 3: option breakdown and scheduling characteristics of
 * the Pentium MDES (bundled cmp+branch pairs count in the one-pipe
 * group).
 */

#include "bench_util.h"

int
main()
{
    using namespace mdes;
    using namespace mdes::bench;

    printHeader("Table 3",
                "option breakdown and scheduling characteristics for the "
                "Pentium MDES");
    printBreakdown(
        machines::pentium(),
        {
            {1, 45.42, "Ops that can execute in only 1 pipe"},
            {2, 54.58, "Ops that can execute in either pipe"},
        });
    std::printf("Paper: 1.47 attempts per operation on 207341 static "
                "operations (postpass).\n");
    printFootnote();
    return 0;
}
