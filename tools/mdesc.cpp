/**
 * @file
 * mdesc - the MDES translator command-line tool.
 *
 * The paper's two-tier model in executable form: compile a high-level
 * machine description into the optimized low-level representation the
 * compiler loads at start-up, or inspect either form.
 *
 * Usage:
 *   mdesc compile <file.hmdes> [-o <file.lmdes>] [--or-form]
 *                 [--no-optimize] [--no-bit-vector] [--backward]
 *                 [--store <dir>]
 *   mdesc info <file.hmdes | file.lmdes>
 *   mdesc dump <file.hmdes> [operation]
 *   mdesc export <machine-name>         (PA7100 | Pentium | SuperSPARC | K5)
 *
 * `compile` reports sizes before/after; `info` summarizes either tier;
 * `dump` prints reservation tables; `stats` walks the description
 * through every optimization stage reporting options/checks/bytes;
 * `export` writes a built-in description's source to stdout so it can
 * be edited and recompiled; `batch` reads N scheduling requests from a
 * .req file and answers them with M service worker threads through the
 * shared compiled-description cache (see src/service/), printing
 * per-request results plus service metrics as a table or JSON.
 *
 * The persistent store (src/store/) shows up twice: `--store <dir>`
 * turns `compile` and `batch` into users of the content-addressed disk
 * cache (a second run against the same directory compiles nothing),
 * and `mdesc store stat|prune|warm <dir>` administers one.
 *
 * `--trace <file.json>` on `compile` and `batch` records every
 * mdes::trace span the command produced (compile passes, cache/store
 * tiers, per-block scheduling) as a Chrome trace-event file - open it
 * in chrome://tracing or Perfetto.
 *
 * `--faults <spec>` on `compile` and `batch` arms the deterministic
 * fault-injection layer (src/support/faultsim.h) for the command's
 * lifetime, and `mdesc chaos` sweeps seeded fault schedules against a
 * live service asserting the robustness invariants in
 * src/service/chaos.h - the same gate CI runs.
 */

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/expand.h"
#include "core/lint.h"
#include "core/print.h"
#include "core/transforms.h"
#include "hmdes/compile.h"
#include "lmdes/low_mdes.h"
#include "machines/machines.h"
#include "exp/runner.h"
#include "net/chaos_socket.h"
#include "net/crash_chaos.h"
#include "net/client.h"
#include "net/server.h"
#include "exact/exact_scheduler.h"
#include "sched/backward_scheduler.h"
#include "sched/list_scheduler.h"
#include "sched/verify.h"
#include "service/chaos.h"
#include "service/request_parse.h"
#include "service/service.h"
#include "service/stats.h"
#include "store/store.h"
#include "support/faultsim.h"
#include "support/flightrec.h"
#include "support/json.h"
#include "support/text_table.h"
#include "support/trace.h"
#include "workload/sasm.h"

using namespace mdes;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  mdesc compile <file.hmdes> [-o <file.lmdes>] [--or-form]\n"
        "                [--no-optimize] [--no-bit-vector] [--backward]\n"
        "                [--store <dir>] [--trace <file.json>]\n"
        "                [--faults <spec>]\n"
        "  mdesc info <file.hmdes | file.lmdes>\n"
        "  mdesc dump <file.hmdes> [operation]\n"
        "  mdesc stats <file.hmdes>\n"
        "  mdesc lint <file.hmdes> [--deep]\n"
        "  mdesc schedule <machine-name | file.hmdes> <file.sasm>\n"
        "                [--mode list|backward|exact|portfolio]\n"
        "                [--exact-ms N]\n"
        "  mdesc batch <file.req | --stdin> [--workers N] [--json]\n"
        "              [--mode list|backward|modulo|exact|portfolio]\n"
        "              [--store <dir>] [--store-max-bytes N]\n"
        "              [--trace <file.json>] [--faults <spec>]\n"
        "              [--max-queue N]\n"
        "  mdesc chaos [--seeds N] [--first-seed N] [--workers N]\n"
        "              [--requests N] [--store-dir <dir>]\n"
        "              [--report <file.json>] [--socket]\n"
        "              [--flightrec <dir>] [--no-flightrec]\n"
        "  mdesc chaos --crash [--seeds N] [--first-seed N]\n"
        "              [--shards N] [--workers N] [--requests N]\n"
        "              [--kill-rounds N] [--store-dir <dir>]\n"
        "              [--report <file.json>] [--no-quarantine-probe]\n"
        "  mdesc serve [--listen <host:port>] [--workers N]\n"
        "              [--max-queue N] [--store <dir>] [--shards N]\n"
        "              [--json] [--flightrec <dir>] (spool off unless given)\n"
        "              [--flightrec-max-bytes N] [--flightrec-slow-ms N]\n"
        "              [--drain-ms N] [--backoff-base-ms N]\n"
        "              [--backoff-max-ms N] [--rapid-window-ms N]\n"
        "              [--quarantine-after N] [--heartbeat-ms N]\n"
        "              [--heartbeat-timeout-ms N]\n"
        "  mdesc flight decode <file.mdcr> [-o <file.json>]\n"
        "  mdesc stat --socket <host:port> [--json] [--json-mode]\n"
        "  mdesc top <host:port> [--interval-ms N] [--count N]\n"
        "  mdesc netbatch <host:port> <file.req | --stdin>\n"
        "              [--json-mode] [--deadline-ms N]\n"
        "              [--check-inprocess]\n"
        "  mdesc store stat <dir> [--json]\n"
        "  mdesc store prune <dir> --max-bytes <N>\n"
        "  mdesc store warm <dir> [machine...]\n"
        "  mdesc export <PA7100 | Pentium | SuperSPARC | K5>\n"
        "\n"
        "--faults spec: seed=N,<site>=<prob>[:<delay_us>[:<max_fires>]]\n"
        "(site names in src/support/faultsim.h; e.g.\n"
        " 'seed=7,store/open-read=0.5:0:2,compile/pass-throw=0.1')\n");
    return 2;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw MdesError("cannot open '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

bool
looksLikeLmdes(const std::string &data)
{
    return data.size() >= 4 && data.compare(0, 4, "LMDS") == 0;
}

/**
 * --trace support: enables span collection for the command's lifetime
 * and writes the Chrome trace-event JSON on scope exit, so every return
 * path (including the store-hit early exit) produces a trace file.
 */
class TraceFile
{
  public:
    explicit TraceFile(std::string path) : path_(std::move(path))
    {
        if (!path_.empty())
            trace::setEnabled(true);
    }

    ~TraceFile()
    {
        if (path_.empty())
            return;
        trace::setEnabled(false);
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "mdesc: cannot write trace file '%s'\n",
                         path_.c_str());
            return;
        }
        out << trace::Collector::instance().toChromeJson() << "\n";
        std::fprintf(stderr, "wrote trace %s (%zu spans)\n",
                     path_.c_str(),
                     trace::Collector::instance().spanCount());
    }

    TraceFile(const TraceFile &) = delete;
    TraceFile &operator=(const TraceFile &) = delete;

  private:
    std::string path_;
};

/**
 * --faults support: installs a deterministic fault plan for the
 * command's lifetime and reports what fired on exit, so a run can be
 * reproduced exactly from its seed and spec.
 */
class FaultScope
{
  public:
    explicit FaultScope(const std::string &spec)
    {
        if (spec.empty())
            return;
        armed_ = true;
        faultsim::install(faultsim::Plan::parse(spec));
    }

    ~FaultScope()
    {
        if (!armed_)
            return;
        uint64_t evaluations = 0, fires = 0;
        for (const auto &c : faultsim::counters()) {
            evaluations += c.evaluations;
            fires += c.fires;
        }
        faultsim::uninstall();
        std::fprintf(stderr,
                     "faultsim: %llu of %llu probes fired\n",
                     (unsigned long long)fires,
                     (unsigned long long)evaluations);
    }

    FaultScope(const FaultScope &) = delete;
    FaultScope &operator=(const FaultScope &) = delete;

  private:
    bool armed_ = false;
};

Mdes
compileFile(const std::string &path)
{
    std::string text = readFile(path);
    DiagnosticEngine diags;
    auto m = hmdes::compile(text, diags);
    // Surface warnings even on success.
    for (const auto &d : diags.diagnostics())
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     d.toString().c_str());
    if (!m)
        throw MdesError("compilation of '" + path + "' failed");
    return std::move(*m);
}

int
cmdCompile(const std::vector<std::string> &args)
{
    std::string input, output, store_dir, trace_path, faults_spec;
    bool or_form = false, optimize = true, bit_vector = true;
    SchedDirection direction = SchedDirection::Forward;
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "-o" && i + 1 < args.size()) {
            output = args[++i];
        } else if (args[i] == "--store" && i + 1 < args.size()) {
            store_dir = args[++i];
        } else if (args[i] == "--trace" && i + 1 < args.size()) {
            trace_path = args[++i];
        } else if (args[i] == "--faults" && i + 1 < args.size()) {
            faults_spec = args[++i];
        } else if (args[i] == "--or-form") {
            or_form = true;
        } else if (args[i] == "--no-optimize") {
            optimize = false;
        } else if (args[i] == "--no-bit-vector") {
            bit_vector = false;
        } else if (args[i] == "--backward") {
            direction = SchedDirection::Backward;
        } else if (!args[i].empty() && args[i][0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n",
                         args[i].c_str());
            return usage();
        } else if (input.empty()) {
            input = args[i];
        } else {
            return usage();
        }
    }
    if (input.empty())
        return usage();
    TraceFile trace_file(trace_path);
    FaultScope fault_scope(faults_spec);

    PipelineConfig config =
        optimize ? PipelineConfig::all() : PipelineConfig::none();
    config.direction = direction;
    exp::Rep rep = or_form ? exp::Rep::OrTree : exp::Rep::AndOrTree;

    auto writeOutput = [&](const lmdes::LowMdes &low) {
        if (output.empty())
            return;
        std::ofstream out(output, std::ios::binary);
        if (!out)
            throw MdesError("cannot write '" + output + "'");
        low.save(out);
        std::printf("wrote %s\n", output.c_str());
    };

    // With a store attached the translation is content-addressed: a
    // prior run (any process) with the same source and config already
    // paid the compile.
    std::unique_ptr<mdes::store::ArtifactStore> artifact_store;
    uint64_t key = 0;
    if (!store_dir.empty()) {
        std::string text = readFile(input);
        key = mdes::store::artifactKey(text, config, bit_vector, rep);
        mdes::store::StoreConfig sc;
        sc.dir = store_dir;
        sc.creator = "mdesc";
        artifact_store =
            std::make_unique<mdes::store::ArtifactStore>(sc);
        if (auto low = artifact_store->load(key)) {
            std::printf("%s: store hit %s/%s (no compilation)\n",
                        low->machineName().c_str(), store_dir.c_str(),
                        mdes::store::artifactFileName(key).c_str());
            std::printf("resource-constraint size: %zu bytes (%s "
                        "representation%s)\n",
                        low->memory().total(),
                        or_form ? "OR-tree" : "AND/OR-tree",
                        optimize ? ", fully optimized" : "");
            writeOutput(*low);
            return 0;
        }
    }

    Mdes m = compileFile(input);
    if (or_form)
        m = expandToOrForm(m);

    lmdes::LowerOptions lopts;
    lopts.pack_bit_vector = false;
    size_t before = lmdes::LowMdes::lower(m, lopts).memory().total();

    if (optimize)
        runPipeline(m, config);
    lopts.pack_bit_vector = bit_vector;
    lmdes::LowMdes low = lmdes::LowMdes::lower(m, lopts);

    std::printf("%s: %u resources, %zu operation classes, %zu tables\n",
                m.name().c_str(), m.numResources(),
                m.opClasses().size(), m.trees().size());
    std::printf("resource-constraint size: %zu bytes (was %zu, %s "
                "representation%s)\n",
                low.memory().total(), before,
                or_form ? "OR-tree" : "AND/OR-tree",
                optimize ? ", fully optimized" : "");

    if (artifact_store) {
        if (artifact_store->store(
                key, low,
                mdes::store::configFingerprint(config, bit_vector, rep)))
            std::printf("published %s/%s\n", store_dir.c_str(),
                        mdes::store::artifactFileName(key).c_str());
        else
            std::fprintf(stderr, "warning: could not publish to '%s'\n",
                         store_dir.c_str());
    }
    writeOutput(low);
    return 0;
}

int
cmdInfo(const std::vector<std::string> &args)
{
    if (args.size() != 1)
        return usage();
    std::string data = readFile(args[0]);
    if (looksLikeLmdes(data)) {
        std::istringstream in(data);
        lmdes::LowMdes low = lmdes::LowMdes::load(in);
        std::printf("low-level MDES '%s'\n", low.machineName().c_str());
        std::printf("  resources:        %u\n", low.numResources());
        std::printf("  operation classes:%zu\n", low.opClasses().size());
        std::printf("  AND/OR trees:     %zu\n", low.trees().size());
        std::printf("  OR-trees:         %zu\n", low.orTrees().size());
        std::printf("  options:          %zu\n", low.options().size());
        std::printf("  checks:           %zu (%s encoding)\n",
                    low.checks().size(),
                    low.packed() ? "bit-vector" : "scalar pair");
        std::printf("  constraint bytes: %zu\n", low.memory().total());
        return 0;
    }
    DiagnosticEngine diags;
    auto m = hmdes::compile(data, diags);
    std::fprintf(stderr, "%s", diags.toString().c_str());
    if (!m)
        return 1;
    std::printf("high-level MDES '%s'\n", m->name().c_str());
    std::printf("  resources:        %u", m->numResources());
    std::printf(" (");
    for (size_t i = 0; i < m->resourceClasses().size(); ++i) {
        const auto &rc = m->resourceClasses()[i];
        std::printf("%s%s", i ? ", " : "", rc.name.c_str());
        if (rc.count > 1)
            std::printf("[%u]", rc.count);
    }
    std::printf(")\n");
    std::printf("  operation classes:%zu\n", m->opClasses().size());
    std::printf("  tables:           %zu\n", m->trees().size());
    TextTable table;
    table.setHeader({"Operation", "Table", "Options", "Latency", "Note"});
    for (const auto &oc : m->opClasses()) {
        table.addRow({oc.name, m->tree(oc.tree).name,
                      std::to_string(m->expandedOptionCount(oc.tree)),
                      std::to_string(oc.latency), oc.comment});
    }
    std::printf("%s", table.toString().c_str());
    return 0;
}

int
cmdDump(const std::vector<std::string> &args)
{
    if (args.empty() || args.size() > 2)
        return usage();
    Mdes m = compileFile(args[0]);
    if (args.size() == 2) {
        OpClassId cls = m.findOpClass(args[1]);
        if (cls == kInvalidId) {
            std::fprintf(stderr, "no operation '%s' in '%s'\n",
                         args[1].c_str(), m.name().c_str());
            return 1;
        }
        std::printf("%s", printTree(m, m.opClass(cls).tree).c_str());
        return 0;
    }
    for (TreeId t = 0; t < m.trees().size(); ++t)
        std::printf("%s\n", printTree(m, t).c_str());
    return 0;
}

int
cmdStats(const std::vector<std::string> &args)
{
    if (args.size() != 1)
        return usage();
    struct StageSpec
    {
        const char *label;
        bool cse, bitvec, timeshift, hoist_sort;
    };
    const StageSpec stages[] = {
        {"original", false, false, false, false},
        {"+ redundancy elimination (Sec. 5)", true, false, false, false},
        {"+ bit-vector packing (Sec. 6)", true, true, false, false},
        {"+ usage-time shift & sort (Sec. 7)", true, true, true, false},
        {"+ hoist & subtree sort (Sec. 8)", true, true, true, true},
    };
    std::string text = readFile(args[0]);

    TextTable table;
    table.setHeader({"Stage", "Options", "Checks", "Bytes"});
    for (const auto &stage : stages) {
        DiagnosticEngine diags;
        auto m = hmdes::compile(text, diags);
        if (!m) {
            std::fprintf(stderr, "%s", diags.toString().c_str());
            return 1;
        }
        PipelineConfig config;
        config.cse = stage.cse;
        config.redundant_options = stage.cse;
        config.time_shift = stage.timeshift;
        config.sort_usages = stage.timeshift;
        config.hoist = stage.hoist_sort;
        config.sort_or_trees = stage.hoist_sort;
        runPipeline(*m, config);
        lmdes::LowerOptions lopts;
        lopts.pack_bit_vector = stage.bitvec;
        lmdes::LowMdes low = lmdes::LowMdes::lower(*m, lopts);
        table.addRow({stage.label,
                      std::to_string(low.options().size()),
                      std::to_string(low.checks().size()),
                      std::to_string(low.memory().total())});
    }
    std::printf("%s", table.toString().c_str());
    return 0;
}

int
cmdLint(const std::vector<std::string> &args)
{
    if (args.empty() || args.size() > 2)
        return usage();
    LintOptions options;
    std::string input;
    for (const auto &arg : args) {
        if (arg == "--deep")
            options.removable_usages = true;
        else if (!arg.empty() && arg[0] == '-')
            return usage();
        else
            input = arg;
    }
    if (input.empty())
        return usage();

    Mdes m = compileFile(input);
    auto findings = lint(m, options);
    if (findings.empty()) {
        std::printf("%s: clean (no findings)\n", m.name().c_str());
        return 0;
    }
    for (const auto &f : findings) {
        std::printf("[%s] %s\n", lintKindName(f.kind),
                    f.message.c_str());
    }
    std::printf("%zu finding(s). The translator's transformations fix "
                "all of these at\ncompile time; fixing the source keeps "
                "the description honest.\n",
                findings.size());
    return 0;
}

int
cmdSchedule(const std::vector<std::string> &args)
{
    std::vector<std::string> pos;
    std::string mode = "list";
    int64_t exact_ms = 50;
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--mode" && i + 1 < args.size()) {
            mode = args[++i];
        } else if (args[i] == "--exact-ms" && i + 1 < args.size()) {
            const std::string &w = args[++i];
            auto [end, ec] =
                std::from_chars(w.data(), w.data() + w.size(), exact_ms);
            if (ec != std::errc() || end != w.data() + w.size()) {
                std::fprintf(stderr, "mdesc: bad --exact-ms value '%s'\n",
                             w.c_str());
                return 1;
            }
        } else if (!args[i].empty() && args[i][0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n",
                         args[i].c_str());
            return usage();
        } else {
            pos.push_back(args[i]);
        }
    }
    if (pos.size() != 2)
        return usage();
    if (mode != "list" && mode != "backward" && mode != "exact" &&
        mode != "portfolio") {
        std::fprintf(stderr, "mdesc: unknown schedule mode '%s'\n",
                     mode.c_str());
        return usage();
    }
    // The machine: a built-in name or a .hmdes file.
    Mdes model = [&] {
        const machines::MachineInfo *builtin = machines::byName(pos[0]);
        if (builtin)
            return hmdes::compileOrThrow(builtin->source);
        return compileFile(pos[0]);
    }();
    runPipeline(model, PipelineConfig::all());
    lmdes::LowerOptions lopts;
    lopts.pack_bit_vector = true;
    lmdes::LowMdes low = lmdes::LowMdes::lower(model, lopts);

    std::string text = readFile(pos[1]);
    DiagnosticEngine diags;
    sched::Program program = workload::parseSasm(text, low, diags);
    for (const auto &d : diags.diagnostics())
        std::fprintf(stderr, "%s: %s\n", pos[1].c_str(),
                     d.toString().c_str());
    if (diags.hasErrors())
        return 1;

    sched::SchedStats stats;
    std::vector<sched::BlockSchedule> schedules;
    // Per-block annotation for the exact/portfolio modes.
    std::vector<std::string> notes(program.blocks.size());
    if (mode == "backward") {
        sched::BackwardListScheduler scheduler(low);
        schedules = scheduler.scheduleProgram(program, stats);
    } else {
        sched::ListScheduler scheduler(low);
        schedules = scheduler.scheduleProgram(program, stats);
    }
    if (mode == "exact" || mode == "portfolio") {
        exact::ExactScheduler search(low);
        sched::BackwardListScheduler backward(low);
        for (size_t b = 0; b < program.blocks.size(); ++b) {
            const auto &block = program.blocks[b];
            const char *winner = "list";
            sched::BlockSchedule best = schedules[b];
            if (mode == "portfolio") {
                sched::BlockSchedule back =
                    backward.scheduleBlock(block, stats);
                if (back.length < best.length) {
                    best = std::move(back);
                    winner = "backward";
                }
            }
            exact::ExactOptions eopts;
            eopts.time_budget_us = exact_ms > 0 ? exact_ms * 1000 : 0;
            eopts.incumbent = &schedules[b];
            exact::ExactResult er =
                search.scheduleBlock(block, stats, eopts);
            if (er.schedule.length < best.length) {
                best = er.schedule;
                winner = "exact";
            }
            char note[160];
            int32_t lb = std::min(er.lower_bound, best.length);
            std::snprintf(note, sizeof note,
                          "  winner=%s lower_bound=%d gap=%d %s"
                          " (nodes %llu)",
                          winner, lb, best.length - lb,
                          best.length <= er.lower_bound
                              ? "proven-optimal"
                              : er.budget_exhausted ? "budget-exhausted"
                                                    : "unproven",
                          (unsigned long long)er.nodes);
            notes[b] = note;
            schedules[b] = std::move(best);
        }
    }

    for (size_t b = 0; b < program.blocks.size(); ++b) {
        sched::VerifyResult v = sched::verifyScheduleEx(
            program.blocks[b], schedules[b], low);
        if (!v.ok()) {
            std::fprintf(stderr, "block %zu: %s: %s\n", b,
                         sched::verifyFaultName(v.fault),
                         v.message.c_str());
            return 1;
        }
        std::printf("block %zu (%d cycles):\n", b,
                    schedules[b].length);
        for (int32_t cycle = 0; cycle < schedules[b].length; ++cycle) {
            std::printf("  %3d |", cycle);
            for (size_t i = 0; i < program.blocks[b].instrs.size();
                 ++i) {
                if (schedules[b].cycles[i] != cycle)
                    continue;
                std::printf(
                    " %s%s",
                    low.opClasses()[program.blocks[b].instrs[i].op_class]
                        .name.c_str(),
                    schedules[b].used_cascade[i] ? "(cascaded)" : "");
            }
            std::printf("\n");
        }
        if (!notes[b].empty())
            std::printf("%s\n", notes[b].c_str());
    }
    std::printf("\n%llu operations, %llu scheduling attempts (%.2f per "
                "op), %.2f checks per attempt.\n",
                (unsigned long long)stats.ops_scheduled,
                (unsigned long long)stats.checks.attempts,
                stats.avgAttemptsPerOp(),
                stats.checks.avgChecksPerAttempt());
    return 0;
}

int
cmdBatch(const std::vector<std::string> &args)
{
    std::string input, store_dir, trace_path, faults_spec, mode;
    unsigned workers = 0;
    uint64_t store_max_bytes = 0;
    size_t max_queue = 0;
    bool json = false;
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--trace" && i + 1 < args.size()) {
            trace_path = args[++i];
        } else if (args[i] == "--mode" && i + 1 < args.size()) {
            mode = args[++i];
        } else if (args[i] == "--faults" && i + 1 < args.size()) {
            faults_spec = args[++i];
        } else if (args[i] == "--workers" && i + 1 < args.size()) {
            const std::string &w = args[++i];
            auto [end, ec] =
                std::from_chars(w.data(), w.data() + w.size(), workers);
            if (ec != std::errc() || end != w.data() + w.size()) {
                std::fprintf(stderr, "mdesc: bad --workers value '%s'\n",
                             w.c_str());
                return 1;
            }
        } else if (args[i] == "--max-queue" && i + 1 < args.size()) {
            const std::string &w = args[++i];
            auto [end, ec] =
                std::from_chars(w.data(), w.data() + w.size(), max_queue);
            if (ec != std::errc() || end != w.data() + w.size()) {
                std::fprintf(stderr,
                             "mdesc: bad --max-queue value '%s'\n",
                             w.c_str());
                return 1;
            }
        } else if (args[i] == "--store" && i + 1 < args.size()) {
            store_dir = args[++i];
        } else if (args[i] == "--store-max-bytes" && i + 1 < args.size()) {
            const std::string &w = args[++i];
            auto [end, ec] = std::from_chars(
                w.data(), w.data() + w.size(), store_max_bytes);
            if (ec != std::errc() || end != w.data() + w.size()) {
                std::fprintf(stderr,
                             "mdesc: bad --store-max-bytes value '%s'\n",
                             w.c_str());
                return 1;
            }
        } else if (args[i] == "--json") {
            json = true;
        } else if (args[i] == "--stdin" || args[i] == "-") {
            input = "-";
        } else if (!args[i].empty() && args[i][0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n",
                         args[i].c_str());
            return usage();
        } else if (input.empty()) {
            input = args[i];
        } else {
            return usage();
        }
    }
    if (input.empty())
        return usage();
    TraceFile trace_file(trace_path);
    FaultScope fault_scope(faults_spec);

    // Read N requests (from stdin with --stdin/-, same grammar).
    std::string text;
    if (input == "-") {
        std::ostringstream buf;
        buf << std::cin.rdbuf();
        text = buf.str();
    } else {
        text = readFile(input);
    }
    std::vector<service::ScheduleRequest> requests =
        service::parseRequestText(text).requests;
    if (requests.empty()) {
        std::fprintf(stderr, "%s: no requests\n",
                     input == "-" ? "<stdin>" : input.c_str());
        return 1;
    }
    if (!mode.empty()) {
        // Override every request's scheduler from the command line.
        service::SchedulerKind kind;
        if (mode == "list")
            kind = service::SchedulerKind::List;
        else if (mode == "backward")
            kind = service::SchedulerKind::Backward;
        else if (mode == "modulo")
            kind = service::SchedulerKind::Modulo;
        else if (mode == "exact")
            kind = service::SchedulerKind::Exact;
        else if (mode == "portfolio")
            kind = service::SchedulerKind::Portfolio;
        else {
            std::fprintf(stderr, "mdesc: unknown batch mode '%s'\n",
                         mode.c_str());
            return usage();
        }
        for (auto &req : requests)
            req.scheduler = kind;
    }

    // ...answer with M threads.
    service::ServiceConfig config;
    config.num_workers = workers;
    config.store_dir = store_dir;
    config.store_max_bytes = store_max_bytes;
    config.max_queue = max_queue;
    service::MdesService svc(config);
    std::vector<service::ScheduleResponse> responses =
        svc.runBatch(std::move(requests));

    int failures = 0;
    std::map<service::ErrorCode, int> by_code;
    for (size_t i = 0; i < responses.size(); ++i) {
        const auto &r = responses[i];
        const char *name =
            r.machine.empty() ? "<inline>" : r.machine.c_str();
        if (r.ok()) {
            std::printf("[%zu] %s: ok%s, %llu ops in %llu cycles "
                        "(%zu blocks%s, cache %s)\n",
                        i, name, r.degraded ? " (degraded)" : "",
                        (unsigned long long)r.stats.ops_scheduled,
                        (unsigned long long)r.total_cycles,
                        r.schedules.size() + r.modulo.size(),
                        r.modulo.empty() ? "" : ", modulo",
                        r.cache_hit    ? "hit"
                        : r.disk_hit   ? "store hit"
                                       : "miss");
        } else {
            ++failures;
            ++by_code[r.error.code];
            std::printf("[%zu] %s: %s: %s\n", i, name,
                        service::errorCodeName(r.error.code),
                        r.error.message.c_str());
        }
    }
    if (failures) {
        std::printf("%d of %zu request(s) failed:", failures,
                    responses.size());
        for (const auto &[code, count] : by_code)
            std::printf(" %s=%d", service::errorCodeName(code), count);
        std::printf("\n");
    }

    service::ServiceMetrics metrics = svc.metricsSnapshot();
    if (json)
        std::printf("%s\n", metrics.toJson().c_str());
    else
        std::printf("\n%s", metrics.toTable().c_str());
    return failures == 0 ? 0 : 1;
}

/**
 * `mdesc chaos`: the robustness gate. Sweeps seeded fault schedules
 * against a live service (see src/service/chaos.h for the invariants)
 * and exits non-zero on any violation; --report dumps the JSON verdict
 * CI uploads when a seed fails.
 */
/**
 * `mdesc chaos --crash`: the supervision-plane gate (DESIGN.md §15).
 * Seeded process-level faults - SIGKILL, SIGSEGV, SIGSTOP - against a
 * live sharded fleet, asserting restart/backoff/watchdog/drain/crash-
 * capture invariants (src/net/crash_chaos.h). Exits non-zero on any
 * violation; --report dumps the JSON verdict CI uploads on failure.
 */
int
cmdCrashChaos(const std::vector<std::string> &args)
{
    net::CrashChaosConfig config;
    std::string report_path;
    auto number = [](const std::string &flag, const std::string &w,
                     auto &out) {
        auto [end, ec] =
            std::from_chars(w.data(), w.data() + w.size(), out);
        if (ec != std::errc() || end != w.data() + w.size()) {
            std::fprintf(stderr, "mdesc: bad %s value '%s'\n",
                         flag.c_str(), w.c_str());
            return false;
        }
        return true;
    };
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--seeds" && i + 1 < args.size()) {
            if (!number(args[i], args[i + 1], config.num_seeds))
                return 1;
            ++i;
        } else if (args[i] == "--first-seed" && i + 1 < args.size()) {
            if (!number(args[i], args[i + 1], config.first_seed))
                return 1;
            ++i;
        } else if (args[i] == "--shards" && i + 1 < args.size()) {
            if (!number(args[i], args[i + 1], config.shards))
                return 1;
            ++i;
        } else if (args[i] == "--workers" && i + 1 < args.size()) {
            if (!number(args[i], args[i + 1], config.workers))
                return 1;
            ++i;
        } else if (args[i] == "--requests" && i + 1 < args.size()) {
            if (!number(args[i], args[i + 1], config.requests))
                return 1;
            ++i;
        } else if (args[i] == "--kill-rounds" && i + 1 < args.size()) {
            if (!number(args[i], args[i + 1], config.kill_rounds))
                return 1;
            ++i;
        } else if (args[i] == "--store-dir" && i + 1 < args.size()) {
            config.store_base_dir = args[++i];
        } else if (args[i] == "--report" && i + 1 < args.size()) {
            report_path = args[++i];
        } else if (args[i] == "--no-quarantine-probe") {
            config.quarantine_probe = false;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         args[i].c_str());
            return usage();
        }
    }
    if (config.store_base_dir.empty()) {
        config.store_base_dir =
            (std::filesystem::temp_directory_path() /
             "mdesc-crash-chaos")
                .string();
    }
    net::CrashSweepReport report = net::runCrashSweep(config);
    std::printf("%s", report.toText().c_str());
    if (!report_path.empty()) {
        std::ofstream out(report_path,
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "mdesc: cannot write report '%s'\n",
                         report_path.c_str());
            return 1;
        }
        out << report.toJson() << "\n";
        std::printf("wrote %s\n", report_path.c_str());
    }
    return report.ok() ? 0 : 1;
}

int
cmdChaos(const std::vector<std::string> &args)
{
    // --crash anywhere in the arguments selects the process-level
    // sweep; the remaining flags are its own.
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--crash") {
            std::vector<std::string> rest = args;
            rest.erase(rest.begin() + long(i));
            return cmdCrashChaos(rest);
        }
    }
    service::chaos::ChaosConfig config;
    std::string report_path;
    std::string flightrec_dir = "flightrec";
    auto number = [](const std::string &flag, const std::string &w,
                     auto &out) {
        auto [end, ec] =
            std::from_chars(w.data(), w.data() + w.size(), out);
        if (ec != std::errc() || end != w.data() + w.size()) {
            std::fprintf(stderr, "mdesc: bad %s value '%s'\n",
                         flag.c_str(), w.c_str());
            return false;
        }
        return true;
    };
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--seeds" && i + 1 < args.size()) {
            if (!number(args[i], args[i + 1], config.num_seeds))
                return 1;
            ++i;
        } else if (args[i] == "--first-seed" && i + 1 < args.size()) {
            if (!number(args[i], args[i + 1], config.first_seed))
                return 1;
            ++i;
        } else if (args[i] == "--workers" && i + 1 < args.size()) {
            if (!number(args[i], args[i + 1], config.workers))
                return 1;
            ++i;
        } else if (args[i] == "--requests" && i + 1 < args.size()) {
            if (!number(args[i], args[i + 1], config.requests))
                return 1;
            ++i;
        } else if (args[i] == "--store-dir" && i + 1 < args.size()) {
            config.store_base_dir = args[++i];
        } else if (args[i] == "--report" && i + 1 < args.size()) {
            report_path = args[++i];
        } else if (args[i] == "--socket") {
            config.driver = net::chaosSocketDriver();
            config.driver_name = "socket";
        } else if (args[i] == "--flightrec" && i + 1 < args.size()) {
            flightrec_dir = args[++i];
        } else if (args[i] == "--no-flightrec") {
            flightrec_dir.clear();
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         args[i].c_str());
            return usage();
        }
    }
    // Tail capture for the sweep: a failing seed leaves its offending
    // requests' traces in the spool, which CI uploads as an artifact.
    if (!flightrec_dir.empty()) {
        flightrec::SpoolConfig frcfg;
        frcfg.dir = flightrec_dir;
        flightrec::armSpool(frcfg);
    }
    if (config.store_base_dir.empty()) {
        config.store_base_dir =
            (std::filesystem::temp_directory_path() /
             "mdesc-chaos-stores")
                .string();
    }

    service::chaos::SweepReport report =
        service::chaos::runSweep(config);
    std::printf("%s", report.toText().c_str());
    if (!report_path.empty()) {
        std::ofstream out(report_path,
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr,
                         "mdesc: cannot write report '%s'\n",
                         report_path.c_str());
            return 1;
        }
        out << report.toJson() << "\n";
        std::printf("wrote %s\n", report_path.c_str());
    }
    return report.ok() ? 0 : 1;
}


/**
 * `mdesc serve`: the socket serving tier. Listens until SIGINT/SIGTERM
 * and answers requests over the mdes::net protocol (binary frames or
 * JSON lines, auto-detected per connection); --shards forks N workers
 * sharing one on-disk store behind a routing acceptor.
 */
int
cmdServe(const std::vector<std::string> &args)
{
    net::ServeOptions opts;
    opts.server.port = 7433; // default mdesc port
    auto number = [](const std::string &flag, const std::string &w,
                     auto &out) {
        auto [end, ec] =
            std::from_chars(w.data(), w.data() + w.size(), out);
        if (ec != std::errc() || end != w.data() + w.size()) {
            std::fprintf(stderr, "mdesc: bad %s value '%s'\n",
                         flag.c_str(), w.c_str());
            return false;
        }
        return true;
    };
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--listen" && i + 1 < args.size()) {
            std::string ep = args[++i];
            size_t colon = ep.rfind(':');
            if (colon == std::string::npos) {
                std::fprintf(stderr,
                             "mdesc: --listen wants host:port, got "
                             "'%s'\n",
                             ep.c_str());
                return 1;
            }
            opts.server.host = ep.substr(0, colon);
            if (!number("--listen", ep.substr(colon + 1),
                        opts.server.port))
                return 1;
        } else if (args[i] == "--workers" && i + 1 < args.size()) {
            if (!number(args[i], args[i + 1],
                        opts.server.service.num_workers))
                return 1;
            ++i;
        } else if (args[i] == "--max-queue" && i + 1 < args.size()) {
            if (!number(args[i], args[i + 1],
                        opts.server.service.max_queue))
                return 1;
            ++i;
        } else if (args[i] == "--store" && i + 1 < args.size()) {
            opts.server.service.store_dir = args[++i];
        } else if (args[i] == "--store-max-bytes" &&
                   i + 1 < args.size()) {
            if (!number(args[i], args[i + 1],
                        opts.server.service.store_max_bytes))
                return 1;
            ++i;
        } else if (args[i] == "--shards" && i + 1 < args.size()) {
            if (!number(args[i], args[i + 1], opts.shards))
                return 1;
            ++i;
        } else if (args[i] == "--max-inflight" && i + 1 < args.size()) {
            if (!number(args[i], args[i + 1],
                        opts.server.max_inflight_per_conn))
                return 1;
            ++i;
        } else if (args[i] == "--json") {
            opts.json_metrics = true;
        } else if (args[i] == "--flightrec" && i + 1 < args.size()) {
            opts.flightrec_dir = args[++i];
        } else if (args[i] == "--no-flightrec") {
            opts.flightrec_dir.clear();
        } else if (args[i] == "--flightrec-max-bytes" &&
                   i + 1 < args.size()) {
            if (!number(args[i], args[i + 1], opts.flightrec_max_bytes))
                return 1;
            ++i;
        } else if (args[i] == "--flightrec-slow-ms" &&
                   i + 1 < args.size()) {
            if (!number(args[i], args[i + 1], opts.flightrec_slow_ms))
                return 1;
            ++i;
        } else if (args[i] == "--drain-ms" && i + 1 < args.size()) {
            if (!number(args[i], args[i + 1], opts.drain_deadline_ms))
                return 1;
            ++i;
        } else if (args[i] == "--backoff-base-ms" &&
                   i + 1 < args.size()) {
            if (!number(args[i], args[i + 1],
                        opts.restart_backoff_base_ms))
                return 1;
            ++i;
        } else if (args[i] == "--backoff-max-ms" &&
                   i + 1 < args.size()) {
            if (!number(args[i], args[i + 1],
                        opts.restart_backoff_max_ms))
                return 1;
            ++i;
        } else if (args[i] == "--rapid-window-ms" &&
                   i + 1 < args.size()) {
            if (!number(args[i], args[i + 1],
                        opts.rapid_crash_window_ms))
                return 1;
            ++i;
        } else if (args[i] == "--quarantine-after" &&
                   i + 1 < args.size()) {
            if (!number(args[i], args[i + 1], opts.quarantine_after))
                return 1;
            ++i;
        } else if (args[i] == "--heartbeat-ms" && i + 1 < args.size()) {
            if (!number(args[i], args[i + 1],
                        opts.heartbeat_interval_ms))
                return 1;
            ++i;
        } else if (args[i] == "--heartbeat-timeout-ms" &&
                   i + 1 < args.size()) {
            if (!number(args[i], args[i + 1],
                        opts.heartbeat_timeout_ms))
                return 1;
            ++i;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         args[i].c_str());
            return usage();
        }
    }
    return net::runServe(opts);
}

/**
 * `mdesc netbatch`: the client side of `serve` - push a .req file
 * through a running server and (with --check-inprocess) assert each
 * response's schedule fingerprint is bit-identical to an in-process
 * run of the same requests, the CI smoke gate for the socket path.
 */
int
cmdNetbatch(const std::vector<std::string> &args)
{
    std::string endpoint, input;
    bool json_mode = false, check_inprocess = false;
    uint32_t deadline_ms = 0;
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--json-mode") {
            json_mode = true;
        } else if (args[i] == "--check-inprocess") {
            check_inprocess = true;
        } else if (args[i] == "--deadline-ms" && i + 1 < args.size()) {
            const std::string &w = args[++i];
            auto [end, ec] = std::from_chars(
                w.data(), w.data() + w.size(), deadline_ms);
            if (ec != std::errc() || end != w.data() + w.size()) {
                std::fprintf(stderr,
                             "mdesc: bad --deadline-ms value '%s'\n",
                             w.c_str());
                return 1;
            }
        } else if (args[i] == "--stdin" || args[i] == "-") {
            input = "-";
        } else if (!args[i].empty() && args[i][0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n",
                         args[i].c_str());
            return usage();
        } else if (endpoint.empty()) {
            endpoint = args[i];
        } else if (input.empty()) {
            input = args[i];
        } else {
            return usage();
        }
    }
    if (endpoint.empty() || input.empty())
        return usage();
    size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos) {
        std::fprintf(stderr, "mdesc: endpoint wants host:port, got '%s'\n",
                     endpoint.c_str());
        return 1;
    }
    std::string host = endpoint.substr(0, colon);
    uint16_t port = 0;
    {
        std::string w = endpoint.substr(colon + 1);
        auto [end, ec] =
            std::from_chars(w.data(), w.data() + w.size(), port);
        if (ec != std::errc() || end != w.data() + w.size()) {
            std::fprintf(stderr, "mdesc: bad port '%s'\n", w.c_str());
            return 1;
        }
    }

    std::string text;
    if (input == "-") {
        std::ostringstream buf;
        buf << std::cin.rdbuf();
        text = buf.str();
    } else {
        text = readFile(input);
    }
    // Network payloads are inline-only: reject file-reading keys here,
    // with the same typed error the server would produce.
    service::RequestParseOptions popts;
    popts.allow_files = false;
    service::ParsedRequests parsed =
        service::parseRequestText(text, popts);
    if (parsed.requests.empty()) {
        std::fprintf(stderr, "%s: no requests\n",
                     input == "-" ? "<stdin>" : input.c_str());
        return 1;
    }

    net::BlockingClient client(host, port, json_mode);
    if (!client.connected()) {
        std::fprintf(stderr, "mdesc: cannot connect to %s\n",
                     endpoint.c_str());
        return 1;
    }
    int failures = 0;
    std::vector<net::NetResponse> responses;
    for (size_t i = 0; i < parsed.requests.size(); ++i) {
        uint64_t route = net::routeKey(parsed.requests[i]);
        net::NetResponse r =
            client.request(parsed.lines[i], deadline_ms, route);
        responses.push_back(r);
        if (!r.transport_ok) {
            ++failures;
            std::printf("[%zu] transport failure\n", i);
            continue;
        }
        if (r.code == service::ErrorCode::Ok) {
            std::printf("[%zu] %s: ok%s, %llu cycles (%llu blocks, "
                        "fingerprint %llu, cache %s)\n",
                        i, r.machine.c_str(),
                        r.degraded ? " (degraded)" : "",
                        (unsigned long long)r.total_cycles,
                        (unsigned long long)r.blocks,
                        (unsigned long long)r.fingerprint,
                        r.cache_hit    ? "hit"
                        : r.disk_hit   ? "store hit"
                                       : "miss");
        } else {
            ++failures;
            std::printf("[%zu] %s: %s\n", i, r.error.c_str(),
                        r.message.c_str());
        }
    }

    if (check_inprocess) {
        service::ServiceConfig cfg;
        service::MdesService svc(cfg);
        std::vector<service::ScheduleResponse> local =
            svc.runBatch(parsed.requests);
        int mismatches = 0;
        for (size_t i = 0; i < local.size(); ++i) {
            uint64_t want = local[i].ok()
                                ? service::scheduleFingerprint(local[i])
                                : 0;
            uint64_t got = responses[i].transport_ok &&
                                   responses[i].code ==
                                       service::ErrorCode::Ok
                               ? responses[i].fingerprint
                               : 0;
            if (want != got) {
                ++mismatches;
                std::printf("[%zu] FINGERPRINT MISMATCH: socket %llu "
                            "vs in-process %llu\n",
                            i, (unsigned long long)got,
                            (unsigned long long)want);
            }
        }
        if (mismatches) {
            std::printf("%d fingerprint mismatch(es)\n", mismatches);
            return 1;
        }
        std::printf("fingerprints bit-identical to in-process run "
                    "(%zu requests)\n",
                    local.size());
    }
    return failures == 0 ? 0 : 1;
}

/** Split "host:port"; false (with a message) on malformed input. */
bool
parseEndpoint(const std::string &ep, std::string *host, uint16_t *port)
{
    size_t colon = ep.rfind(':');
    if (colon == std::string::npos) {
        std::fprintf(stderr, "mdesc: endpoint wants host:port, got '%s'\n",
                     ep.c_str());
        return false;
    }
    *host = ep.substr(0, colon);
    std::string w = ep.substr(colon + 1);
    auto [end, ec] = std::from_chars(w.data(), w.data() + w.size(), *port);
    if (ec != std::errc() || end != w.data() + w.size()) {
        std::fprintf(stderr, "mdesc: bad port '%s'\n", w.c_str());
        return false;
    }
    return true;
}

/** One stats poll over a fresh connection (the shard parent closes a
 * STAT connection after answering, so per-poll connects work against
 * every serve mode). Empty string on failure. */
std::string
fetchStats(const std::string &host, uint16_t port, bool json_mode)
{
    net::BlockingClient client(host, port, json_mode);
    if (!client.connected())
        return "";
    return client.stats();
}

/**
 * `mdesc stat`: one-shot live stats poll - the merged fleet view when
 * the endpoint is a sharded server. --json prints the raw protocol
 * document; the default renders the dashboard tables once.
 */
int
cmdStatLive(const std::vector<std::string> &args)
{
    std::string endpoint;
    bool json = false, json_mode = false;
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--socket" && i + 1 < args.size()) {
            endpoint = args[++i];
        } else if (args[i] == "--json") {
            json = true;
        } else if (args[i] == "--json-mode") {
            json_mode = true;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         args[i].c_str());
            return usage();
        }
    }
    if (endpoint.empty())
        return usage();
    std::string host;
    uint16_t port = 0;
    if (!parseEndpoint(endpoint, &host, &port))
        return 1;
    std::string doc = fetchStats(host, port, json_mode);
    if (doc.empty()) {
        std::fprintf(stderr, "mdesc: cannot fetch stats from %s\n",
                     endpoint.c_str());
        return 1;
    }
    if (json) {
        std::printf("%s\n", doc.c_str());
        return 0;
    }
    std::printf("%s", service::renderStats(service::parseStats(doc))
                          .c_str());
    return 0;
}

/**
 * `mdesc top`: the refreshing dashboard - poll the stats document every
 * --interval-ms and redraw. --count N stops after N refreshes (0 =
 * until interrupted); handy for scripts and the CI smoke.
 */
int
cmdTop(const std::vector<std::string> &args)
{
    std::string endpoint;
    uint64_t interval_ms = 1000, count = 0;
    auto number = [](const std::string &flag, const std::string &w,
                     auto &out) {
        auto [end, ec] =
            std::from_chars(w.data(), w.data() + w.size(), out);
        if (ec != std::errc() || end != w.data() + w.size()) {
            std::fprintf(stderr, "mdesc: bad %s value '%s'\n",
                         flag.c_str(), w.c_str());
            return false;
        }
        return true;
    };
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--interval-ms" && i + 1 < args.size()) {
            if (!number(args[i], args[i + 1], interval_ms))
                return 1;
            ++i;
        } else if (args[i] == "--count" && i + 1 < args.size()) {
            if (!number(args[i], args[i + 1], count))
                return 1;
            ++i;
        } else if (args[i] == "--socket" && i + 1 < args.size()) {
            endpoint = args[++i];
        } else if (!args[i].empty() && args[i][0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n",
                         args[i].c_str());
            return usage();
        } else if (endpoint.empty()) {
            endpoint = args[i];
        } else {
            return usage();
        }
    }
    if (endpoint.empty())
        return usage();
    std::string host;
    uint16_t port = 0;
    if (!parseEndpoint(endpoint, &host, &port))
        return 1;
    int misses = 0;
    for (uint64_t iter = 0; count == 0 || iter < count; ++iter) {
        std::string doc = fetchStats(host, port, /*json_mode=*/false);
        if (doc.empty()) {
            // Tolerate a couple of missed polls (server restarting);
            // give up when it stays unreachable.
            if (++misses >= 3) {
                std::fprintf(stderr,
                             "mdesc: cannot fetch stats from %s\n",
                             endpoint.c_str());
                return 1;
            }
        } else {
            misses = 0;
            // Home + clear-to-end redraw (no full-screen buffer dance,
            // so the last frame stays in the scrollback on exit).
            std::printf("\x1b[H\x1b[J%s",
                        service::renderStats(service::parseStats(doc))
                            .c_str());
            std::fflush(stdout);
        }
        if (count != 0 && iter + 1 >= count)
            break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
    }
    std::printf("\n");
    return 0;
}

std::string
formatUnixTime(int64_t t)
{
    if (t == 0)
        return "-";
    std::time_t tt = std::time_t(t);
    std::tm tm_buf;
    if (!gmtime_r(&tt, &tm_buf))
        return std::to_string(t);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%d %H:%M:%S", &tm_buf);
    return buf;
}

int
cmdStoreStat(const std::string &dir, bool json)
{
    mdes::store::ArtifactStore st(mdes::store::StoreConfig{.dir = dir, .creator = {}, .retry = {}});
    auto infos = st.list();
    std::sort(infos.begin(), infos.end(),
              [](const auto &a, const auto &b) { return a.key < b.key; });

    if (json) {
        uint64_t total_bytes = 0, quarantined = 0, stale = 0;
        JsonWriter w;
        w.beginObject();
        w.key("dir").value(dir);
        w.key("artifacts").beginArray();
        for (const auto &info : infos) {
            total_bytes += info.bytes;
            quarantined += info.quarantined;
            stale += info.stale;
            w.beginObject();
            w.key("key").value(
                mdes::store::artifactFileName(info.key).substr(0, 16));
            w.key("machine").value(info.machine);
            w.key("bytes").value(info.bytes);
            w.key("created_unix").value(info.created_unix);
            w.key("last_access_unix").value(info.last_access_unix);
            w.key("creator").value(info.creator);
            w.key("quarantined").value(bool(info.quarantined));
            w.key("stale").value(bool(info.stale));
            w.endObject();
        }
        w.endArray();
        w.key("count").value(uint64_t(infos.size()));
        w.key("total_bytes").value(total_bytes);
        w.key("quarantined").value(quarantined);
        w.key("stale").value(stale);
        w.key("residue_swept").value(st.stats().residue_swept);
        w.endObject();
        std::printf("%s\n", w.str().c_str());
        return 0;
    }

    TextTable table;
    table.setHeader({"Key", "Machine", "Bytes", "Created", "Last access",
                     "Creator", "State"});
    uint64_t total_bytes = 0, quarantined = 0, stale = 0;
    for (const auto &info : infos) {
        total_bytes += info.bytes;
        quarantined += info.quarantined;
        stale += info.stale;
        table.addRow({mdes::store::artifactFileName(info.key)
                          .substr(0, 16),
                      info.machine.empty() ? "?" : info.machine,
                      std::to_string(info.bytes),
                      formatUnixTime(int64_t(info.created_unix)),
                      formatUnixTime(info.last_access_unix),
                      info.creator.empty() ? "?" : info.creator,
                      info.quarantined ? "QUARANTINED"
                                       : (info.stale ? "STALE" : "ok")});
    }
    std::printf("%s", table.toString().c_str());
    std::printf("%zu artifact(s), %llu bytes", infos.size(),
                (unsigned long long)total_bytes);
    if (quarantined)
        std::printf(" (%llu quarantined)",
                    (unsigned long long)quarantined);
    if (stale)
        std::printf(" (%llu stale, evicted on next load)",
                    (unsigned long long)stale);
    if (uint64_t swept = st.stats().residue_swept)
        std::printf(", swept %llu orphaned temp file(s)",
                    (unsigned long long)swept);
    std::printf("\n");
    return 0;
}

int
cmdStorePrune(const std::string &dir,
              const std::vector<std::string> &args)
{
    uint64_t max_bytes = 0;
    bool have_budget = false;
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--max-bytes" && i + 1 < args.size()) {
            const std::string &w = args[++i];
            auto [end, ec] =
                std::from_chars(w.data(), w.data() + w.size(), max_bytes);
            if (ec != std::errc() || end != w.data() + w.size()) {
                std::fprintf(stderr,
                             "mdesc: bad --max-bytes value '%s'\n",
                             w.c_str());
                return 1;
            }
            have_budget = true;
        } else {
            return usage();
        }
    }
    if (!have_budget)
        return usage();

    mdes::store::ArtifactStore st(mdes::store::StoreConfig{.dir = dir, .creator = {}, .retry = {}});
    auto result = st.prune(max_bytes);
    std::printf("scanned %llu artifact(s), removed %llu: %llu -> %llu "
                "bytes (budget %llu)\n",
                (unsigned long long)result.scanned,
                (unsigned long long)result.removed,
                (unsigned long long)result.bytes_before,
                (unsigned long long)result.bytes_after,
                (unsigned long long)max_bytes);
    if (result.residue_removed)
        std::printf("swept %llu orphaned temp file(s)\n",
                    (unsigned long long)result.residue_removed);
    return 0;
}

int
cmdStoreWarm(const std::string &dir,
             const std::vector<std::string> &args)
{
    std::vector<const machines::MachineInfo *> targets;
    if (args.empty()) {
        targets = machines::all();
        for (const auto *m : machines::extensions())
            targets.push_back(m);
    } else {
        for (const auto &name : args) {
            const machines::MachineInfo *m = machines::byName(name);
            if (!m) {
                std::fprintf(stderr, "unknown machine '%s'\n",
                             name.c_str());
                return 1;
            }
            targets.push_back(m);
        }
    }

    mdes::store::StoreConfig sc;
    sc.dir = dir;
    sc.creator = "mdesc-warm";
    mdes::store::ArtifactStore st(sc);
    PipelineConfig config = PipelineConfig::all();
    const bool bit_vector = true;

    TextTable table;
    table.setHeader({"Machine", "Key", "Result"});
    int failures = 0;
    for (const auto *m : targets) {
        uint64_t key =
            mdes::store::artifactKey(m->source, config, bit_vector);
        const char *result;
        if (st.load(key)) {
            result = "already warm";
        } else {
            lmdes::LowMdes low = exp::compileSourceToLow(
                m->source, config, bit_vector);
            if (st.store(key, low,
                         mdes::store::configFingerprint(config,
                                                        bit_vector))) {
                result = "compiled + published";
            } else {
                result = "PUBLISH FAILED";
                ++failures;
            }
        }
        table.addRow({m->name,
                      mdes::store::artifactFileName(key).substr(0, 16),
                      result});
    }
    std::printf("%s", table.toString().c_str());
    return failures == 0 ? 0 : 1;
}

int
cmdStore(const std::vector<std::string> &args)
{
    if (args.size() < 2)
        return usage();
    const std::string &verb = args[0];
    const std::string &dir = args[1];
    std::vector<std::string> rest(args.begin() + 2, args.end());
    if (verb == "stat") {
        bool json = false;
        for (const auto &arg : rest) {
            if (arg == "--json")
                json = true;
            else
                return usage();
        }
        return cmdStoreStat(dir, json);
    }
    if (verb == "prune")
        return cmdStorePrune(dir, rest);
    if (verb == "warm")
        return cmdStoreWarm(dir, rest);
    return usage();
}

/**
 * `mdesc flight decode <file.mdcr>`: turn a crash capture (the raw
 * ring snapshot a fatal-signal handler wrote; DESIGN.md §15) into
 * Chrome trace-event JSON. The crash report header goes to stderr so
 * stdout stays pipeable into a trace viewer.
 */
int
cmdFlight(const std::vector<std::string> &args)
{
    if (args.size() < 2 || args[0] != "decode")
        return usage();
    const std::string &path = args[1];
    std::string out_path;
    for (size_t i = 2; i < args.size(); ++i) {
        if (args[i] == "-o" && i + 1 < args.size()) {
            out_path = args[++i];
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         args[i].c_str());
            return usage();
        }
    }
    flightrec::CrashInfo info;
    std::string json = flightrec::decodeCrashCapture(path, &info);
    std::fprintf(stderr,
                 "crash capture: signal %d (%s), pid %llu, fault addr "
                 "0x%llx, %llu ring(s), %llu event(s)\n",
                 info.signo, strsignal(info.signo),
                 (unsigned long long)info.pid,
                 (unsigned long long)info.fault_addr,
                 (unsigned long long)info.rings,
                 (unsigned long long)info.events);
    if (out_path.empty()) {
        std::printf("%s\n", json.c_str());
        return 0;
    }
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "mdesc: cannot write '%s'\n",
                     out_path.c_str());
        return 1;
    }
    out << json << "\n";
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    return 0;
}

int
cmdExport(const std::vector<std::string> &args)
{
    if (args.size() != 1)
        return usage();
    const machines::MachineInfo *info = machines::byName(args[0]);
    if (!info) {
        std::fprintf(stderr,
                     "unknown machine '%s' (try PA7100, Pentium, "
                     "SuperSPARC, K5)\n",
                     args[0].c_str());
        return 1;
    }
    std::fputs(info->source, stdout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::vector<std::string> args(argv + 2, argv + argc);
    try {
        std::string cmd = argv[1];
        if (cmd == "compile")
            return cmdCompile(args);
        if (cmd == "info")
            return cmdInfo(args);
        if (cmd == "dump")
            return cmdDump(args);
        if (cmd == "stats")
            return cmdStats(args);
        if (cmd == "schedule")
            return cmdSchedule(args);
        if (cmd == "batch")
            return cmdBatch(args);
        if (cmd == "chaos")
            return cmdChaos(args);
        if (cmd == "serve")
            return cmdServe(args);
        if (cmd == "netbatch")
            return cmdNetbatch(args);
        if (cmd == "stat")
            return cmdStatLive(args);
        if (cmd == "top")
            return cmdTop(args);
        if (cmd == "store")
            return cmdStore(args);
        if (cmd == "flight")
            return cmdFlight(args);
        if (cmd == "lint")
            return cmdLint(args);
        if (cmd == "export")
            return cmdExport(args);
        return usage();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "mdesc: %s\n", e.what());
        return 1;
    }
}
