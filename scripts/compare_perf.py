#!/usr/bin/env python3
"""Gate perf-bench results against the committed baseline.

Usage: compare_perf.py BASELINE.json CURRENT.json [CURRENT2.json ...]

Each file is a BENCH_perf.json written by `bench_perf_checker --json`
or `bench_perf_scheduler --json` (see bench/perf_json.h). The gate:

  - every benchmark in the baseline must be present in some current
    file;
  - fingerprints must match bit-for-bit (the engines made identical
    scheduling decisions - wall-time wins must not change behavior);
    entries without a fingerprint (e.g. bench_store_coldstart's
    disk/memory wall ratio, whose schedule identity is asserted
    in-process) skip this check;
  - the checks-per-work metric (checks_per_attempt / checks_per_op)
    must not regress by more than TOLERANCE (5%);
  - a baseline entry carrying "band": [lo, hi] gates its metric inside
    that inclusive range instead - bench_net_throughput's shed_rate
    uses this, since a rate is sane within a band rather than
    monotonically better when smaller.

Wall time and throughput are reported but not gated: CI machines are
too noisy for a hard wall-clock threshold, while check counts and
fingerprints are deterministic.
"""

import json
import sys

TOLERANCE = 0.05

METRICS = ("checks_per_attempt", "checks_per_op", "shed_rate",
           "exact_rate", "disk_memory_ratio")


def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for entry in doc["results"]:
        out[entry["name"]] = entry
    return out


def metric(entry):
    for name in METRICS:
        if name in entry:
            return name, float(entry[name])
    raise KeyError(f"no checks metric in {entry['name']}: {entry}")


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    baseline = load(argv[1])
    current = {}
    for path in argv[2:]:
        current.update(load(path))

    failures = []
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            failures.append(f"{name}: missing from current results")
            continue
        if "fingerprint" in base and \
                str(base["fingerprint"]) != str(cur.get("fingerprint")):
            failures.append(
                f"{name}: fingerprint changed "
                f"{base['fingerprint']} -> {cur['fingerprint']} "
                "(scheduling decisions are no longer bit-identical)")
        mname, bval = metric(base)
        _, cval = metric(cur)
        if "band" in base:
            lo, hi = (float(v) for v in base["band"])
            bad = not (lo <= cval <= hi)
            status = "FAIL" if bad else "ok"
            print(f"{status:4} {name:40} {mname} {cval:.4f} "
                  f"(band [{lo:.4f}, {hi:.4f}])  wall "
                  f"{base['wall_ms']:.3f}ms -> {cur['wall_ms']:.3f}ms")
            if bad:
                failures.append(
                    f"{name}: {mname} {cval:.4f} outside sanity band "
                    f"[{lo:.4f}, {hi:.4f}]")
            continue
        limit = bval * (1 + TOLERANCE)
        status = "FAIL" if cval > limit else "ok"
        print(f"{status:4} {name:40} {mname} {bval:.4f} -> {cval:.4f} "
              f"(limit {limit:.4f})  wall {base['wall_ms']:.3f}ms -> "
              f"{cur['wall_ms']:.3f}ms")
        if cval > limit:
            failures.append(
                f"{name}: {mname} regressed {bval:.4f} -> {cval:.4f} "
                f"(> {TOLERANCE:.0%} over baseline)")

    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nperf gate passed: {len(baseline)} benchmarks within "
          f"{TOLERANCE:.0%} of baseline, fingerprints identical")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
