#!/usr/bin/env python3
"""Validate a `mdesc stat --json` document against the stable stats
schema (DESIGN.md section 14 / src/service/stats.h).

Usage: check_stats_schema.py <stats.json> [--min-requests N] [--shards N]

With --shards N the document must be a fleet view: "shards" plus
"stale_shards" must account for N processes and a "per_shard" array
with one row per shard must be present. Exits non-zero with a message
naming the first violated expectation.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"stats schema violation: {msg}", file=sys.stderr)
    sys.exit(1)


def require(obj, key, kinds, where):
    if key not in obj:
        fail(f"missing '{where}.{key}'")
    if not isinstance(obj[key], kinds):
        fail(f"'{where}.{key}' is {type(obj[key]).__name__}, "
             f"wanted {kinds}")
    return obj[key]


def check_series(obj, where):
    for key in ("count", "total_us", "max_us"):
        require(obj, key, int, where)
    buckets = require(obj, "buckets", list, where)
    if sum(buckets) != obj["count"]:
        fail(f"'{where}': bucket sum {sum(buckets)} != count "
             f"{obj['count']}")


def check_view(obj, where):
    for key in ("horizon_s", "requests", "ok", "errors", "shed",
                "p50_us", "p95_us", "p99_us", "max_us"):
        require(obj, key, int, where)
    for key in ("rate_per_s", "mean_us"):
        require(obj, key, (int, float), where)
    if obj["requests"] != obj["ok"] + obj["errors"]:
        fail(f"'{where}': requests != ok + errors")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("path")
    ap.add_argument("--min-requests", type=int, default=0)
    ap.add_argument("--shards", type=int, default=0)
    args = ap.parse_args()

    with open(args.path) as f:
        doc = json.load(f)

    require(doc, "now_s", int, "")
    shards = require(doc, "shards", int, "")
    stale = require(doc, "stale_shards", int, "")

    lifetime = require(doc, "lifetime", dict, "")
    for key in ("requests", "ok", "errors", "shed",
                "p50_us", "p95_us", "p99_us"):
        require(lifetime, key, int, "lifetime")
    check_series(lifetime, "lifetime")
    if lifetime["requests"] < args.min_requests:
        fail(f"lifetime.requests {lifetime['requests']} < "
             f"{args.min_requests}")

    windows = require(doc, "windows", dict, "")
    slots = require(windows, "slots", list, "windows")
    for i, slot in enumerate(slots):
        for key in ("epoch", "requests", "ok", "errors", "shed"):
            require(slot, key, int, f"windows.slots[{i}]")
        check_series(slot, f"windows.slots[{i}]")
    check_view(require(windows, "w10", dict, "windows"), "windows.w10")
    check_view(require(windows, "w60", dict, "windows"), "windows.w60")
    if windows["w10"]["horizon_s"] != 10 or \
            windows["w60"]["horizon_s"] != 60:
        fail("window horizons are not 10/60")

    net = require(doc, "net", dict, "")
    for key in ("active", "accepted", "frames_in", "frames_out",
                "stats_requests", "stats_coalesced"):
        require(net, key, int, "net")

    if args.shards:
        if shards + stale != args.shards:
            fail(f"shards {shards} + stale {stale} != {args.shards}")
        per_shard = require(doc, "per_shard", list, "")
        if len(per_shard) != args.shards:
            fail(f"per_shard has {len(per_shard)} rows, wanted "
                 f"{args.shards}")
        for i, row in enumerate(per_shard):
            for key in ("shard", "requests", "w60_requests",
                        "w60_p99_us"):
                require(row, key, int, f"per_shard[{i}]")
            require(row, "stale", bool, f"per_shard[{i}]")
            require(row, "w60_rate_per_s", (int, float),
                    f"per_shard[{i}]")

        # A supervised fleet (forked shards) also reports the
        # supervision block and per-shard process identity.
        if "supervision" in doc:
            sup = require(doc, "supervision", dict, "")
            health = require(sup, "health", str, "supervision")
            if health not in ("ready", "draining", "degraded"):
                fail(f"supervision.health '{health}' is not one of "
                     "ready/draining/degraded")
            for key in ("restarts", "crashes", "wedged_shards",
                        "quarantined"):
                require(sup, key, int, "supervision")
            for i, row in enumerate(per_shard):
                require(row, "pid", int, f"per_shard[{i}]")
                require(row, "restarts", int, f"per_shard[{i}]")
                state = require(row, "state", str, f"per_shard[{i}]")
                if state not in ("live", "backoff", "quarantined",
                                 "stale"):
                    fail(f"per_shard[{i}].state '{state}' is not one "
                         "of live/backoff/quarantined/stale")

    print(f"stats schema ok: {lifetime['requests']} requests, "
          f"{shards} shard(s), {stale} stale, "
          f"w60 p99 {windows['w60']['p99_us']}us")


if __name__ == "__main__":
    main()
