#!/bin/sh
# Full local gate: configure, build, run every test, smoke-run every
# table/figure bench (perf benches get a short min_time so the whole
# sweep stays fast). Mirrors what CI would run.
set -eu
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/bench_*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    case "$(basename "$b")" in
        bench_perf_*)
            "$b" --benchmark_min_time=0.05s ;;
        *)
            "$b" ;;
    esac
done
echo "check.sh: all green"
